"""Figure 7: QoSreach per QoS benchmark, plus C+C / C+M / M+M summary.

Paper: both schemes reach all C+C cases; Rollover beats Spart on C+M and
M+M because quota throttling indirectly frees memory bandwidth, which Spart
cannot manage at all.
"""


def test_fig07_per_kernel_reach(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig07")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    rollover, spart = series["rollover"], series["spart"]
    # Rollover handles every pairing class well.  (With open-row DRAM the
    # M+M class can even exceed C+C: quota throttling frees bandwidth so
    # effectively that memory goals become the easy ones, while C+C's
    # hardest 95% goals contend for issue slots.)
    assert rollover["C+C"] >= 0.7
    # The memory-contended classes are where fine-grained control wins.
    assert rollover["M+M"] >= spart["M+M"] - 0.1
    assert rollover["C+M"] >= spart["C+M"] - 0.1
