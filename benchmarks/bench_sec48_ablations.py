"""Section 4.8 ablations: preemption overhead, history adjustment, static
resource management.

Paper: preemption costs only 1.93 % of non-QoS throughput (context saves
overlap with other TBs' execution); enabling history-based adjustment covers
86.4 % more cases; static resource management improves M+M non-QoS
throughput by 13.3 %.
"""


def test_preemption_overhead_is_small(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("sec48_preemption")),
                                rounds=1, iterations=1)
    overhead = result.data["overhead"]
    if overhead is not None:
        # Free preemption helps, but only modestly (paper: 1.93%).
        assert -0.1 < overhead < 0.5


def test_history_adjustment_reaches_more_goals(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("sec48_history")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    assert series["history"]["AVG"] >= series["naive"]["AVG"]


def test_static_management_helps_mm_pairs(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("sec48_static")),
                                rounds=1, iterations=1)
    gain = result.data["gain"]
    if gain is not None:
        assert gain > -0.25  # must not systematically hurt
