"""Figure 6: QoSreach vs QoS goals for pairs and trios.

Paper: pairs — Naïve worst (20.6 %), Spart 78.8 %, Rollover best (88.4 %,
+12.2 % over Spart).  Trios — Rollover beats Spart by 18.8 % (1 QoS kernel)
and 43.8 % (2 QoS kernels); Spart collapses at the hardest 2-QoS goals.
"""


def test_fig06a_pairs(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig06a")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    # Ordering of the headline result: Rollover >= Spart >> Naive.
    assert series["rollover"]["AVG"] >= series["spart"]["AVG"] - 0.05
    assert series["rollover"]["AVG"] > series["naive"]["AVG"]
    assert series["elastic"]["AVG"] > series["naive"]["AVG"]
    # Naive misses most cases (paper: ~20% reach).
    assert series["naive"]["AVG"] < 0.6


def test_fig06b_trios_one_qos(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig06b")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    assert series["rollover"]["AVG"] >= series["spart"]["AVG"] - 0.05


def test_fig06c_trios_two_qos(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig06c")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    # The scalability claim: with more QoS kernels the fine-grained design
    # stays ahead of SM-granularity partitioning on average.  (At the fast
    # preset's 4-SM scale the hardest 2-QoS goals are capacity-infeasible
    # for both schemes, so per-goal tails are noisy; the paper's 16-SM
    # machine separates them cleanly — see EXPERIMENTS.md.)
    assert series["rollover"]["AVG"] >= series["spart"]["AVG"]
