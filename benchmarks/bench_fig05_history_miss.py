"""Figure 5: how far Naïve + History-based adjustment misses QoS goals.

Paper: out of 900 pair cases, >700 miss their goal even with history-based
adjustment, most within 5 % of the target; successful cases overshoot by
only 1.3 % — motivating Elastic Epoch and Rollover.
"""


def test_fig05_history_miss_histogram(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig05")),
                                rounds=1, iterations=1)
    histogram = result.data["histogram"]
    total = result.data["total"]
    missed = result.data["missed"]

    # Shape: the scheme misses a substantial share of cases...
    assert missed / total > 0.2
    # ...and near-misses dominate distant ones (the paper's key reading:
    # most failures are within 5% of the goal).
    near = histogram["0-1%"] + histogram["1-5%"]
    far = histogram["10-20%"] + histogram["20+%"]
    assert near >= far
    # Successful cases barely overshoot.
    if result.data["overshoot"] is not None:
        assert result.data["overshoot"] < 1.15
