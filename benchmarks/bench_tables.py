"""Tables 1 and 2: machine parameters and the qualitative feature matrix."""


def test_table1_parameters(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("table1")),
                                rounds=1, iterations=1)
    rows = result.data["rows"]
    assert rows["Sched. Policy"] == "GTO"
    if suite.preset.name == "paper":
        assert rows["# of SMs"] == 16
        assert rows["Registers"] == "256KB"
        assert rows["Threads"] == 2048


def test_table2_feature_matrix(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("table2")),
                                rounds=1, iterations=1)
    features = result.data["features"]
    # The proposed design is hardware-based and ticks every capability row.
    for row in features[1:]:
        assert row[-1] == "y"
