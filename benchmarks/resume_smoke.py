"""Sweep interrupt/resume smoke: byte-identity of resumed experiments.

The experiment store's core promise (ISSUE 8) is that a sweep interrupted
at any point and resumed later produces records byte-identical to an
uninterrupted run, without re-simulating completed cases.  This script
checks that promise end to end on a tiny figure-6-style grid:

1. run the grid clean (fresh store, no case cache) and serialise every
   record to canonical JSON;
2. run the same grid in a fresh store with a fault injected at ~50% of
   the cases (:attr:`CaseRunner.fault_after` — the crash seam the tests
   use), leaving the experiment half done;
3. resume it with a brand-new runner against the same store, then
   byte-compare the full record set against step 1.

Exit status is 0 only if the interrupted-then-resumed bytes match the
clean bytes exactly and the resume left the experiment ``done``.  CI runs
this as the sweep-resume smoke step::

    PYTHONPATH=src python benchmarks/resume_smoke.py
    PYTHONPATH=src python benchmarks/resume_smoke.py --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.config import FAST_GPU
from repro.harness.cache import record_to_dict
from repro.harness.expdb import DONE, ExperimentDB
from repro.harness.parallel import ParallelCaseRunner
from repro.harness.runner import CaseRunner, CaseSpec, SweepInterrupted

CYCLES = 4_000

SPECS = [
    CaseSpec.pair("sgemm", "lbm", 0.5, "rollover"),
    CaseSpec.pair("mri-q", "spmv", 0.65, "rollover"),
    CaseSpec.pair("sgemm", "lbm", 0.8, "spart"),
    CaseSpec.pair("stencil", "histo", 0.5, "rollover"),
]


def dump(records) -> str:
    """Canonical bytes of a record list (sorted-keys JSON)."""
    return json.dumps([record_to_dict(record) for record in records],
                      sort_keys=True)


def make_runner(workers: int, db: ExperimentDB):
    if workers > 1:
        return ParallelCaseRunner(FAST_GPU, CYCLES, workers=workers,
                                  expdb=db)
    return CaseRunner(FAST_GPU, CYCLES, expdb=db)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="pool width for the interrupted/resumed runs "
                             "(1 = serial CaseRunner; default: 1)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        clean_db = ExperimentDB(Path(tmp) / "clean.sqlite")
        clean = dump(CaseRunner(FAST_GPU, CYCLES, expdb=clean_db)
                     .sweep(SPECS))
        clean_db.close()
        print(f"[clean] {len(SPECS)} cases swept")

        db = ExperimentDB(Path(tmp) / "resumable.sqlite")
        runner = make_runner(args.workers, db)
        runner.fault_after = len(SPECS) // 2
        try:
            runner.sweep(SPECS)
        except SweepInterrupted:
            pass
        else:
            print("FAIL: fault injection did not interrupt the sweep",
                  file=sys.stderr)
            return 1
        experiment_id = runner.experiment_log[0][0]
        counts = db.case_counts(experiment_id)
        print(f"[interrupted] {experiment_id}: "
              f"{counts.get(DONE, 0)}/{len(SPECS)} cases done at fault")

        resumed = dump(make_runner(args.workers, db).sweep(SPECS))
        status = db.experiment(experiment_id)["status"]
        db.close()
        print(f"[resumed] experiment status: {status}")

        if status != DONE:
            print("FAIL: resumed experiment is not marked done",
                  file=sys.stderr)
            return 1
        if resumed != clean:
            print("FAIL: resumed records differ from the clean sweep",
                  file=sys.stderr)
            return 1
    print(f"OK: interrupt at {len(SPECS) // 2}/{len(SPECS)} + resume is "
          "byte-identical to the clean sweep")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
