"""Simulator throughput microbenchmark.

Measures, on the current machine:

1. Engine hot-path speed: simulated cycles/second for an isolated kernel
   and for a QoS pair under the rollover scheme (the two shapes every
   figure sweep is built from).
2. Sweep wall-clock for a fast-preset Figure 6 slice three ways: serial
   ``CaseRunner``, parallel ``ParallelCaseRunner``, and a warm-cache rerun
   (persistent case cache pre-populated by the parallel pass).

Run standalone — it is a script, not a pytest benchmark::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py

The report is printed and written to ``benchmarks/results/
bench_sim_throughput.txt``.  Parallel speedup scales with the core count
(printed in the header); the warm-cache rerun is machine-independent and
should cost well under 10% of the cold sweep.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import platform
import tempfile
import time

from repro.config import FAST_GPU
from repro.harness.cache import CaseCache, code_salt
from repro.harness.parallel import ParallelCaseRunner, resolve_workers
from repro.harness.runner import CaseRunner, CaseSpec
from repro.kernels import get_kernel
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "bench_sim_throughput.txt"

# A fast-preset Figure 6 slice: QoS goal sweep over three representative
# pairs under the rollover scheme (plus spart for scheme diversity).
SWEEP_GOALS = (0.5, 0.65, 0.8)
SWEEP_PAIRS = (("sgemm", "lbm"), ("mri-q", "spmv"), ("stencil", "histo"))


def engine_throughput(cycles: int) -> list:
    """Simulated cycles/second for the two canonical workload shapes."""
    rows = []
    shapes = [
        ("isolated sgemm", [LaunchedKernel(get_kernel("sgemm"))], None),
        ("rollover pair sgemm+lbm",
         [LaunchedKernel(get_kernel("sgemm"), is_qos=True, ipc_goal=100.0),
          LaunchedKernel(get_kernel("lbm"))],
         QoSPolicy("rollover")),
    ]
    for label, launches, policy in shapes:
        sim = GPUSimulator(FAST_GPU, launches, policy)
        started = time.perf_counter()
        sim.run(cycles)
        elapsed = time.perf_counter() - started
        rows.append((label, cycles, elapsed, cycles / elapsed))
    return rows


def sweep_cases() -> list:
    return [CaseSpec.pair(qos, other, goal, policy)
            for qos, other in SWEEP_PAIRS
            for goal in SWEEP_GOALS
            for policy in ("rollover", "spart")]


def sweep_timings(cycles: int, workers: int) -> list:
    cases = sweep_cases()
    rows = []

    started = time.perf_counter()
    serial_records = CaseRunner(FAST_GPU, cycles).sweep(cases)
    serial = time.perf_counter() - started
    rows.append(("serial CaseRunner", serial, 1.0))

    with tempfile.TemporaryDirectory() as tmp:
        started = time.perf_counter()
        parallel_records = ParallelCaseRunner(
            FAST_GPU, cycles, workers=workers,
            cache=CaseCache(pathlib.Path(tmp))).sweep(cases)
        parallel = time.perf_counter() - started
        rows.append((f"parallel x{workers}", parallel, serial / parallel))

        started = time.perf_counter()
        warm_records = ParallelCaseRunner(
            FAST_GPU, cycles, workers=workers,
            cache=CaseCache(pathlib.Path(tmp))).sweep(cases)
        warm = time.perf_counter() - started
        rows.append(("warm cache rerun", warm, serial / warm))

    assert parallel_records == serial_records, "parallel sweep diverged"
    assert warm_records == serial_records, "cached sweep diverged"
    return rows


def format_report(engine_rows, sweep_rows, cycles, workers) -> str:
    lines = []
    lines.append("simulator throughput microbenchmark")
    lines.append("=" * 35)
    lines.append(f"python {platform.python_version()}  "
                 f"cores {os.cpu_count()}  workers {workers}  "
                 f"code salt {code_salt()}")
    lines.append("")
    lines.append(f"engine hot path ({cycles} cycles, FAST_GPU)")
    lines.append(f"{'workload':<28}{'seconds':>9}{'cycles/sec':>13}")
    for label, _cycles, elapsed, rate in engine_rows:
        lines.append(f"{label:<28}{elapsed:>9.3f}{rate:>13,.0f}")
    lines.append("")
    cases = len(sweep_cases())
    lines.append(f"figure 6 slice sweep ({cases} cases, {cycles} cycles each)")
    lines.append(f"{'executor':<28}{'seconds':>9}{'vs serial':>13}")
    for label, elapsed, speedup in sweep_rows:
        lines.append(f"{label:<28}{elapsed:>9.3f}{speedup:>12.1f}x")
    warm = sweep_rows[-1][1]
    cold = sweep_rows[0][1]
    lines.append("")
    lines.append(f"warm-cache rerun is {100.0 * warm / cold:.1f}% "
                 "of the cold serial sweep")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=24000,
                        help="simulated cycles per case (default: 24000)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width (default: REPRO_WORKERS or "
                             "cpu_count-1)")
    parser.add_argument("--no-save", action="store_true",
                        help="print only; do not update benchmarks/results/")
    args = parser.parse_args()

    workers = resolve_workers(args.workers)
    report = format_report(engine_throughput(args.cycles),
                           sweep_timings(args.cycles, workers),
                           args.cycles, workers)
    print(report, end="")
    if not args.no_save:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report)
        print(f"[written to {RESULTS_PATH}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
