"""Simulator throughput microbenchmark.

Measures, on the current machine:

1. Engine hot-path speed: simulated cycles/second for the canonical
   workload shapes, run under all three simulation cores — the reference
   per-cycle-scan core (``engine_core="scan"``), the event-driven core
   (``"event"``, the default) and the windowed struct-of-arrays batch
   core (``"batch"``) — with per-shape speedup ratios.  The *membound
   stream* shape is the event core's sleep-skipping showcase: a
   bandwidth-bound kernel on many single-scheduler SMs under deep DRAM
   latency, so most SMs spend most cycles stalled and the event core
   skips them with one comparison each.  The *compute alu-dense* shape is
   the batch core's showcase: a memory-free high-ILP kernel whose only
   window edges are the idle-warp sample grid, so the batch core advances
   whole SMs hundreds of cycles at a time.
2. A per-function cProfile hotspot table for the event core on the
   showcase shape, so regressions in the hot path are visible as moved
   rows rather than just a slower total.
3. Epoch-telemetry overhead: the canonical shapes timed with telemetry
   off (no recorder attached — the default, which must stay free) and on
   (a :class:`repro.sim.TelemetryRecorder` collecting every epoch
   record), with the on/off overhead percentage per shape.
4. Sweep wall-clock for a fast-preset Figure 6 slice three ways: serial
   ``CaseRunner``, parallel ``ParallelCaseRunner``, and a warm-cache rerun
   (persistent case cache pre-populated by the parallel pass).

Run standalone — it is a script, not a pytest benchmark::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py

``--quick`` runs only the engine comparison and hotspot table at reduced
cycle counts and never writes results; CI uses it as a smoke test that the
bench harness itself works (no timing assertions).

The report is printed and written to ``benchmarks/results/
bench_sim_throughput.txt``; the engine comparison is additionally written
as machine-readable JSON to ``benchmarks/results/BENCH_sim_throughput.json``
(or wherever ``--json`` points, which works in ``--quick`` mode too) so the
perf trajectory is diffable across PRs.  Parallel speedup scales with the
core count
(printed in the header); the warm-cache rerun is machine-independent and
should cost well under 10% of the cold sweep.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pathlib
import platform
import pstats
import tempfile
import time
from dataclasses import replace

import repro.sim.batch  # noqa: F401  — warm numpy outside the timed regions

from repro.config import ENGINE_CORES, FAST_GPU, KB, LatencyConfig, \
    MemoryConfig, SMConfig
from repro.harness.cache import (CaseCache, code_salt, experiment_id_for,
                                 experiment_spec_hash, sweep_grid_payload)
from repro.harness.parallel import ParallelCaseRunner, resolve_workers
from repro.harness.runner import CaseRunner, CaseSpec
from repro.kernels import get_kernel
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.kernels.synthetic import streaming_kernel
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel, TelemetryRecorder

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "bench_sim_throughput.txt"
JSON_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_sim_throughput.json"

# A fast-preset Figure 6 slice: QoS goal sweep over three representative
# pairs under the rollover scheme (plus spart for scheme diversity).
SWEEP_GOALS = (0.5, 0.65, 0.8)
SWEEP_PAIRS = (("sgemm", "lbm"), ("mri-q", "spmv"), ("stencil", "histo"))

# The sleep-skipping showcase: 16 single-scheduler SMs (all resident warps
# in one scheduler per SM — the shape where a per-select scan over the
# warp list is most expensive) running a streaming kernel against deep
# DRAM latency, so warps stall for thousands of cycles and whole SMs sleep
# while memory is in flight.
MEMBOUND_GPU = FAST_GPU.scaled(
    num_sms=16, num_mcs=4,
    sm=SMConfig(warp_schedulers=1),
    memory=MemoryConfig(
        l2_slice_size=256 * KB,
        latency=LatencyConfig(dram=2000, dram_row_hit=1200, l2_hit=500)))


# The batch-core showcase: a memory-free, barrier-free, high-ILP ALU kernel
# (greedy runs of back-to-back single-cycle instructions are long, so the
# bulk-apply path dominates) on the fast machine with a sparse idle-warp
# sample grid — the only window edges left are the 500-cycle grid points,
# so each probe opens a full-interval window.
COMPUTE_GPU = FAST_GPU.scaled(epoch_length=10_000, idle_warp_samples=20)


def _alu_dense_kernel() -> KernelSpec:
    return KernelSpec(
        name="alu-dense", threads_per_tb=256, regs_per_thread=32,
        body_length=256, iterations_per_tb=64,
        mix=InstructionMix(alu=0.94, sfu=0.0, ldg=0.0, stg=0.0, lds=0.06),
        ilp=0.97,
        memory=MemoryPattern(footprint_bytes=1 << 20))


def _shapes():
    return [
        ("isolated sgemm", FAST_GPU,
         lambda: [LaunchedKernel(get_kernel("sgemm"))], None),
        ("rollover pair sgemm+lbm", FAST_GPU,
         lambda: [LaunchedKernel(get_kernel("sgemm"), is_qos=True,
                                 ipc_goal=100.0),
                  LaunchedKernel(get_kernel("lbm"))],
         "rollover"),
        ("membound stream (16 SMs)", MEMBOUND_GPU,
         lambda: [LaunchedKernel(streaming_kernel())], None),
        ("compute alu-dense", COMPUTE_GPU,
         lambda: [LaunchedKernel(_alu_dense_kernel())], None),
    ]


def _time_run(gpu, launches, policy_name, cycles, repeats=2,
              telemetry=False) -> float:
    best = None
    for _ in range(repeats):
        policy = QoSPolicy(policy_name) if policy_name else None
        recorder = TelemetryRecorder() if telemetry else None
        sim = GPUSimulator(gpu, launches(), policy, telemetry=recorder)
        started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
        sim.run(cycles)
        elapsed = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
        best = elapsed if best is None else min(best, elapsed)
    return best


def engine_throughput(cycles: int, repeats: int = 3) -> list:
    """Per-shape timings for all three cores, plus speedup ratios.

    Returns one dict per shape — the same structure the JSON report
    serialises — with ``seconds`` and ``cycles_per_second`` keyed by core
    name and the derived ``speedup`` ratios.
    """
    rows = []
    for label, gpu, launches, policy_name in _shapes():
        seconds = {
            core: _time_run(replace(gpu, engine_core=core),
                            launches, policy_name, cycles, repeats)
            for core in ENGINE_CORES
        }
        rows.append({
            "label": label,
            "cycles": cycles,
            "seconds": seconds,
            "cycles_per_second": {core: cycles / elapsed
                                  for core, elapsed in seconds.items()},
            "speedup": {
                "event_vs_scan": seconds["scan"] / seconds["event"],
                "batch_vs_scan": seconds["scan"] / seconds["batch"],
                "batch_vs_event": seconds["event"] / seconds["batch"],
            },
        })
    return rows


def hotspot_table(cycles: int, top: int = 8) -> list:
    """Top event-core functions by internal time on the showcase shape."""
    sim = GPUSimulator(MEMBOUND_GPU, [LaunchedKernel(streaming_kernel())])
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(cycles)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("tottime")
    rows = []
    for func in stats.fcn_list[:top]:
        cc, _ncalls, tottime, cumtime, _callers = stats.stats[func]
        filename, lineno, name = func
        where = pathlib.Path(filename).name
        if lineno:
            where = f"{where}:{lineno}"
        rows.append((f"{name} ({where})", cc, tottime, cumtime))
    return rows


def telemetry_overhead(cycles: int, repeats: int = 3) -> list:
    """Per-shape wall-clock with telemetry off vs on, and the overhead %.

    The off column is the default configuration (no recorder attached);
    it is the one the <5% acceptance bound guards.
    """
    rows = []
    for label, gpu, launches, policy_name in _shapes():
        off = _time_run(gpu, launches, policy_name, cycles, repeats)
        on = _time_run(gpu, launches, policy_name, cycles, repeats,
                       telemetry=True)
        rows.append((label, off, on, 100.0 * (on - off) / off))
    return rows


def sweep_cases() -> list:
    return [CaseSpec.pair(qos, other, goal, policy)
            for qos, other in SWEEP_PAIRS
            for goal in SWEEP_GOALS
            for policy in ("rollover", "spart")]


def sweep_experiment_identity(cycles: int) -> dict:
    """The experiment-store identity of the figure 6 slice sweep.

    Content-derived (machine + cycles + spec grid + code salt), so it is
    computable without running anything and lands in both the text header
    and the JSON report — the committed results name exactly which
    registered experiment they measure.
    """
    runner = CaseRunner(FAST_GPU, cycles)
    grid = sweep_grid_payload(FAST_GPU, cycles, runner.warmup_cycles,
                              runner.telemetry,
                              [spec.payload() for spec in sweep_cases()])
    spec_hash = experiment_spec_hash(grid)
    return {"id": experiment_id_for(spec_hash), "spec_hash": spec_hash}


def sweep_timings(cycles: int, workers: int) -> list:
    cases = sweep_cases()
    rows = []

    started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
    serial_records = CaseRunner(FAST_GPU, cycles).sweep(cases)
    serial = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
    rows.append(("serial CaseRunner", serial, 1.0))

    with tempfile.TemporaryDirectory() as tmp:
        started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
        parallel_records = ParallelCaseRunner(
            FAST_GPU, cycles, workers=workers,
            cache=CaseCache(pathlib.Path(tmp))).sweep(cases)
        parallel = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
        rows.append((f"parallel x{workers}", parallel, serial / parallel))

        started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
        warm_records = ParallelCaseRunner(
            FAST_GPU, cycles, workers=workers,
            cache=CaseCache(pathlib.Path(tmp))).sweep(cases)
        warm = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
        rows.append(("warm cache rerun", warm, serial / warm))

    assert parallel_records == serial_records, "parallel sweep diverged"
    assert warm_records == serial_records, "cached sweep diverged"
    return rows


def format_report(engine_rows, hotspot_rows, telemetry_rows, sweep_rows,
                  cycles, workers) -> str:
    lines = []
    lines.append("simulator throughput microbenchmark")
    lines.append("=" * 35)
    lines.append(f"python {platform.python_version()}  "
                 f"cores {os.cpu_count()}  workers {workers}  "
                 f"code salt {code_salt()}")
    lines.append("")
    lines.append(f"engine hot path ({cycles} cycles; scan = reference, "
                 "event = PR 2, batch = struct-of-arrays windows)")
    lines.append(f"{'workload':<28}{'cyc/s scan':>12}{'cyc/s event':>13}"
                 f"{'cyc/s batch':>13}{'ev/scan':>9}{'ba/scan':>9}")
    for row in engine_rows:
        rate = row["cycles_per_second"]
        speedup = row["speedup"]
        lines.append(f"{row['label']:<28}{rate['scan']:>12,.0f}"
                     f"{rate['event']:>13,.0f}{rate['batch']:>13,.0f}"
                     f"{speedup['event_vs_scan']:>8.2f}x"
                     f"{speedup['batch_vs_scan']:>8.2f}x")
    lines.append("")
    lines.append("event-core hotspots (membound stream, by internal time)")
    lines.append(f"{'function':<44}{'calls':>9}{'tottime':>9}{'cumtime':>9}")
    for name, ncalls, tottime, cumtime in hotspot_rows:
        lines.append(f"{name:<44}{ncalls:>9}{tottime:>9.3f}{cumtime:>9.3f}")
    lines.append("")
    lines.append("epoch telemetry overhead (off = default, no recorder)")
    lines.append(f"{'workload':<28}{'off s':>9}{'on s':>9}{'overhead':>10}")
    for label, off, on, overhead in telemetry_rows:
        lines.append(f"{label:<28}{off:>9.3f}{on:>9.3f}{overhead:>9.1f}%")
    if sweep_rows is not None:
        lines.append("")
        cases = len(sweep_cases())
        identity = sweep_experiment_identity(cycles)
        lines.append(f"figure 6 slice sweep ({cases} cases, "
                     f"{cycles} cycles each)")
        lines.append(f"experiment {identity['id']} "
                     f"(spec {identity['spec_hash'][:16]})")
        lines.append(f"{'executor':<28}{'seconds':>9}{'vs serial':>13}")
        for label, elapsed, speedup in sweep_rows:
            lines.append(f"{label:<28}{elapsed:>9.3f}{speedup:>12.1f}x")
        warm = sweep_rows[-1][1]
        cold = sweep_rows[0][1]
        lines.append("")
        lines.append(f"warm-cache rerun is {100.0 * warm / cold:.1f}% "
                     "of the cold serial sweep")
    return "\n".join(lines) + "\n"


def json_report(engine_rows, cycles: int, workers: int) -> dict:
    """The machine-readable engine comparison (diffable across PRs)."""
    return {
        "bench": "sim_throughput",
        "cycles": cycles,
        "workers": workers,
        "python": platform.python_version(),
        "code_salt": code_salt(),
        "cores": list(ENGINE_CORES),
        "shapes": engine_rows,
        "sweep_experiment": sweep_experiment_identity(cycles),
    }


def _write_json(payload: dict, path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=24000,
                        help="simulated cycles per case (default: 24000)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width (default: REPRO_WORKERS or "
                             "cpu_count-1)")
    parser.add_argument("--quick", action="store_true",
                        help="engine comparison + hotspots only, at reduced "
                             "cycles; implies --no-save (CI smoke mode)")
    parser.add_argument("--no-save", action="store_true",
                        help="print only; do not update benchmarks/results/")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the engine-comparison JSON here "
                             "(works with --quick; default in full save "
                             f"mode: {JSON_PATH})")
    args = parser.parse_args()

    workers = resolve_workers(args.workers)
    if args.quick:
        cycles = min(args.cycles, 6000)
        engine_rows = engine_throughput(cycles, repeats=1)
        report = format_report(engine_rows,
                               hotspot_table(cycles),
                               telemetry_overhead(cycles, repeats=1),
                               None, cycles, workers)
        print(report, end="")
        if args.json:
            _write_json(json_report(engine_rows, cycles, workers),
                        pathlib.Path(args.json))
        return 0

    engine_rows = engine_throughput(args.cycles)
    report = format_report(engine_rows,
                           hotspot_table(args.cycles),
                           telemetry_overhead(args.cycles),
                           sweep_timings(args.cycles, workers),
                           args.cycles, workers)
    print(report, end="")
    if not args.no_save:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report)
        print(f"[written to {RESULTS_PATH}]")
    if args.json or not args.no_save:
        _write_json(json_report(engine_rows, args.cycles, workers),
                    pathlib.Path(args.json) if args.json else JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
