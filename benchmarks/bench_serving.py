"""Online-serving benchmark: latency percentiles and SLO attainment vs load.

Runs a seeded Poisson request stream against the fast-preset machine at
three offered-load points (mean interarrival 8000/4000/2000 cycles) through
the serving harness (:mod:`repro.serve.runner`), then reports:

1. **Load table** — per-class p50/p95/p99 end-to-end latency and SLO
   attainment at each load point, plus the dispatcher's admission
   counters.  Latency-class p99 growing with load while completions
   saturate is the open-loop queueing signature the serving layer exists
   to measure.
2. **Latency CDF** — nearest-rank percentile samples per class at the
   heaviest load (the repo's figures are ASCII tables, same as the
   paper-figure benches).
3. **Sweep wall-clock** — cold serial, cold parallel and warm-cache
   reruns of the same three-case sweep, asserting byte-identical
   outcomes across all three (the serving determinism contract measured,
   not just unit-tested).

Run standalone — it is a script, not a pytest benchmark::

    PYTHONPATH=src python benchmarks/bench_serving.py

``--quick`` shrinks the horizon and skips the executor comparison and
never writes results; CI uses it as a smoke test.  The report is printed
and written to ``benchmarks/results/bench_serving.txt``; the load table
and CDF are additionally written as machine-readable JSON to
``benchmarks/results/BENCH_serving.json`` (or wherever ``--json``
points, which works in ``--quick`` mode too).  Both carry the experiment
identity and code salt, so regenerating an unchanged figure reproduces
the provenance footer byte for byte.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import tempfile
import time

from repro.config import FAST_GPU
from repro.harness.cache import (CaseCache, code_salt, experiment_id_for,
                                 experiment_spec_hash, serve_grid_payload)
from repro.harness.parallel import resolve_workers
from repro.harness.report import format_table, provenance_footer
from repro.serve.metrics import class_summary, latency_cdf
from repro.serve.runner import ServeRunner, ServeSpec

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "bench_serving.txt"
JSON_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_serving.json"

#: Mean interarrival cycles, heaviest last (offered load rises left->right
#: in the tables).
LOADS = (8000, 4000, 2000)

#: (name, kernel, slo_cycles, grid_tbs, weight) — the CLI's default mix: a
#: latency class on a short compute kernel with a tight SLO and a batch
#: class on a long memory-bound kernel with a loose one.
CLASSES = (("latency", "mri-q", 24_000, 4, 1.0),
           ("batch", "lbm", 96_000, 4, 1.0))

HORIZON_CYCLES = 96_000
QUICK_HORIZON = 36_000

CDF_POINTS = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00)


def serve_specs(horizon: int) -> list:
    return [ServeSpec(process="poisson",
                      params=(("mean_interarrival_cycles", float(load)),),
                      classes=CLASSES, seed=0, horizon_cycles=horizon)
            for load in LOADS]


def experiment_identity(horizon: int) -> dict:
    """Content-derived experiment-store identity of the load sweep."""
    grid = serve_grid_payload(
        FAST_GPU, [spec.payload() for spec in serve_specs(horizon)])
    spec_hash = experiment_spec_hash(grid)
    return {"id": experiment_id_for(spec_hash), "spec_hash": spec_hash}


def run_sweep(horizon: int) -> list:
    """``[(load, outcome, summary), ...]`` heaviest load last."""
    outcomes = ServeRunner(FAST_GPU, workers=1).sweep(serve_specs(horizon))
    return [(load, outcome, class_summary(outcome.records))
            for load, outcome in zip(LOADS, outcomes)]


def load_table(rows) -> str:
    table_rows = []
    for load, outcome, summary in rows:
        lat = summary.get("latency", {})
        bat = summary.get("batch", {})
        table_rows.append((
            f"1/{load}", outcome.generated, outcome.completed,
            lat.get("p50_latency"), lat.get("p95_latency"),
            lat.get("p99_latency"),
            lat.get("slo_attainment"),
            bat.get("p99_latency"), bat.get("slo_attainment"),
        ))
    return format_table(
        "serving load sweep (Poisson arrivals, fast machine)",
        "load (req/cyc)",
        ("generated", "done", "lat p50", "lat p95", "lat p99", "lat SLO",
         "bat p99", "bat SLO"),
        table_rows,
        notes=("latency class: mri-q, SLO 24000 cycles; batch class: lbm, "
               "SLO 96000 cycles.\nSLO columns are attainment over all "
               "generated requests (rejections and\nhorizon-unfinished "
               "requests count as misses)."))


def cdf_table(rows) -> str:
    load, outcome, _summary = rows[-1]
    cdf = latency_cdf(outcome.records, CDF_POINTS)
    columns = tuple(f"p{int(round(p * 100)):02d}" for p in CDF_POINTS)
    table_rows = [(name,) + tuple(samples[col] for col in columns)
                  for name, samples in cdf]
    return format_table(
        f"latency CDF at heaviest load (mean interarrival {load} cycles)",
        "class", columns, table_rows,
        notes="nearest-rank percentiles of end-to-end latency in cycles.")


def executor_timings(horizon: int, workers: int) -> list:
    """Cold serial vs cold parallel vs warm-cache rerun, identity-checked."""
    specs = serve_specs(horizon)

    def dump(outcomes):
        return json.dumps([o.to_value() for o in outcomes], sort_keys=True)

    started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
    serial = ServeRunner(FAST_GPU, workers=1).sweep(specs)
    serial_s = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
    rows = [("serial ServeRunner", serial_s, 1.0)]

    with tempfile.TemporaryDirectory() as tmp:
        started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
        parallel = ServeRunner(FAST_GPU, workers=workers,
                               cache=CaseCache(pathlib.Path(tmp))).sweep(specs)
        parallel_s = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
        rows.append((f"parallel x{workers}", parallel_s,
                     serial_s / parallel_s))

        started = time.perf_counter()  # repro: noqa=DET001 -- benchmark wall-time
        warm = ServeRunner(FAST_GPU, workers=workers,
                           cache=CaseCache(pathlib.Path(tmp))).sweep(specs)
        warm_s = time.perf_counter() - started  # repro: noqa=DET001 -- benchmark wall-time
        rows.append(("warm cache rerun", warm_s, serial_s / warm_s))

    assert dump(parallel) == dump(serial), "parallel serving sweep diverged"
    assert dump(warm) == dump(serial), "cached serving sweep diverged"
    return rows


def format_report(rows, executor_rows, horizon: int, workers: int) -> str:
    identity = experiment_identity(horizon)
    lines = ["online-serving benchmark", "=" * 24,
             f"python {platform.python_version()}  horizon {horizon} "
             f"cycles  seed 0  workers {workers}", ""]
    lines.append(load_table(rows))
    lines.append("")
    lines.append(cdf_table(rows))
    if executor_rows is not None:
        lines.append("")
        lines.append("sweep executors (3 cases, identity-checked)")
        lines.append(f"{'executor':<28}{'seconds':>9}{'vs serial':>13}")
        for label, elapsed, speedup in executor_rows:
            lines.append(f"{label:<28}{elapsed:>9.3f}{speedup:>12.1f}x")
    lines.append("")
    lines.append(provenance_footer(
        code_salt(), [(identity["id"], identity["spec_hash"])]))
    return "\n".join(lines) + "\n"


def json_report(rows, horizon: int) -> dict:
    """The machine-readable load sweep (diffable across PRs)."""
    load, outcome, _summary = rows[-1]
    return {
        "bench": "serving",
        "gpu": "fast",
        "horizon_cycles": horizon,
        "seed": 0,
        "classes": [list(entry) for entry in CLASSES],
        "loads": [
            {"mean_interarrival_cycles": case_load,
             "generated": case.generated, "admitted": case.admitted,
             "rejected": case.rejected, "completed": case.completed,
             "unfinished": case.unfinished,
             "classes": summary}
            for case_load, case, summary in rows
        ],
        "cdf_heaviest_load": {
            "mean_interarrival_cycles": load,
            "classes": dict(latency_cdf(outcome.records, CDF_POINTS)),
        },
        "experiment": experiment_identity(horizon),
        "code_salt": code_salt(),
        "python": platform.python_version(),
    }


def _write_json(payload: dict, path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {path}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--horizon", type=int, default=HORIZON_CYCLES,
                        help=f"cycles per load point (default: "
                             f"{HORIZON_CYCLES})")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the executor comparison "
                             "(default: REPRO_WORKERS or cpu_count-1)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced horizon, no executor comparison; "
                             "implies --no-save (CI smoke mode)")
    parser.add_argument("--no-save", action="store_true",
                        help="print only; do not update benchmarks/results/")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the load-sweep JSON here (works "
                             "with --quick; default in full save mode: "
                             f"{JSON_PATH})")
    args = parser.parse_args()

    workers = resolve_workers(args.workers)
    if args.quick:
        horizon = min(args.horizon, QUICK_HORIZON)
        rows = run_sweep(horizon)
        print(format_report(rows, None, horizon, workers), end="")
        if args.json:
            _write_json(json_report(rows, horizon), pathlib.Path(args.json))
        return 0

    rows = run_sweep(args.horizon)
    report = format_report(rows, executor_timings(args.horizon, workers),
                           args.horizon, workers)
    print(report, end="")
    if not args.no_save:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(report)
        print(f"[written to {RESULTS_PATH}]")
    if args.json or not args.no_save:
        _write_json(json_report(rows, args.horizon), pathlib.Path(args.json)
                    if args.json else JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
