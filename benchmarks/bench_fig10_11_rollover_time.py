"""Figures 10-11: Rollover vs CPU-style prioritisation (Rollover-Time).

Paper (Section 4.5): both reach similar QoSreach (within ~3 %), but blocking
non-QoS kernels until QoS quotas drain destroys overlap — non-QoS throughput
degrades by ~1.47x under Rollover-Time.  GPUs are not CPUs: concurrency is
where the throughput lives.
"""


def test_fig10_qosreach_parity(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig10")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    rollover = series["rollover"]["AVG"]
    timed = series["rollover-time"]["AVG"]
    # Similar capability of reaching goals.
    assert abs(rollover - timed) < 0.25


def test_fig11_nonqos_throughput_gap(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig11")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    rollover = series["rollover"]["AVG"]
    timed = series["rollover-time"]["AVG"]
    if rollover is None or timed is None:
        return
    # Overlapped execution must beat time multiplexing on throughput.
    assert rollover >= timed
