"""Figures 12-13: scalability with SM count (Section 4.6).

Paper: on a 56-SM machine Spart's granularity handicap shrinks (finer SM
quanta) but Rollover still leads QoSreach by ~4.8 % and non-QoS throughput
by ~30 %.  The fast preset uses the proportionally scaled many-SM analogue
(2x SMs, two warp schedulers per SM).
"""


def test_fig12_qosreach_many_sm(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig12")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    assert series["rollover"]["AVG"] >= series["spart"]["AVG"] - 0.1


def test_fig13_nonqos_throughput_many_sm(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig13")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    rollover = series["rollover"]["AVG"]
    spart = series["spart"]["AVG"]
    if rollover is not None and spart is not None:
        assert rollover >= spart * 0.8
