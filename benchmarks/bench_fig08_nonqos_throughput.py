"""Figure 8: non-QoS kernel throughput (normalised to isolated execution).

Paper: throughput falls as goals rise; Rollover extracts more residual
throughput than Spart (+15.9 % pairs, ~+20 % trios), because it can give a
QoS kernel *part* of an SM whereas Spart must round up to whole SMs.
"""


def _check(series):
    rollover_avg = series["rollover"]["AVG"]
    spart_avg = series["spart"]["AVG"]
    if rollover_avg is None or spart_avg is None:
        return  # nothing met goals at this scale; nothing to compare
    assert rollover_avg >= spart_avg * 0.8


def _monotone_decreasing(values):
    """Throughput shrinks (roughly) as the QoS goal rises."""
    cleaned = [value for value in values if value is not None]
    return all(late <= early + 0.15
               for early, late in zip(cleaned, cleaned[1:]))


def test_fig08a_pairs(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig08a")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    _check(series)
    goal_values = [value for label, value in series["rollover"].items()
                   if label != "AVG"]
    assert _monotone_decreasing(goal_values)


def test_fig08b_trios_one_qos(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig08b")),
                                rounds=1, iterations=1)
    _check(result.data["series"])


def test_fig08c_trios_two_qos(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig08c")),
                                rounds=1, iterations=1)
    _check(result.data["series"])
