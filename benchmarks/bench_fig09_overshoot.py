"""Figure 9: QoS-kernel throughput normalised to its goal.

Paper: Spart exceeds goals by 11.6 % on average (whole SMs are indivisible,
so QoS kernels get more than they need), Rollover by only 2.8 % — resources
freed by precise control flow to the non-QoS kernels instead.
"""


def test_fig09_overshoot(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig09")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    spart = series["spart"]["AVG"]
    rollover = series["rollover"]["AVG"]
    assert rollover is not None and spart is not None
    # Both at least reach goals on met cases...
    assert rollover >= 1.0 - 1e-6
    # ...but fine-grained control overshoots far less.
    assert rollover < spart
    assert rollover < 1.12  # paper: 1.028; we allow fast-preset noise
