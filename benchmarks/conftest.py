"""Shared fixtures for the figure-regeneration benchmarks.

All benchmarks share one :class:`ExperimentSuite` so the underlying
(pair x goal x scheme) simulations are run once and sliced by every figure,
exactly as the paper's figures all view one set of runs.

Scale is selected with ``--repro-preset`` (default: ``fast``; use ``paper``
for the full Section 4.1 protocol — hours of simulation).  Each benchmark
prints the regenerated paper-style table (run pytest with ``-s`` to see
them inline) and writes it to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.experiments import ExperimentSuite
from repro.harness.presets import experiment_preset

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption("--repro-preset", default="fast",
                     choices=("smoke", "fast", "paper"),
                     help="experiment scale for figure regeneration")


@pytest.fixture(scope="session")
def suite(request) -> ExperimentSuite:
    preset = experiment_preset(request.config.getoption("--repro-preset"))
    return ExperimentSuite(preset)


@pytest.fixture(scope="session")
def publish():
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(result):
        print()
        print(result.table)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.table + "\n")
        return result

    return _publish
