"""Figure 14: energy efficiency (instructions per Watt) vs Spart.

Paper: Rollover improves inst/Watt by 9.3 % on average in two-kernel
sharing — better utilisation amortises static power over more retired work.
"""


def test_fig14_inst_per_watt_improvement(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("fig14")),
                                rounds=1, iterations=1)
    series = result.data["series"]["improvement"]
    average = series["AVG"]
    assert average is not None
    # Fast-preset deviation (documented in EXPERIMENTS.md): at 4-SM
    # granularity Spart's large low-goal overshoot retires free extra
    # instructions, so the average improvement is near zero rather than
    # the paper's +9.3%.  The trend with goal difficulty still matches:
    # Rollover's advantage grows as goals harden and must be positive at
    # the hardest goal, where Spart over-provisions or fails outright.
    assert average > -0.06
    goal_labels = [label for label in series if label != "AVG"]
    assert series[goal_labels[-1]] > series[goal_labels[0]] - 0.01
