"""Extension ablations beyond the paper's figures (DESIGN.md Section 6):
epoch-length sensitivity, warp-scheduler generality, and the motivating
comparison against unmanaged SMK sharing.
"""


def test_ext_epoch_length_flat(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("ext_epoch_length")),
                                rounds=1, iterations=1)
    values = list(result.data["series"]["rollover"].values())
    # Section 4.1 fixes the epoch length citing [17]; QoSreach should not
    # fall off a cliff within a 4x range around the preset value.
    assert max(values) - min(values) <= 0.5


def test_ext_scheduler_quotas_work_over_lrr(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("ext_scheduler")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    # The EWS filter is policy-agnostic: Rollover must deliver a healthy
    # share of goals over LRR too, not only over GTO.
    assert series["lrr"]["QoSreach"] >= series["gto"]["QoSreach"] - 0.5
    assert series["lrr"]["QoSreach"] > 0.3


def test_ext_unmanaged_smk_cannot_do_qos(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("ext_unmanaged")),
                                rounds=1, iterations=1)
    series = result.data["series"]
    # Fine-grained sharing alone biases arbitrarily between kernels
    # (Section 3.1); quota management must reach strictly more goals.
    assert series["rollover"]["AVG"] > series["smk"]["AVG"]

def test_ext_fusion_cannot_do_qos(benchmark, suite, publish):
    result = benchmark.pedantic(lambda: publish(suite.run("ext_fusion")),
                                rounds=1, iterations=1)
    data = result.data
    # Fusion's co-location throughput is in the same ballpark as SMK --
    # its deficiency is control, not throughput (Section 2.3).
    assert data["fused_stp"] > 0.4 * data["smk_stp"]
    # The hardware approach actually delivers per-kernel goals.
    assert data["qos_reach"] > 0.5
