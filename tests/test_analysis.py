"""Tests for the `repro lint` analyzer: every shipped rule must catch its
deliberately-seeded fixture violation and stay quiet on the clean twin."""

import pathlib
import textwrap

import pytest

from repro.analysis import analyze_paths, check_source, select_rules
from repro.analysis.driver import PARSE_ERROR_RULE

REPO = pathlib.Path(__file__).resolve().parents[1]


def rules_of(findings):
    return [finding.rule for finding in findings]


def snippet(source, **kwargs):
    return check_source(textwrap.dedent(source), **kwargs)


# ---------------------------------------------------------------- DET rules

class TestWallClock:
    def test_flags_time_time(self):
        findings = snippet("""
            import time
            def stamp():
                return time.time()
            """)
        assert rules_of(findings) == ["DET001"]

    def test_flags_from_import_alias(self):
        findings = snippet("""
            from time import perf_counter as tick
            x = tick()
            """)
        assert rules_of(findings) == ["DET001"]

    def test_flags_argless_datetime_now(self):
        findings = snippet("""
            from datetime import datetime
            stamp = datetime.now()
            """)
        assert rules_of(findings) == ["DET001"]

    def test_quiet_on_injected_clock(self):
        findings = snippet("""
            def stamp(clock):
                return clock()
            """)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = snippet("""
            import time
            started = time.time()  # repro: noqa=DET001
            """)
        assert findings == []

    def test_bare_noqa_suppresses_everything_on_line(self):
        findings = snippet("""
            import time
            started = time.time()  # repro: noqa
            """)
        assert findings == []


class TestUnseededRandom:
    def test_flags_global_random(self):
        findings = snippet("""
            import random
            pick = random.choice([1, 2, 3])
            """)
        assert rules_of(findings) == ["DET002"]

    def test_flags_unseeded_random_instance(self):
        findings = snippet("""
            import random
            rng = random.Random()
            """)
        assert rules_of(findings) == ["DET002"]

    def test_quiet_on_seeded_random_instance(self):
        # kernels/trace.py's idiom: a per-kernel string seed.
        findings = snippet("""
            import random
            rng = random.Random("pattern:mri-q")
            draws = [rng.random() for _ in range(4)]
            """)
        assert findings == []

    def test_flags_numpy_global_state(self):
        findings = snippet("""
            import numpy as np
            noise = np.random.normal(size=8)
            """)
        assert rules_of(findings) == ["DET002"]

    def test_numpy_default_rng_needs_a_seed(self):
        unseeded = snippet("""
            import numpy.random
            rng = numpy.random.default_rng()
            """)
        seeded = snippet("""
            import numpy.random
            rng = numpy.random.default_rng(1234)
            """)
        assert rules_of(unseeded) == ["DET002"]
        assert seeded == []


class TestSetIteration:
    def test_flags_direct_set_call_iteration(self):
        findings = snippet("""
            def order(warps):
                for warp in set(warps):
                    warp.issue()
            """)
        assert rules_of(findings) == ["DET003"]

    def test_flags_set_literal_and_comprehension(self):
        findings = snippet("""
            def f(items):
                a = [x for x in {1, 2, 3}]
                b = [x for x in {i for i in items}]
                return a, b
            """)
        assert rules_of(findings) == ["DET003", "DET003"]

    def test_flags_name_assigned_from_set(self):
        findings = snippet("""
            def pending(sms):
                ready = set(sms)
                for sm in ready:
                    sm.tick()
            """)
        assert rules_of(findings) == ["DET003"]

    def test_flags_set_difference_iteration(self):
        findings = snippet("""
            def diff(a, b):
                left = set(a)
                for item in left - set(b):
                    yield item
            """)
        assert rules_of(findings) == ["DET003"]

    def test_quiet_when_sorted(self):
        findings = snippet("""
            def order(warps):
                for warp in sorted(set(warps)):
                    warp.issue()
            """)
        assert findings == []

    def test_quiet_on_membership_only_sets(self):
        # sim/cache.py's idiom: a dirty-line set used for membership tests.
        findings = snippet("""
            def track(lines):
                dirty = set()
                dirty.add(7)
                return 7 in dirty and len(dirty) == len(lines)
            """)
        assert findings == []

    def test_rebinding_to_list_disqualifies(self):
        findings = snippet("""
            def f(items):
                bag = set(items)
                bag = sorted(bag)
                for item in bag:
                    yield item
            """)
        assert findings == []


class TestIdOrdering:
    def test_flags_key_id(self):
        findings = snippet("""
            def order(tbs):
                return sorted(tbs, key=id)
            """)
        assert rules_of(findings) == ["DET004"]

    def test_flags_lambda_id(self):
        findings = snippet("""
            def order(tbs):
                tbs.sort(key=lambda tb: id(tb))
            """)
        # The flow engine independently evaluates the lambda body, so the
        # interprocedural FLOW002 confirms the syntactic DET004.
        assert rules_of(findings) == ["DET004", "FLOW002"]

    def test_quiet_on_stable_key(self):
        findings = snippet("""
            def order(tbs):
                return sorted(tbs, key=lambda tb: tb.tb_id)
            """)
        assert findings == []


class TestFilesystemOrder:
    def test_flags_unsorted_listdir(self):
        findings = snippet("""
            import os
            def traces(root):
                return [name for name in os.listdir(root)]
            """)
        assert rules_of(findings) == ["DET005"]

    def test_flags_unsorted_path_glob(self):
        findings = snippet("""
            def sources(root):
                for path in root.rglob("*.py"):
                    yield path
            """)
        assert rules_of(findings) == ["DET005"]

    def test_quiet_when_sorted(self):
        # harness/cache.py's idiom for the code salt.
        findings = snippet("""
            def sources(root):
                return sorted(root.rglob("*.py"))
            """)
        assert findings == []


class TestDictKeysIteration:
    def test_flags_keys_iteration(self):
        findings = snippet("""
            def order(quotas):
                for kernel in quotas.keys():
                    yield kernel
            """)
        assert rules_of(findings) == ["DET006"]
        assert findings[0].severity == "warning"

    def test_quiet_on_items_and_sorted_keys(self):
        findings = snippet("""
            def order(quotas):
                for kernel, quota in quotas.items():
                    yield kernel, quota
                for kernel in sorted(quotas.keys()):
                    yield kernel
            """)
        assert findings == []


class TestFloatAccumulationOrder:
    def test_flags_sum_over_sweep_result(self):
        findings = snippet("""
            def total(runner, specs):
                records = runner.sweep(specs)
                return sum(r.ipc for r in records)
            """)
        assert rules_of(findings) == ["DET007"]
        assert findings[0].severity == "warning"
        assert "math.fsum" in findings[0].message

    def test_flags_sum_of_pool_map_directly(self):
        findings = snippet("""
            def total(pool, cases):
                return sum(pool.map(run, cases))
            """)
        assert rules_of(findings) == ["DET007"]

    def test_flags_list_wrapped_producer(self):
        findings = snippet("""
            def total(pool, cases):
                values = list(pool.imap_unordered(run, cases))
                return sum(values)
            """)
        # FLOAT001 tracks the unordered shape through the list(...) wrap,
        # seconding the syntactic DET007.
        assert rules_of(findings) == ["DET007", "FLOAT001"]

    def test_quiet_on_fsum_and_plain_iterables(self):
        findings = snippet("""
            import math
            def totals(runner, specs, values):
                records = runner.sweep(specs)
                a = math.fsum(r.ipc for r in records)
                b = sum(values)
                c = sum(x * x for x in values)
                return a + b + c
            """)
        assert findings == []

    def test_rebinding_disqualifies_the_name(self):
        findings = snippet("""
            def total(runner, specs):
                records = runner.sweep(specs)
                records = [1, 2, 3]
                return sum(records)
            """)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = snippet("""
            def total(runner, specs):
                records = runner.sweep(specs)
                return sum(r.ipc for r in records)  # repro: noqa=DET007
            """)
        assert findings == []


class TestTimestampIdentity:
    # The positive SQL fixtures are assembled with a runtime ``+`` that
    # splits the timestamp column name, so DET008's string scan never
    # flags this test file's own data (lint --strict runs over tests/).
    def test_flags_order_by_timestamp_column(self):
        findings = snippet(
            'QUERY = "SELECT * FROM cases ORDER BY claimed' + '_at"\n')
        assert rules_of(findings) == ["DET008"]
        assert "claimed_at" in findings[0].message

    def test_flags_timestamp_deeper_in_the_column_list(self):
        findings = snippet(
            'QUERY = "SELECT id FROM experiments ORDER BY status, created'
            + '_at DESC"\n')
        assert rules_of(findings) == ["DET008"]

    def test_quiet_on_content_derived_ordering(self):
        findings = snippet('''
            A = "SELECT * FROM cases ORDER BY case_index LIMIT 1"
            B = "SELECT * FROM experiments ORDER BY id"
            C = "UPDATE cases SET claimed_at = ? WHERE case_index = ?"
            ''')
        assert findings == []

    def test_quiet_on_prose_mentioning_order_by(self):
        findings = snippet('''
            """Rows must never use ORDER BY <timestamp column>; a plain
            ORDER BY over ids is fine, and so is a later timestamp word."""
            ''')
        assert findings == []

    def test_flags_timestamp_key_in_digest_payload(self):
        findings = snippet("""
            def identity(digest):
                return digest({"goal": 0.5, "created_at": 12.0})
            """)
        assert rules_of(findings) == ["DET008"]
        assert "created_at" in findings[0].message

    def test_flags_timestamp_key_in_key_function_call(self):
        findings = snippet("""
            def keyed(case_key):
                return case_key(payload={"timestamp": 1.0})
            """)
        assert rules_of(findings) == ["DET008"]

    def test_quiet_on_timestamp_dict_outside_identity_calls(self):
        findings = snippet("""
            def report(write_row):
                return write_row({"created_at": 12.0, "status": "done"})
            """)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = snippet(
            'QUERY = "SELECT * FROM cases ORDER BY finished'
            + '_at"  # repro: noqa=DET008\n')
        assert findings == []


# ---------------------------------------------------------------- LAY rules

class TestImportContractRule:
    def test_policy_package_importing_engine(self):
        findings = snippet(
            """
            from repro.sim.engine import GPUSimulator
            """,
            name="repro.qos.manager")
        assert rules_of(findings) == ["LAY001"]
        assert "policy-engine-independence" in findings[0].message

    def test_engine_importing_harness(self):
        findings = snippet(
            """
            import repro.harness.runner
            """,
            name="repro.sim.engine")
        assert rules_of(findings) == ["LAY001"]
        assert "engine-harness-independence" in findings[0].message

    def test_runtime_importing_analysis(self):
        findings = snippet(
            """
            from repro.analysis import check_source
            """,
            name="repro.sim.telemetry",
            rule_ids=["LAY001"])
        assert rules_of(findings) == ["LAY001"]
        assert "runtime-analysis-independence" in findings[0].message

    def test_relative_import_of_engine_is_caught(self):
        findings = snippet(
            """
            from ..sim import engine
            """,
            name="repro.qos.manager")
        assert rules_of(findings) == ["LAY001"]

    def test_ungoverned_module_may_import_engine(self):
        findings = snippet(
            """
            from repro.sim.engine import GPUSimulator
            """,
            name="repro.harness.runner")
        assert findings == []

    def test_policy_importing_the_context_is_fine(self):
        findings = snippet(
            """
            from repro.sim.policy import PolicyContext, SharingPolicy
            """,
            name="repro.qos.manager")
        assert findings == []

    def test_controller_package_may_not_import_engine(self):
        findings = snippet(
            """
            from repro.sim.engine import GPUSimulator
            """,
            name="repro.controllers.pid")
        assert rules_of(findings) == ["LAY001"]
        assert "policy-engine-independence" in findings[0].message

    def test_controller_package_may_not_import_analysis(self):
        findings = snippet(
            """
            import repro.analysis
            """,
            name="repro.controllers.base",
            rule_ids=["LAY001"])
        assert rules_of(findings) == ["LAY001"]
        assert "runtime-analysis-independence" in findings[0].message

    def test_expdb_may_not_import_the_simulation_stack(self):
        for forbidden in ("repro.sim", "repro.config",
                          "repro.harness.runner", "repro.harness.cache"):
            findings = snippet(
                f"""
                import {forbidden}
                """,
                name="repro.harness.expdb",
                rule_ids=["LAY001"])
            assert rules_of(findings) == ["LAY001"], forbidden
            assert "expdb-engine-independence" in findings[0].message

    def test_other_harness_modules_may_import_expdb(self):
        # The dependency is one-way: runner/cli layers import the store,
        # never the reverse.
        findings = snippet(
            """
            from repro.harness.expdb import ExperimentDB
            """,
            name="repro.harness.runner",
            rule_ids=["LAY001"])
        assert findings == []


class TestPolicyContextSeamRules:
    def test_flags_attribute_assignment_into_ctx(self):
        findings = snippet(
            """
            class Policy:
                def on_epoch_start(self, ctx, cycle, epoch_index):
                    ctx.quota_hint = 42
            """,
            name="repro.qos.manager")
        assert rules_of(findings) == ["LAY002"]

    def test_flags_assignment_via_annotated_param(self):
        findings = snippet(
            """
            def helper(view: "PolicyContext") -> None:
                view.epoch_cache = {}
            """,
            name="repro.sharing.fairness")
        assert rules_of(findings) == ["LAY002"]

    def test_flags_private_access(self):
        findings = snippet(
            """
            class Policy:
                def on_epoch_start(self, ctx, cycle, epoch_index):
                    ctx._engine.sms[0].wake_all()
            """,
            name="repro.baselines.spart")
        assert rules_of(findings) == ["LAY003"]

    def test_quiet_on_public_surface(self):
        findings = snippet(
            """
            class Policy:
                def on_epoch_start(self, ctx, cycle, epoch_index):
                    for sm_id in range(ctx.num_sms):
                        ctx.set_quota(sm_id, 0, 100.0)
                    local = ctx.epoch
                    if local is not None:
                        _ = local.epoch_ipc
            """,
            name="repro.qos.manager")
        assert findings == []

    def test_engine_side_modules_are_exempt(self):
        # The context's own module assigns its internals freely.
        findings = snippet(
            """
            class PolicyContext:
                def _advance_epoch(self, ctx):
                    ctx._view = None
            """,
            name="repro.sim.policy",
            rule_ids=["LAY002", "LAY003"])
        assert findings == []


# ------------------------------------------------------------ project rules

def write_tree(root, files):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def mini_repro(tmp_path, salted, engine_body="import repro.config\n",
               extra=None):
    files = {
        "src/repro/__init__.py": "",
        "src/repro/config.py": "EPOCH = 2000\n",
        "src/repro/sim/__init__.py": "",
        "src/repro/sim/engine.py": engine_body,
        "src/repro/harness/__init__.py": "",
        "src/repro/harness/runner.py": "import repro.sim.engine\n",
        "src/repro/harness/cache.py": f"_SALTED = {salted!r}\n",
    }
    files.update(extra or {})
    return write_tree(tmp_path, files)


class TestSaltCoverage:
    def test_uncovered_transitive_import_is_flagged(self, tmp_path):
        root = mini_repro(
            tmp_path,
            salted=("sim", "harness/runner.py"),
            engine_body="import repro.config\n")
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SALT001"])
        assert rules_of(result.findings) == ["SALT001"]
        assert "repro.config" in result.findings[0].message

    def test_covered_tree_is_clean(self, tmp_path):
        root = mini_repro(
            tmp_path,
            salted=("config.py", "sim", "harness/runner.py",
                    "harness/cache.py"),
            engine_body="import repro.config\n")
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SALT001"])
        assert result.findings == []

    def test_from_import_of_symbol_resolves_to_module(self, tmp_path):
        # `from repro.mystery import helper` must pull repro/mystery.py
        # into the closure even though repro.mystery.helper is a symbol.
        root = mini_repro(
            tmp_path,
            salted=("config.py", "sim", "harness/runner.py",
                    "harness/cache.py"),
            engine_body="from repro.mystery import helper\n",
            extra={"src/repro/mystery.py": "def helper():\n    return 1\n"})
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SALT001"])
        assert rules_of(result.findings) == ["SALT001"]
        assert "repro.mystery" in result.findings[0].message

    def test_stale_entry_is_flagged(self, tmp_path):
        root = mini_repro(
            tmp_path,
            salted=("config.py", "sim", "harness/runner.py",
                    "harness/cache.py", "ghost.py"))
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SALT002"])
        assert rules_of(result.findings) == ["SALT002"]
        assert "ghost.py" in result.findings[0].message

    def test_rule_skips_trees_without_the_cache_module(self, tmp_path):
        root = write_tree(tmp_path, {"standalone.py": "x = 1\n"})
        result = analyze_paths([root], root=root,
                               rule_ids=["SALT001", "SALT002"])
        assert result.findings == []

    def test_lazily_imported_batch_module_is_flagged(self, tmp_path):
        # The engine imports repro.sim.batch inside a function (so the
        # scan/event cores never pay the numpy import); SALT001 walks
        # function-level imports too, so the batch module cannot silently
        # drop out of the salted closure if the `sim` entry is narrowed.
        root = mini_repro(
            tmp_path,
            salted=("config.py", "sim/engine.py", "harness/runner.py",
                    "harness/cache.py"),
            engine_body=(
                "import repro.config\n"
                "def _run_batch():\n"
                "    from repro.sim.batch import BatchState\n"
                "    return BatchState\n"),
            extra={"src/repro/sim/batch.py":
                   "class BatchState:\n    pass\n"})
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SALT001"])
        assert rules_of(result.findings) == ["SALT001"]
        assert "repro.sim.batch" in result.findings[0].message

    def test_lazily_imported_batch_module_covered_by_sim_dir(self, tmp_path):
        # The shipped tree relies on the `sim` directory entry to cover
        # the batch module; the same lazy import is clean under it.
        root = mini_repro(
            tmp_path,
            salted=("config.py", "sim", "harness/runner.py",
                    "harness/cache.py"),
            engine_body=(
                "import repro.config\n"
                "def _run_batch():\n"
                "    from repro.sim.batch import BatchState\n"
                "    return BatchState\n"),
            extra={"src/repro/sim/batch.py":
                   "class BatchState:\n    pass\n"})
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SALT001"])
        assert result.findings == []

    def test_shipped_salt_covers_the_batch_core_module(self):
        # Editing the batch core must invalidate cached case records just
        # like editing the engine: its results are (by contract) identical
        # to the event core's, but a bug fix there changes what a cache
        # entry produced before the fix means.
        from repro.harness.cache import _SALTED, salted_paths
        assert "sim" in _SALTED
        assert "sim/batch.py" in salted_paths()

    def test_shipped_salt_covers_the_controllers_package(self):
        # The runner imports repro.controllers (PID/MPC quota control), so
        # controller source must participate in the cache's code salt:
        # tuning a gain preset alone would not change GPUConfig hashes of
        # *other* configs, but editing a control law must invalidate
        # everything.
        from repro.harness.cache import _SALTED, salted_paths
        assert "controllers" in _SALTED
        assert any(path.startswith("controllers/")
                   for path in salted_paths())

    def test_shipped_salt_covers_the_experiment_store(self):
        # The runner lazily imports repro.harness.expdb, pulling it into
        # the SALT001 closure: were it missing from _SALTED, editing the
        # claim protocol could not invalidate cached sweeps even though
        # resumability semantics changed under them.
        from repro.harness.cache import _SALTED, salted_paths
        assert "harness/expdb.py" in _SALTED
        assert "harness/expdb.py" in salted_paths()


TELEMETRY_TEMPLATE = """
from dataclasses import dataclass

@dataclass(frozen=True)
class TBMove:
    cycle: int
    sm_id: int

@dataclass(frozen=True)
class KernelEpochRecord:
    name: str
    retired: int
    epoch_ipc: float
    alpha: object

@dataclass(frozen=True)
class EpochRecord:
    epoch_index: int
    kernels: tuple
    tb_moves: tuple

_EPOCH_INT_FIELDS = ({epoch_ints})
_KERNEL_INT_FIELDS = ("retired",)
_KERNEL_FLOAT_FIELDS = ("epoch_ipc",)
_KERNEL_OPT_FIELDS = ("alpha",)
_TB_MOVE_FIELDS = {tb_fields}
"""


def telemetry_tree(tmp_path, epoch_ints='"epoch_index",',
                   tb_fields='("cycle", "sm_id")'):
    return write_tree(tmp_path, {
        "src/repro/__init__.py": "",
        "src/repro/sim/__init__.py": "",
        "src/repro/sim/telemetry.py": TELEMETRY_TEMPLATE.format(
            epoch_ints=epoch_ints, tb_fields=tb_fields),
    })


class TestTelemetrySchemaSync:
    def test_synced_fixture_is_clean(self, tmp_path):
        root = telemetry_tree(tmp_path)
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SCHEMA001"])
        assert result.findings == []

    def test_missing_table_entry_is_flagged(self, tmp_path):
        # EpochRecord grows a field the validation tables never learned.
        root = telemetry_tree(tmp_path, epoch_ints='"epoch_index",')
        telemetry = root / "src/repro/sim/telemetry.py"
        telemetry.write_text(telemetry.read_text().replace(
            "epoch_index: int", "epoch_index: int\n    end_cycle: int"))
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SCHEMA001"])
        assert rules_of(result.findings) == ["SCHEMA001"]
        assert "end_cycle" in result.findings[0].message

    def test_orphan_table_entry_is_flagged(self, tmp_path):
        root = telemetry_tree(tmp_path,
                              tb_fields='("cycle", "sm_id", "phantom")')
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SCHEMA001"])
        assert rules_of(result.findings) == ["SCHEMA001"]
        assert "phantom" in result.findings[0].message

    def test_exporter_must_import_the_validator(self, tmp_path):
        root = telemetry_tree(tmp_path)
        write_tree(root, {
            "src/repro/trace/__init__.py": "",
            "src/repro/trace/jsonl.py": "import json\n",
        })
        result = analyze_paths([root / "src"], root=root,
                               rule_ids=["SCHEMA001"])
        assert rules_of(result.findings) == ["SCHEMA001"]
        assert "validate_epoch_dict" in result.findings[0].message


# ------------------------------------------------------------ driver pieces

class TestDriver:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="SALT001"):
            select_rules(["NOPE999"])

    def test_parse_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = analyze_paths([bad], root=tmp_path)
        assert rules_of(result.findings) == [PARSE_ERROR_RULE]

    def test_pycache_and_egg_info_are_skipped(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__pycache__/junk.py": "import time\ntime.time()\n",
            "pkg.egg-info/setup.py": "import time\ntime.time()\n",
            "pkg/ok.py": "x = 1\n",
        })
        result = analyze_paths([tmp_path], root=tmp_path)
        assert result.findings == []
        assert [m.display for m in result.modules] == ["pkg/ok.py"]

    def test_noqa_lands_in_suppressed(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text("import time\nt = time.time()  # repro: noqa\n")
        result = analyze_paths([source], root=tmp_path)
        assert result.findings == []
        assert rules_of(result.suppressed) == ["DET001"]


# ------------------------------------------------------------- self-check

class TestShippedTreeIsClean:
    def test_repro_lint_strict_is_clean_on_src_and_examples(self):
        result = analyze_paths([REPO / "src", REPO / "examples"], root=REPO)
        assert result.findings == [], "\n".join(
            finding.format() for finding in result.findings)

    def test_shipped_baseline_is_empty(self):
        # Every finding in the tree is fixed or inline-justified; the
        # baseline exists to document the workflow, not to hide debt.
        from repro.analysis.baseline import load_baseline
        entries = load_baseline(REPO / ".repro-lint-baseline.json")
        assert entries == []

    def test_every_registered_rule_has_id_and_summary(self):
        from repro.analysis import all_rules
        registry = all_rules()
        assert {"DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
                "DET007", "DET008", "LAY001", "LAY002", "LAY003", "SALT001",
                "SALT002", "SCHEMA001"} <= set(registry)
        for rule in registry.values():
            assert rule.summary
            assert rule.scope in ("module", "project")
