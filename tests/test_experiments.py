"""Smoke tests for the experiment suite on the tiny 'smoke' preset.

These verify structure and the paper's qualitative orderings, not absolute
numbers; benchmarks/ regenerates the figures at the fast preset.
"""

import pytest

from repro.harness.experiments import ExperimentResult, ExperimentSuite
from repro.harness.presets import experiment_preset


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(experiment_preset("smoke"))


class TestTables:
    def test_table1_matches_machine(self, suite):
        result = suite.table1()
        rows = result.data["rows"]
        assert rows["# of SMs"] == suite.preset.gpu.num_sms
        assert rows["Sched. Policy"] == "GTO"
        assert "Registers" in result.table

    def test_table2_feature_matrix(self, suite):
        result = suite.table2()
        features = dict((row[0], row[1:]) for row in result.data["features"])
        # The paper's design (last column) has every capability.
        fine_grained = [row[-1] for row in result.data["features"][1:]]
        assert all(flag == "y" for flag in fine_grained)
        assert features["Software/Hardware"][-1] == "H"


class TestFigureStructure:
    def test_fig06a_has_all_schemes_and_goals(self, suite):
        result = suite.fig06a()
        series = result.data["series"]
        assert set(series) == {"spart", "naive", "elastic", "rollover"}
        for values in series.values():
            assert "AVG" in values
            assert all(0.0 <= v <= 1.0 for v in values.values())

    def test_fig05_histogram_buckets(self, suite):
        result = suite.fig05()
        histogram = result.data["histogram"]
        assert set(histogram) == {"0-1%", "1-5%", "5-10%", "10-20%", "20+%"}
        assert result.data["missed"] == sum(histogram.values())
        assert result.data["missed"] <= result.data["total"]

    def test_fig06b_and_c_policies(self, suite):
        for result in (suite.fig06b(), suite.fig06c()):
            assert set(result.data["series"]) == {"spart", "rollover"}

    def test_fig07_covers_benchmarks_and_classes(self, suite):
        result = suite.fig07()
        series = result.data["series"]["rollover"]
        for klass in ("C+C", "C+M", "M+M"):
            assert klass in series

    def test_fig09_overshoot_at_least_one(self, suite):
        result = suite.fig09()
        for policy, values in result.data["series"].items():
            for value in values.values():
                if value is not None:
                    assert value >= 0.9

    def test_fig14_improvement_series(self, suite):
        result = suite.fig14()
        assert "improvement" in result.data["series"]

    def test_run_by_id(self, suite):
        result = suite.run("table1")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "table1"

    def test_run_unknown_id(self, suite):
        with pytest.raises(ValueError):
            suite.run("fig99")

    def test_experiment_list_complete(self):
        """Every table/figure of the paper has an experiment entry."""
        ids = set(ExperimentSuite.EXPERIMENTS)
        for required in ("table1", "table2", "fig05", "fig06a", "fig06b",
                         "fig06c", "fig07", "fig08a", "fig08b", "fig08c",
                         "fig09", "fig10", "fig11", "fig12", "fig13",
                         "fig14", "sec48_preemption", "sec48_history",
                         "sec48_static"):
            assert required in ids


class TestExtensions:
    def test_ext_epoch_length_structure(self, suite):
        result = suite.ext_epoch_length()
        values = result.data["series"]["rollover"]
        assert len(values) == 3
        assert all(0.0 <= v <= 1.0 for v in values.values())

    def test_ext_scheduler_both_policies(self, suite):
        result = suite.ext_scheduler()
        assert set(result.data["series"]) == {"gto", "lrr"}

    def test_ext_unmanaged_rollover_wins(self, suite):
        series = suite.ext_unmanaged().data["series"]
        assert series["rollover"]["AVG"] >= series["smk"]["AVG"]

    def test_ext_sharing_regimes_summary(self, suite):
        summary = suite.ext_sharing_regimes().data["summary"]
        assert set(summary) == {"serial", "smk", "fair-smk", "spart"}
        # Concurrency beats serial time multiplexing on system throughput.
        assert summary["smk"]["STP"] > summary["serial"]["STP"]
        # Fairness management produces the most equal slowdowns.
        assert summary["fair-smk"]["fairness"] >= summary["smk"]["fairness"]


class TestPaperShapeClaims:
    """The qualitative orderings the paper reports must hold even at the
    smoke scale (these are the headline results)."""

    def test_rollover_reaches_more_than_naive(self, suite):
        series = suite.fig06a().data["series"]
        assert series["rollover"]["AVG"] > series["naive"]["AVG"]

    def test_history_reaches_more_than_naive(self, suite):
        series = suite.sec48_history().data["series"]
        assert series["history"]["AVG"] >= series["naive"]["AVG"]

    def test_rollover_overshoots_less_than_spart(self, suite):
        series = suite.fig09().data["series"]
        if series["spart"]["AVG"] and series["rollover"]["AVG"]:
            assert series["rollover"]["AVG"] <= series["spart"]["AVG"] + 0.05

    def test_rollover_time_hurts_nonqos_throughput(self, suite):
        series = suite.fig11().data["series"]
        rollover = series["rollover"]["AVG"]
        timed = series["rollover-time"]["AVG"]
        if rollover is not None and timed is not None:
            assert timed <= rollover * 1.1


class TestProvenance:
    """suite.run() must thread experiment-store provenance into the result
    (ISSUE 8): which registered experiments the table was computed from."""

    def test_run_attaches_experiment_provenance(self, suite):
        result = suite.run("fig06a")
        assert isinstance(result, ExperimentResult)
        assert result.provenance, "sweeping figures must cite experiments"
        for experiment_id, spec_hash in result.provenance:
            assert experiment_id.startswith("exp-")
            assert experiment_id == f"exp-{spec_hash[:12]}"
            assert len(spec_hash) == 64

    def test_run_appends_provenance_footer_to_table(self, suite):
        result = suite.run("fig06a")
        footer = result.table.splitlines()[-1]
        assert footer.startswith("[provenance] code salt ")
        for experiment_id, _ in result.provenance:
            assert experiment_id in footer

    def test_tables_carry_salt_but_no_experiments(self, suite):
        # table1 reads the machine config; it sweeps nothing.
        result = suite.run("table1")
        assert result.provenance == ()
        assert "[provenance] code salt " in result.table
        assert "experiments:" not in result.table
