"""Tests for the synthetic workload generators — including behavioural
checks that each archetype exhibits its intended bottleneck on the
simulator."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.synthetic import (
    barrier_kernel,
    cache_resident_kernel,
    compute_kernel,
    irregular_kernel,
    microbenchmark_suite,
    streaming_kernel,
)
from repro.sim import GPUSimulator, LaunchedKernel


def run(spec, cycles=8000):
    gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                    sm=SMConfig(warp_schedulers=2))
    sim = GPUSimulator(gpu, [LaunchedKernel(spec)])
    sim.run(cycles)
    return sim.result().kernels[0]


class TestGeneratorsValidate:
    def test_all_archetypes_construct(self):
        suite = microbenchmark_suite()
        assert set(suite) == {"compute", "streaming", "irregular",
                              "cache-resident", "barrier"}

    def test_streaming_store_fraction_bounds(self):
        with pytest.raises(ValueError):
            streaming_kernel(store_fraction=0.5)

    def test_irregular_fanout_bounds(self):
        with pytest.raises(ValueError):
            irregular_kernel(fanout=0)

    def test_cache_resident_size_bounds(self):
        with pytest.raises(ValueError):
            cache_resident_kernel(working_set_kb=0)

    def test_names_applied(self):
        assert compute_kernel("my-name").name == "my-name"


class TestArchetypeBehaviour:
    def test_compute_much_faster_than_streaming(self):
        compute_ipc = run(compute_kernel()).ipc
        stream_ipc = run(streaming_kernel()).ipc
        # The test machine peaks at 128 thread-IPC (2 SMs x 2 schedulers),
        # which the compute kernel saturates; streaming sits far below.
        assert compute_ipc > 2.5 * stream_ipc
        assert compute_ipc > 120

    def test_ilp_raises_compute_throughput(self):
        low = run(compute_kernel("syn-ilp-low", ilp=0.1)).ipc
        high = run(compute_kernel("syn-ilp-high", ilp=0.95)).ipc
        assert high > low

    def test_irregular_generates_more_traffic_per_instruction(self):
        stream = run(streaming_kernel())
        gather = run(irregular_kernel())
        stream_rate = stream.memory["requests"] / max(1, stream.retired_thread_insts)
        gather_rate = gather.memory["requests"] / max(1, gather.retired_thread_insts)
        assert gather_rate > stream_rate

    def test_cache_resident_hits_more_than_streaming(self):
        resident = run(cache_resident_kernel(working_set_kb=64))
        stream = run(streaming_kernel())
        resident_hit = resident.memory["l1_hits"] / max(1, resident.memory["requests"])
        stream_hit = stream.memory["l1_hits"] / max(1, stream.memory["requests"])
        assert resident_hit > stream_hit

    def test_barrier_kernel_completes_tbs(self):
        result = run(barrier_kernel(), cycles=12_000)
        assert result.completed_tbs > 0

    def test_working_set_inside_l2_avoids_dram(self):
        resident = run(cache_resident_kernel("syn-l2-res", working_set_kb=192))
        stream = run(streaming_kernel("syn-l2-str", footprint_mb=512))
        resident_dram = (resident.memory["dram_accesses"]
                         / max(1, resident.memory["requests"]))
        stream_dram = (stream.memory["dram_accesses"]
                       / max(1, stream.memory["requests"]))
        assert resident_dram < stream_dram
