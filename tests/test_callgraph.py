"""Symbol table + call graph resolution (`repro.analysis.callgraph`).

Resolution must survive the spellings real code uses: import aliases,
module-level ``f = g`` aliasing, ``self``/``super()`` dispatch through
project-local bases, constructor calls, decorated defs, and receiver
types learned from parameter annotations or constructor assignments.
"""

import ast
import pathlib
import textwrap

from repro.analysis.callgraph import build_callgraph
from repro.analysis.core import ModuleInfo, Project


def make_project(**modules):
    """A Project from ``name=source`` pairs (dotted names allowed via
    double underscores: ``repro__sim__policy`` → ``repro.sim.policy``)."""
    infos = []
    for name, source in modules.items():
        dotted = name.replace("__", ".")
        source = textwrap.dedent(source)
        display = dotted.replace(".", "/") + ".py"
        infos.append(ModuleInfo(
            path=pathlib.Path(display), display=display, source=source,
            tree=ast.parse(source), name=dotted))
    return Project(infos)


def calls_in(graph, qname):
    return list(graph.iter_calls(graph.functions[qname]))


class TestSymbolTable:
    def test_functions_classes_and_methods_are_indexed(self):
        graph = build_callgraph(make_project(mod="""
            def run():
                pass

            class Engine:
                def step(self):
                    pass

                @staticmethod
                def version():
                    pass
            """))
        assert "mod.run" in graph.functions
        assert "mod.Engine" in graph.classes
        step = graph.functions["mod.Engine.step"]
        assert step.is_method and step.binds_instance
        assert step.receiver_param == "self"
        version = graph.functions["mod.Engine.version"]
        assert not version.binds_instance and version.receiver_param is None

    def test_decorated_defs_keep_their_qname(self):
        graph = build_callgraph(make_project(mod="""
            import functools

            def wrap(fn):
                return fn

            @wrap
            @functools.lru_cache(maxsize=None)
            def cached():
                pass
            """))
        info = graph.functions["mod.cached"]
        assert info.decorators == ("wrap", "functools.lru_cache")


class TestResolution:
    def test_import_alias_resolves_to_project_function(self):
        graph = build_callgraph(make_project(
            helpers="""
                def stamp():
                    return 1
                """,
            caller="""
                from helpers import stamp as s

                def use():
                    return s()
                """))
        ((_, target),) = calls_in(graph, "caller.use")
        assert target.kind == "function"
        assert target.qname == "helpers.stamp"

    def test_module_level_function_alias(self):
        graph = build_callgraph(make_project(mod="""
            def _impl():
                return 1

            run = _impl

            def use():
                return run()
            """))
        ((_, target),) = calls_in(graph, "mod.use")
        assert (target.kind, target.qname) == ("function", "mod._impl")

    def test_self_dispatch_walks_project_bases(self):
        graph = build_callgraph(make_project(mod="""
            class Base:
                def shared(self):
                    return 0

            class Child(Base):
                def use(self):
                    return self.shared()
            """))
        ((_, target),) = calls_in(graph, "mod.Child.use")
        assert (target.kind, target.qname) == ("function", "mod.Base.shared")

    def test_super_dispatch(self):
        graph = build_callgraph(make_project(mod="""
            class Base:
                def setup(self):
                    return 0

            class Child(Base):
                def setup(self):
                    return super().setup()
            """))
        calls = calls_in(graph, "mod.Child.setup")
        targets = {(t.kind, t.qname) for _, t in calls}
        assert ("function", "mod.Base.setup") in targets

    def test_constructor_call_and_callee_body(self):
        graph = build_callgraph(make_project(mod="""
            class Engine:
                def __init__(self, n):
                    self.n = n

            def build():
                return Engine(4)
            """))
        ((_, target),) = calls_in(graph, "mod.build")
        assert (target.kind, target.qname) == ("constructor", "mod.Engine")
        body = graph.callee_body(target)
        assert body is not None and body.qname == "mod.Engine.__init__"

    def test_external_and_unknown_targets(self):
        graph = build_callgraph(make_project(mod="""
            import time

            def use(obj):
                time.time()
                obj.poke()
            """))
        targets = [t for _, t in calls_in(graph, "mod.use")]
        assert ("external", "time.time") in [(t.kind, t.qname)
                                             for t in targets]
        assert ("unknown-method", "poke") in [(t.kind, t.qname)
                                              for t in targets]


class TestLocalTypes:
    def test_parameter_annotation_binds_receiver_class(self):
        graph = build_callgraph(make_project(
            repro__sim__policy="""
                class PolicyContext:
                    def set_quota(self, kernel, value):
                        pass
                """,
            repro__qos__policy="""
                from repro.sim.policy import PolicyContext

                def decide(ctx: PolicyContext):
                    ctx.set_quota("k", 1)

                def decide_str(ctx: "PolicyContext"):
                    ctx.set_quota("k", 2)
                """))
        for qname in ("repro.qos.policy.decide", "repro.qos.policy.decide_str"):
            ((_, target),) = calls_in(graph, qname)
            assert (target.kind, target.qname) == (
                "function", "repro.sim.policy.PolicyContext.set_quota"), qname

    def test_constructor_assignment_binds_and_rebinding_drops(self):
        graph = build_callgraph(make_project(mod="""
            class A:
                def go(self):
                    pass

            def single():
                obj = A()
                obj.go()

            def rebound(mystery):
                obj = A()
                obj = mystery()
                obj.go()
            """))
        single_targets = {(t.kind, t.qname)
                          for _, t in calls_in(graph, "mod.single")}
        assert single_targets == {("constructor", "mod.A"),
                                  ("function", "mod.A.go")}
        rebound_targets = {(t.kind, t.qname)
                           for _, t in calls_in(graph, "mod.rebound")}
        assert ("function", "mod.A.go") not in rebound_targets
        assert ("unknown-method", "go") in rebound_targets


class TestEdges:
    def test_callers_of_reverse_edges(self):
        graph = build_callgraph(make_project(
            helpers="""
                def leaf():
                    return 1
                """,
            caller="""
                import helpers

                def one():
                    return helpers.leaf()

                def two():
                    return helpers.leaf() + one()
                """))
        assert graph.callers_of("helpers.leaf") == {"caller.one",
                                                    "caller.two"}
        assert graph.callers_of("caller.one") == {"caller.two"}
        assert graph.callers_of("caller.two") == set()

    def test_functions_of_module(self):
        graph = build_callgraph(make_project(
            a="def f():\n    pass\n",
            b="def g():\n    pass\n"))
        assert [info.qname for info in graph.functions_of_module("a")] == [
            "a.f"]
