"""Tests for ASCII report formatting."""

from repro.harness.report import format_table, series_rows


class TestFormatTable:
    def test_contains_title_and_headers(self):
        table = format_table("My Figure", "goal", ("a", "b"),
                             [("50%", 0.5, 0.25)])
        assert "My Figure" in table
        assert "goal" in table
        assert "a" in table and "b" in table

    def test_floats_formatted(self):
        table = format_table("T", "x", ("v",), [("row", 0.123456)])
        assert "0.123" in table

    def test_none_rendered_as_dash(self):
        table = format_table("T", "x", ("v",), [("row", None)])
        assert "-" in table.splitlines()[-1]

    def test_notes_appended(self):
        table = format_table("T", "x", ("v",), [("row", 1)],
                             notes="paper: 42")
        assert table.endswith("paper: 42")

    def test_integers_not_float_formatted(self):
        table = format_table("T", "x", ("v",), [("row", 7)])
        assert " 7" in table
        assert "7.000" not in table

    def test_row_count(self):
        rows = [(f"r{i}", i) for i in range(5)]
        table = format_table("T", "x", ("v",), rows)
        assert len(table.splitlines()) == 4 + 5  # header block + rows


class TestSeriesRows:
    def test_pivots_series(self):
        series = {"a": {"x1": 1.0, "x2": 2.0}, "b": {"x1": 3.0}}
        rows = series_rows(["x1", "x2"], series, ["a", "b"])
        assert rows == [("x1", 1.0, 3.0), ("x2", 2.0, None)]
