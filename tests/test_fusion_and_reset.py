"""Tests for the kernel-fusion baseline and context-reset preemption."""

import pytest

from repro.config import GPUConfig, PreemptionConfig, SMConfig
from repro.kernels import get_kernel
from repro.kernels.fusion import fuse_kernels, fused_share
from repro.sim import GPUSimulator, LaunchedKernel


class TestFuseKernels:
    def test_mix_blends_by_thread_ratio(self):
        sgemm, lbm = get_kernel("sgemm"), get_kernel("lbm")
        fused = fuse_kernels(sgemm, lbm, thread_ratio=0.5)
        expected_ldg = 0.5 * sgemm.mix.ldg + 0.5 * lbm.mix.ldg
        assert fused.mix.ldg == pytest.approx(expected_ldg)

    def test_static_resources_union(self):
        sgemm, lbm = get_kernel("sgemm"), get_kernel("lbm")
        fused = fuse_kernels(sgemm, lbm)
        assert fused.regs_per_thread == max(sgemm.regs_per_thread,
                                            lbm.regs_per_thread)
        assert fused.smem_per_tb_bytes == (sgemm.smem_per_tb_bytes
                                           + lbm.smem_per_tb_bytes)
        assert fused.threads_per_tb == max(sgemm.threads_per_tb,
                                           lbm.threads_per_tb)

    def test_register_pressure_reduces_occupancy(self):
        """Fusion's classic cost: the fused kernel fits fewer TBs than the
        lighter constituent did."""
        sgemm, lbm = get_kernel("sgemm"), get_kernel("lbm")
        fused = fuse_kernels(sgemm, lbm)
        sm = SMConfig()
        assert fused.max_tbs_per_sm(sm) <= min(sgemm.max_tbs_per_sm(sm),
                                               lbm.max_tbs_per_sm(sm))

    def test_barrier_survives_fusion(self):
        fused = fuse_kernels(get_kernel("sgemm"), get_kernel("lbm"))
        assert fused.mix.barrier_per_iteration  # sgemm's barrier

    def test_ratio_bounds(self):
        sgemm, lbm = get_kernel("sgemm"), get_kernel("lbm")
        with pytest.raises(ValueError):
            fuse_kernels(sgemm, lbm, thread_ratio=0.0)
        with pytest.raises(ValueError):
            fuse_kernels(sgemm, lbm, thread_ratio=1.0)

    def test_fused_kernel_is_runnable(self):
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        sm=SMConfig(warp_schedulers=2))
        fused = fuse_kernels(get_kernel("sgemm"), get_kernel("lbm"))
        sim = GPUSimulator(gpu, [LaunchedKernel(fused)])
        sim.run(3000)
        assert sim.result().kernels[0].retired_thread_insts > 0

    def test_fused_share_is_only_an_estimate(self):
        first, second = fused_share(100.0, 0.3)
        assert first == pytest.approx(30.0)
        assert second == pytest.approx(70.0)
        with pytest.raises(ValueError):
            fused_share(-1.0, 0.3)

    def test_default_name(self):
        fused = fuse_kernels(get_kernel("sgemm"), get_kernel("lbm"))
        assert "sgemm" in fused.name and "lbm" in fused.name


class TestContextReset:
    def _gpu(self, mode):
        return GPUConfig(num_sms=1, num_mcs=1, epoch_length=500,
                         sm=SMConfig(warp_schedulers=2),
                         preemption=PreemptionConfig(mode=mode))

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            PreemptionConfig(mode="drop")

    def test_reset_eviction_is_instant(self):
        config = PreemptionConfig(mode="reset")
        assert config.eviction_cycles(1 << 20) == 0

    def _evict_one(self, mode):
        sim = GPUSimulator(self._gpu(mode),
                           [LaunchedKernel(get_kernel("sgemm"))])
        sim.run(1000)  # let TBs make progress
        victim = sim.sms[0].pick_eviction_victim(0)
        sim.preemption.begin_eviction(sim.sms[0], victim, sim.cycle)
        return sim

    def test_reset_charges_wasted_work(self):
        sim = self._evict_one("reset")
        assert sim.preemption.wasted_thread_insts > 0
        assert sim.result().extra["wasted_thread_insts"] > 0

    def test_save_mode_wastes_nothing(self):
        sim = self._evict_one("save")
        assert sim.preemption.wasted_thread_insts == 0
        assert sim.preemption.stall_cycles > 0

    def test_reset_has_no_stall_but_save_does(self):
        reset = self._evict_one("reset")
        save = self._evict_one("save")
        assert reset.preemption.stall_cycles == 0
        assert save.preemption.stall_cycles > 0
