"""Tests for the cluster scheduler and the online demand predictor."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.osched import (
    Application,
    ClusterScheduler,
    GPUSlot,
    OnlineDemandPredictor,
)
from repro.qos import TransferModel


def tiny_gpu():
    return GPUConfig(num_sms=2, num_mcs=1, epoch_length=400,
                     idle_warp_samples=8, sm=SMConfig(warp_schedulers=2))


def compute_app(name, qos=True, insts=50_000, period=2e-5):
    spec = KernelSpec(
        name=f"{name}-kernel", threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.9, sfu=0.0, ldg=0.06, stg=0.02, lds=0.02),
        memory=MemoryPattern(footprint_bytes=1 << 21, reuse_fraction=0.8),
        ilp=0.8, body_length=16, iterations_per_tb=3)
    return Application(name, spec, period_s=period,
                       instructions_per_job=insts, qos=qos)


def memory_app(name, qos=False, period=2e-5):
    spec = KernelSpec(
        name=f"{name}-kernel", threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.35, sfu=0.0, ldg=0.5, stg=0.15, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 27, reuse_fraction=0.0,
                             coalesced_fraction=0.5, uncoalesced_degree=4),
        ilp=0.2, body_length=16, iterations_per_tb=2, intensity="memory")
    return Application(name, spec, period_s=period,
                       instructions_per_job=1000, qos=qos)


class TestPlacement:
    def test_requires_fleet(self):
        with pytest.raises(ValueError):
            ClusterScheduler([])

    def test_memory_tenants_spread_out(self):
        scheduler = ClusterScheduler([tiny_gpu(), tiny_gpu()])
        placements = scheduler.place([memory_app("m1"), memory_app("m2")])
        assert placements["m1"] != placements["m2"]

    def test_balanced_tenant_counts(self):
        scheduler = ClusterScheduler([tiny_gpu(), tiny_gpu()])
        apps = [compute_app(f"c{i}", qos=False) for i in range(4)]
        placements = scheduler.place(apps)
        per_gpu = [list(placements.values()).count(i) for i in range(2)]
        assert per_gpu == [2, 2]

    def test_qos_placed_before_best_effort(self):
        """The QoS tenant must land on the emptiest slot, not behind the
        best-effort crowd."""
        scheduler = ClusterScheduler([tiny_gpu(), tiny_gpu()])
        apps = [compute_app("be1", qos=False), compute_app("be2", qos=False),
                compute_app("important", qos=True)]
        placements = scheduler.place(apps)
        qos_gpu = placements["important"]
        sharing = [name for name, gpu in placements.items()
                   if gpu == qos_gpu and name != "important"]
        assert len(sharing) <= 1

    def test_slot_score_penalises_memory_stacking(self):
        slot = GPUSlot(0, tiny_gpu())
        base = slot.placement_score(memory_app("m1"))
        slot.tenants.append(memory_app("m0"))
        stacked = slot.placement_score(memory_app("m1"))
        assert stacked > base + 5


class TestClusterRun:
    def test_end_to_end_validation(self):
        gpu = tiny_gpu()
        scheduler = ClusterScheduler([gpu, gpu],
                                     transfers=TransferModel.unified())
        window = 2e-5  # ~24K cycles at 1216 MHz
        apps = [compute_app("svc-a", insts=30_000, period=window / 6),
                compute_app("svc-b", insts=30_000, period=window / 6),
                memory_app("batch", qos=False, period=window / 6)]
        report = scheduler.run(apps, seconds=window)
        assert set(report.placements) == {"svc-a", "svc-b", "batch"}
        occupied = [r for r in report.gpu_reports if r is not None]
        assert occupied
        # Spread QoS demand should keep drops minimal.
        assert report.total_drops <= 2

    def test_empty_gpu_has_no_report(self):
        scheduler = ClusterScheduler([tiny_gpu(), tiny_gpu(), tiny_gpu()],
                                     transfers=TransferModel.unified())
        report = scheduler.run([compute_app("only", insts=1000)],
                               seconds=1e-5)
        assert report.gpu_reports.count(None) == 2
        assert report.gpu_of("only") in (0, 1, 2)


class TestOnlineDemandPredictor:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OnlineDemandPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            OnlineDemandPredictor(warmup_samples=0)

    def test_observe_and_estimate(self):
        predictor = OnlineDemandPredictor(alpha=0.5)
        for value in (100, 110, 90, 105):
            predictor.observe("app", value)
        estimate = predictor.estimate("app")
        assert 90 <= estimate.mean <= 110
        assert estimate.samples == 4

    def test_margin_covers_variance(self):
        predictor = OnlineDemandPredictor(alpha=0.5)
        for value in (100, 200, 100, 200, 100, 200):
            predictor.observe("noisy", value)
        estimate = predictor.estimate("noisy")
        assert estimate.with_margin(2.0) > estimate.mean
        assert estimate.with_margin(2.0) >= 180  # covers the high tail

    def test_stable_workload_predicts_tightly(self):
        predictor = OnlineDemandPredictor()
        for _ in range(10):
            predictor.observe("stable", 1000.0)
        estimate = predictor.estimate("stable")
        assert estimate.mean == pytest.approx(1000.0)
        assert estimate.deviation == pytest.approx(0.0)
        assert predictor.prediction_error("stable") == pytest.approx(0.0)

    def test_readiness_after_warmup(self):
        predictor = OnlineDemandPredictor(warmup_samples=3)
        predictor.observe("app", 10)
        assert not predictor.ready("app")
        predictor.observe("app", 10)
        predictor.observe("app", 10)
        assert predictor.ready("app")

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            OnlineDemandPredictor().estimate("ghost")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OnlineDemandPredictor().observe("app", -1)

    def test_prediction_error_backtest(self):
        predictor = OnlineDemandPredictor(alpha=0.5)
        for value in (100, 120, 80, 110):
            predictor.observe("var", value)
        assert predictor.prediction_error("var") > 0


class TestClusterReportDropSplit:
    def test_qos_drops_separated(self):
        gpu = tiny_gpu()
        scheduler = ClusterScheduler([gpu], transfers=TransferModel.unified())
        window = 1.2e-5
        apps = [compute_app("svc", insts=20_000, period=window / 4),
                # Infeasible best-effort demand: drops, but not SLO drops.
                memory_app("hopeless", qos=False, period=window / 400)]
        report = scheduler.run(apps, seconds=window)
        assert report.qos_drops <= report.total_drops
