"""Tests for the paper-reference shape checks and EXPERIMENTS.md renderer."""

import pytest

from repro.harness.experiments import ExperimentResult, ExperimentSuite
from repro.harness.paper import (
    PAPER_REPORTED,
    ShapeCheck,
    evaluate_experiment,
    render_comparison,
)


def result_with(experiment_id, data):
    return ExperimentResult(experiment_id, f"title-{experiment_id}",
                            f"table-{experiment_id}", data)


class TestCoverage:
    def test_every_paper_artifact_has_reference_text(self):
        for artifact in ("fig05", "fig06a", "fig06b", "fig06c", "fig07",
                         "fig08a", "fig08b", "fig08c", "fig09", "fig10",
                         "fig11", "fig12", "fig13", "fig14", "sec48a",
                         "sec48b", "sec48c", "table1", "table2"):
            assert artifact in PAPER_REPORTED

    def test_unknown_experiment_yields_no_checks(self):
        assert evaluate_experiment(result_with("ext_custom", {})) == []


class TestFig06aChecks:
    def _data(self, naive, spart, rollover, elastic):
        return {"series": {
            "naive": {"AVG": naive}, "spart": {"AVG": spart},
            "rollover": {"AVG": rollover}, "elastic": {"AVG": elastic}}}

    def test_paper_numbers_pass(self):
        checks = evaluate_experiment(result_with(
            "fig06a", self._data(0.206, 0.788, 0.884, 0.86)))
        assert all(check.holds for check in checks)

    def test_inverted_ordering_fails(self):
        checks = evaluate_experiment(result_with(
            "fig06a", self._data(0.9, 0.5, 0.4, 0.4)))
        assert any(not check.holds for check in checks)


class TestFig09Checks:
    def test_paper_numbers_pass(self):
        data = {"series": {"spart": {"AVG": 1.116},
                           "rollover": {"AVG": 1.028}}}
        checks = evaluate_experiment(result_with("fig09", data))
        assert all(check.holds for check in checks)

    def test_excess_overshoot_fails(self):
        data = {"series": {"spart": {"AVG": 1.1},
                           "rollover": {"AVG": 1.4}}}
        checks = evaluate_experiment(result_with("fig09", data))
        assert any(not check.holds for check in checks)


class TestFig05Checks:
    def test_paper_like_histogram_passes(self):
        data = {"histogram": {"0-1%": 300, "1-5%": 250, "5-10%": 100,
                              "10-20%": 40, "20+%": 24},
                "total": 900, "missed": 714, "overshoot": 1.013}
        checks = evaluate_experiment(result_with("fig05", data))
        assert all(check.holds for check in checks)

    def test_distant_misses_fail(self):
        data = {"histogram": {"0-1%": 0, "1-5%": 10, "5-10%": 0,
                              "10-20%": 200, "20+%": 300},
                "total": 900, "missed": 510, "overshoot": 1.0}
        checks = evaluate_experiment(result_with("fig05", data))
        assert any(not check.holds for check in checks)


class TestThroughputChecks:
    def test_none_averages_tolerated(self):
        data = {"series": {"spart": {"AVG": None},
                           "rollover": {"AVG": 0.3}}}
        checks = evaluate_experiment(result_with("fig08a", data))
        assert checks and checks[0].holds


class TestRender:
    def test_render_includes_table_and_verdicts(self):
        result = result_with("fig09", {})
        checks = [ShapeCheck("claim text", True, "x=1"),
                  ShapeCheck("failing claim", False, "y=2")]
        text = render_comparison(result, checks)
        assert "table-fig09" in text
        assert "claim text" in text
        assert "**no**" in text
        assert PAPER_REPORTED["fig09"] in text

    def test_render_without_checks(self):
        text = render_comparison(result_with("table1", {}), [])
        assert "table-table1" in text
        assert "| shape claim |" not in text
