"""Tests for thread blocks and SM resource accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SMConfig
from repro.kernels.spec import KernelSpec
from repro.sim.tb import SMResources, ThreadBlock
from repro.sim.warp import Warp, WarpState


def small_spec(name="tb-test", threads=64, regs=16, smem=1024):
    return KernelSpec(name=name, threads_per_tb=threads,
                      regs_per_thread=regs, smem_per_tb_bytes=smem)


class TestSMResources:
    def test_admit_accumulates(self):
        resources = SMResources(SMConfig())
        spec = small_spec()
        resources.admit(spec)
        assert resources.threads == 64
        assert resources.tbs == 1
        assert resources.registers_bytes == spec.regs_per_tb_bytes
        assert resources.shared_memory_bytes == 1024

    def test_release_restores(self):
        resources = SMResources(SMConfig())
        spec = small_spec()
        resources.admit(spec)
        resources.release(spec)
        assert (resources.threads, resources.tbs,
                resources.registers_bytes,
                resources.shared_memory_bytes) == (0, 0, 0, 0)

    def test_admit_rejects_when_full(self):
        resources = SMResources(SMConfig(max_threads=64))
        spec = small_spec()
        resources.admit(spec)
        assert resources.can_admit(spec) is False
        with pytest.raises(RuntimeError):
            resources.admit(spec)

    def test_tb_slot_limit(self):
        resources = SMResources(SMConfig(max_tbs=2))
        spec = small_spec()
        resources.admit(spec)
        resources.admit(spec)
        assert resources.can_admit(spec) is False

    def test_release_underflow_detected(self):
        resources = SMResources(SMConfig())
        with pytest.raises(RuntimeError):
            resources.release(small_spec())

    def test_utilisation(self):
        config = SMConfig()
        resources = SMResources(config)
        spec = small_spec(threads=1024)
        resources.admit(spec)
        util = resources.utilisation()
        assert util["threads"] == pytest.approx(0.5)
        assert 0 < util["registers"] < 1
        assert util["tbs"] == pytest.approx(1 / 32)

    @given(st.lists(st.sampled_from(["admit", "release"]), max_size=60))
    @settings(max_examples=60)
    def test_never_negative_never_over(self, operations):
        """Property: any legal admit/release history keeps usage in range."""
        config = SMConfig(max_threads=256, max_tbs=4)
        resources = SMResources(config)
        spec = small_spec()
        admitted = 0
        for operation in operations:
            if operation == "admit" and resources.can_admit(spec):
                resources.admit(spec)
                admitted += 1
            elif operation == "release" and admitted:
                resources.release(spec)
                admitted -= 1
        assert 0 <= resources.threads <= config.max_threads
        assert 0 <= resources.tbs <= config.max_tbs
        assert 0 <= resources.registers_bytes <= config.registers_bytes


class TestThreadBlockBarrier:
    def _tb_with_warps(self, count):
        spec = small_spec()
        tb = ThreadBlock(0, 0, spec, 0)
        for warp_id in range(count):
            tb.warps.append(Warp(0, tb, warp_id, seed=warp_id + 1,
                                 start_cursor=0))
        return tb

    def test_not_released_until_all_arrive(self):
        tb = self._tb_with_warps(3)
        assert tb.arrive_barrier(tb.warps[0], cycle=10) is False
        assert tb.arrive_barrier(tb.warps[1], cycle=11) is False
        assert tb.warps[0].state == WarpState.AT_BARRIER

    def test_last_arrival_releases_everyone(self):
        tb = self._tb_with_warps(3)
        tb.arrive_barrier(tb.warps[0], cycle=10)
        tb.arrive_barrier(tb.warps[1], cycle=11)
        assert tb.arrive_barrier(tb.warps[2], cycle=12) is True
        for warp in tb.warps:
            assert warp.state == WarpState.RUNNING
            assert warp.ready_at == 13
        assert tb.barrier_arrived == 0  # reset for the next barrier

    def test_barrier_reusable(self):
        tb = self._tb_with_warps(2)
        tb.arrive_barrier(tb.warps[0], 0)
        tb.arrive_barrier(tb.warps[1], 0)
        assert tb.arrive_barrier(tb.warps[0], 5) is False
        assert tb.arrive_barrier(tb.warps[1], 6) is True


class TestThreadBlockLifecycle:
    def test_finished(self):
        tb = ThreadBlock(0, 0, small_spec(), 0)
        tb.warps.extend(Warp(0, tb, i, 1, 0) for i in range(2))
        assert tb.finished is False
        tb.done_warps = 2
        assert tb.finished is True
        assert tb.live_warps == 0

    def test_freeze_marks_warps(self):
        tb = ThreadBlock(0, 0, small_spec(), 0)
        tb.warps.extend(Warp(0, tb, i, 1, 0) for i in range(3))
        tb.warps[0].state = WarpState.DONE
        tb.freeze()
        assert tb.evicting is True
        assert tb.warps[0].state == WarpState.DONE  # done warps untouched
        assert tb.warps[1].state == WarpState.FROZEN
        assert tb.warps[2].state == WarpState.FROZEN
