"""The serving layer: arrivals, dispatch, metrics and the load-sweep harness.

Covers the subsystem's determinism contract end to end:

* arrival processes are deterministic per seed and emit ordered streams;
* the dispatcher launches FIFO within a class, honours admission policies,
  and accounts every rejection;
* request records round-trip strictly through the JSONL schema;
* the serving runner's sweeps are byte-identical across serial and
  parallel execution and across an interrupted-then-resumed experiment;
* the ``serve`` cache kind sits inside the code salt (SALT001 regression).
"""

import io
import json

import pytest

from repro.config import GPUConfig, SMConfig
from repro.harness.cache import CaseCache
from repro.harness.expdb import ExperimentDB
from repro.harness.runner import SweepInterrupted
from repro.serve import (Dispatcher, PeriodicArrivals, PoissonArrivals,
                         QueueCap, RequestClass, read_request_trace,
                         request_record_to_dict, trace_arrivals,
                         validate_request_dict, write_request_trace)
from repro.serve.runner import ServeRunner, ServeSpec

GPU = GPUConfig(num_sms=2, num_mcs=1, epoch_length=600, idle_warp_samples=6,
                sm=SMConfig(warp_schedulers=2))

#: Fast registry kernels (one TB drains in a few thousand cycles on the
#: 2-SM test machine), so served cases finish within short horizons.
CLASSES = (("rt", "mri-q", 8000, 1, 1.0), ("bg", "sad", 16000, 1, 1.0))

HORIZON = 10000


def serve_spec(load, seed=0, **kwargs):
    return ServeSpec(process="poisson",
                     params=(("mean_interarrival_cycles", float(load)),),
                     classes=CLASSES, seed=seed, horizon_cycles=HORIZON,
                     **kwargs)


SPECS = [serve_spec(load) for load in (2500, 1500, 1000)]


def request_classes():
    return tuple(RequestClass(name, kernel, slo, grid, weight)
                 for name, kernel, slo, grid, weight in CLASSES)


def dump(outcomes):
    """Byte-level form of a sweep result (the differential currency)."""
    return json.dumps([outcome.to_value() for outcome in outcomes],
                      sort_keys=True)


# ------------------------------------------------------------------ arrivals


class TestArrivals:
    def test_same_seed_same_stream(self):
        process = PoissonArrivals(request_classes(), 1000.0, seed=9)
        first = process.generate(50000)
        second = PoissonArrivals(request_classes(), 1000.0,
                                 seed=9).generate(50000)
        assert first == second
        assert len(first) > 10

    def test_seed_changes_stream(self):
        base = PoissonArrivals(request_classes(), 1000.0, seed=0)
        other = PoissonArrivals(request_classes(), 1000.0, seed=1)
        assert base.generate(50000) != other.generate(50000)

    def test_streams_are_ordered_with_sequential_ids(self):
        requests = PoissonArrivals(request_classes(), 500.0,
                                   seed=3).generate(50000)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        for earlier, later in zip(requests, requests[1:]):
            assert earlier.arrival_cycle <= later.arrival_cycle
        assert all(r.arrival_cycle < 50000 for r in requests)

    def test_generate_is_repeatable_on_one_instance(self):
        # generate() reseeds internally: calling it twice must not chain
        # the RNG state from the first call into the second.
        process = PoissonArrivals(request_classes(), 800.0, seed=4)
        assert process.generate(20000) == process.generate(20000)

    def test_periodic_is_deterministic_and_staggered(self):
        process = PeriodicArrivals(request_classes(), 4000)
        requests = process.generate(12000)
        by_class = {}
        for request in requests:
            by_class.setdefault(request.request_class, []).append(
                request.arrival_cycle)
        # Class 0 at phase 0, class 1 staggered half a period in.
        assert by_class["rt"] == [0, 4000, 8000]
        assert by_class["bg"] == [2000, 6000, 10000]

    def test_trace_round_trip_and_order_validation(self):
        requests = PoissonArrivals(request_classes(), 1000.0,
                                   seed=2).generate(20000)
        payloads = [request.to_dict() for request in requests]
        assert trace_arrivals(payloads) == requests
        if len(payloads) >= 2:
            reordered = [payloads[-1]] + payloads[:-1]
            with pytest.raises(ValueError, match="arrival order"):
                trace_arrivals(reordered)

    def test_class_validation(self):
        with pytest.raises(ValueError, match="slo_cycles"):
            RequestClass("x", "mri-q", 0)
        with pytest.raises(ValueError, match="unique"):
            PoissonArrivals((RequestClass("a", "mri-q", 10),
                             RequestClass("a", "sad", 10)), 100.0)
        with pytest.raises(ValueError, match="at least one class"):
            PoissonArrivals((), 100.0)


# ---------------------------------------------------------------- dispatcher


class TestDispatcher:
    def _serve(self, admission=None, max_concurrent=1, load=1500.0, seed=5):
        requests = PoissonArrivals(request_classes(), load,
                                   seed=seed).generate(HORIZON)
        dispatcher = Dispatcher(GPU, admission=admission,
                                max_concurrent=max_concurrent)
        return dispatcher.serve(requests, HORIZON)

    def test_fifo_ordering_single_slot(self):
        """With one concurrency slot and flat priorities, requests start
        (and finish) in arrival order."""
        result = self._serve(max_concurrent=1)
        started = [r for r in result.records if r.start_cycle is not None]
        assert len(started) >= 3
        for earlier, later in zip(started, started[1:]):
            assert earlier.arrival_cycle <= later.arrival_cycle
            assert earlier.start_cycle <= later.start_cycle
        finished = [r.finish_cycle for r in result.records
                    if r.finish_cycle is not None]
        assert finished == sorted(finished)

    def test_queue_cap_rejections_are_accounted(self):
        capped = self._serve(admission=QueueCap(1), load=600.0, seed=1)
        assert capped.rejected > 0
        rejected = [r for r in capped.records if not r.admitted]
        assert len(rejected) == capped.rejected
        for record in rejected:
            assert record.reject_reason == "queue-cap"
            assert record.start_cycle is None
            assert record.finish_cycle is None
            assert not record.slo_met
        assert capped.generated == capped.admitted + capped.rejected
        assert capped.admitted == capped.completed + capped.unfinished

    def test_counters_match_records(self):
        result = self._serve(max_concurrent=2)
        assert result.generated == len(result.records)
        assert result.admitted == sum(1 for r in result.records if r.admitted)
        assert result.completed == sum(1 for r in result.records
                                       if r.completed)
        assert result.completed >= 1

    def test_latency_decomposition(self):
        """queue wait + service = end-to-end latency for every completed
        request, and slo_met is exactly the latency-vs-SLO comparison."""
        result = self._serve(max_concurrent=2)
        for record in result.records:
            if record.completed:
                assert (record.queue_wait_cycles + record.service_cycles
                        == record.latency_cycles)
                assert record.slo_met == (record.latency_cycles
                                          <= record.slo_cycles)

    def test_class_priority_preempts_fifo(self):
        """A strictly prioritised class is always drawn from the queues
        first, even when the other class arrived earlier."""
        classes = request_classes()
        requests = PeriodicArrivals(classes, 1000,
                                    phase_cycles=(0, 0)).generate(4000)
        dispatcher = Dispatcher(GPU, max_concurrent=1,
                                class_priority={"bg": 0, "rt": 1})
        result = dispatcher.serve(requests, 12000)
        starts = {r.request_class: r.start_cycle for r in result.records
                  if r.arrival_cycle == 0 and r.start_cycle is not None}
        assert set(starts) == {"rt", "bg"}
        assert starts["bg"] < starts["rt"]


# ------------------------------------------------------------------- metrics


class TestRequestSchema:
    def _valid(self):
        result = Dispatcher(GPU, max_concurrent=1).serve(
            PoissonArrivals(request_classes(), 2000.0,
                            seed=7).generate(6000), 6000)
        return [request_record_to_dict(r) for r in result.records]

    def test_round_trip(self):
        result = Dispatcher(GPU, max_concurrent=1).serve(
            PoissonArrivals(request_classes(), 2000.0,
                            seed=7).generate(6000), 6000)
        stream = io.StringIO()
        count = write_request_trace(stream, result.records,
                                    meta={"case": "unit"})
        assert count == len(result.records) > 0
        stream.seek(0)
        meta, records = read_request_trace(stream)
        assert meta["case"] == "unit"
        assert tuple(records) == result.records

    def test_missing_and_extra_fields_rejected(self):
        payload = self._valid()[0]
        missing = dict(payload)
        del missing["slo_met"]
        with pytest.raises(ValueError, match="missing=\\['slo_met'\\]"):
            validate_request_dict(missing)
        extra = dict(payload)
        extra["surprise"] = 1
        with pytest.raises(ValueError, match="extra=\\['surprise'\\]"):
            validate_request_dict(extra)

    def test_type_errors_rejected(self):
        payload = self._valid()[0]
        for field, bad in (("request_id", "zero"), ("request_id", True),
                           ("kernel", 3), ("admitted", 1),
                           ("latency_cycles", 1.5), ("reject_reason", 2)):
            broken = dict(payload)
            broken[field] = bad
            with pytest.raises(ValueError, match=field):
                validate_request_dict(broken)

    def test_reader_rejects_bad_traces(self):
        with pytest.raises(ValueError, match="empty"):
            read_request_trace(io.StringIO(""))
        with pytest.raises(ValueError, match="meta header"):
            read_request_trace(io.StringIO('{"kind": "request"}\n'))
        with pytest.raises(ValueError, match="schema version"):
            read_request_trace(io.StringIO(
                '{"kind": "meta", "request_schema_version": 99}\n'))
        with pytest.raises(ValueError, match="unknown kind"):
            read_request_trace(io.StringIO(
                '{"kind": "meta", "request_schema_version": 1}\n'
                '{"kind": "epoch"}\n'))


# ------------------------------------------------------------------- runner


class TestServeRunner:
    @pytest.fixture(scope="class")
    def clean_outcomes(self):
        return ServeRunner(GPU, workers=1).sweep(SPECS)

    def test_spec_payload_round_trip(self):
        for spec in SPECS + [serve_spec(800, seed=3, admission="cap:2",
                                        max_concurrent=2, policy="rollover")]:
            clone = ServeSpec.from_payload(
                json.loads(json.dumps(spec.payload())))
            assert clone == spec

    def test_run_spec_is_memoised(self):
        runner = ServeRunner(GPU, workers=1)
        first = runner.run_spec(SPECS[0])
        assert runner.run_spec(SPECS[0]) is first
        assert runner.cached_cases == 1

    def test_persistent_cache_round_trip(self, tmp_path, monkeypatch,
                                         clean_outcomes):
        cache_dir = tmp_path / "cache"
        warm = ServeRunner(GPU, cache=CaseCache(cache_dir), workers=1)
        baseline = warm.sweep(SPECS)
        assert dump(baseline) == dump(clean_outcomes)

        class _Bomb:
            def __init__(self, *args, **kwargs):
                raise AssertionError("a cached serving case re-simulated")

        monkeypatch.setattr("repro.serve.runner.Dispatcher", _Bomb)
        cold = ServeRunner(GPU, cache=CaseCache(cache_dir), workers=1)
        assert dump(cold.sweep(SPECS)) == dump(baseline)

    def test_parallel_matches_serial(self, clean_outcomes):
        parallel = ServeRunner(GPU, workers=2).sweep(SPECS)
        assert dump(parallel) == dump(clean_outcomes)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path, workers,
                                                     clean_outcomes):
        db_path = tmp_path / "exp.sqlite"
        cache_dir = tmp_path / "cache"
        interrupted = ServeRunner(GPU, cache=CaseCache(cache_dir),
                                  expdb=ExperimentDB(db_path),
                                  workers=workers)
        interrupted.fault_after = 1
        with pytest.raises(SweepInterrupted):
            interrupted.sweep(SPECS)
        db = ExperimentDB(db_path)
        counts = db.case_counts(interrupted.experiment_log[0][0])
        assert counts.get("done", 0) < len(SPECS)  # genuinely mid-flight
        resumed = ServeRunner(GPU, cache=CaseCache(cache_dir), expdb=db,
                              workers=workers)
        outcomes = resumed.sweep(SPECS)
        assert db.experiment(resumed.experiment_log[0][0])["status"] == "done"
        assert dump(outcomes) == dump(clean_outcomes)

    def test_unknown_process_and_admission_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            ServeSpec(process="lognormal", params=(), classes=CLASSES,
                      seed=0, horizon_cycles=HORIZON)
        with pytest.raises(ValueError, match="unknown admission"):
            serve_spec(1000, admission="sometimes").build_admission()


# ----------------------------------------------------------- salt regression


class TestServeSalt:
    def test_serve_and_osched_are_salted(self):
        """SALT001 regression: serving results are cached (kind ``serve``),
        so the serving layer and the osched predictor it admits with must
        sit inside the code salt — editing either has to invalidate cached
        serving outcomes."""
        from repro.harness.cache import _SALTED, salted_paths

        assert "serve" in _SALTED
        assert "osched" in _SALTED
        paths = salted_paths()
        for module in ("serve/arrivals.py", "serve/dispatcher.py",
                       "serve/metrics.py", "serve/runner.py",
                       "osched/predictor.py"):
            assert module in paths

    def test_serve_runner_is_a_salt_closure_root(self):
        from repro.analysis.rules.saltcov import CLOSURE_ROOTS

        assert "repro.serve.runner" in CLOSURE_ROOTS

    def test_serve_key_tracks_spec_content(self):
        from repro.harness.cache import serve_key

        base = serve_key(GPU, SPECS[0].payload())
        assert serve_key(GPU, SPECS[0].payload()) == base
        assert serve_key(GPU, SPECS[1].payload()) != base
