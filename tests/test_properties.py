"""Property-based tests over whole-simulator invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel


def spec_strategy(name):
    return st.builds(
        lambda threads, regs, ldg, ilp, iterations: KernelSpec(
            name=name,
            threads_per_tb=threads,
            regs_per_thread=regs,
            mix=InstructionMix(alu=round(0.9 - ldg, 6), sfu=0.0,
                               ldg=ldg, stg=0.05, lds=0.05),
            memory=MemoryPattern(footprint_bytes=1 << 24),
            ilp=ilp, body_length=12, iterations_per_tb=iterations),
        threads=st.sampled_from([32, 64, 128]),
        regs=st.sampled_from([8, 16, 32, 64]),
        ldg=st.sampled_from([0.05, 0.2, 0.4]),
        ilp=st.sampled_from([0.2, 0.5, 0.9]),
        iterations=st.integers(1, 3),
    )


GPU = GPUConfig(num_sms=2, num_mcs=1, epoch_length=400,
                idle_warp_samples=8, sm=SMConfig(warp_schedulers=2))


class TestSimulatorInvariants:
    @given(spec=spec_strategy("prop-a"), cycles=st.integers(500, 2500))
    @settings(max_examples=15, deadline=None)
    def test_resources_never_oversubscribed(self, spec, cycles):
        sim = GPUSimulator(GPU, [LaunchedKernel(spec)])
        sim.run(cycles)
        for sm in sim.sms:
            resources = sm.resources
            config = GPU.sm
            assert 0 <= resources.threads <= config.max_threads
            assert 0 <= resources.registers_bytes <= config.registers_bytes
            assert 0 <= resources.tbs <= config.max_tbs

    @given(spec_a=spec_strategy("prop-a"), spec_b=spec_strategy("prop-b"))
    @settings(max_examples=10, deadline=None)
    def test_corun_determinism(self, spec_a, spec_b):
        outcomes = []
        for _ in range(2):
            sim = GPUSimulator(GPU, [
                LaunchedKernel(spec_a, is_qos=True, ipc_goal=10.0),
                LaunchedKernel(spec_b),
            ], QoSPolicy("rollover"))
            sim.run(1500)
            result = sim.result()
            outcomes.append(tuple(k.retired_thread_insts
                                  for k in result.kernels))
        assert outcomes[0] == outcomes[1]

    @given(spec_a=spec_strategy("prop-a"), spec_b=spec_strategy("prop-b"),
           goal=st.sampled_from([5.0, 20.0, 60.0]))
    @settings(max_examples=10, deadline=None)
    def test_retired_instructions_conserved(self, spec_a, spec_b, goal):
        """Sum of per-kernel retirements equals the SM-side ledger, and all
        memory requests are attributed to some kernel."""
        sim = GPUSimulator(GPU, [
            LaunchedKernel(spec_a, is_qos=True, ipc_goal=goal),
            LaunchedKernel(spec_b),
        ], QoSPolicy("rollover"))
        sim.run(1600)
        result = sim.result()
        # Reads travel through L1; stores bypass it (write-through
        # no-allocate), so reads = L1 accesses and the remainder must be
        # exactly the write requests.
        per_kernel_requests = sum(k.memory["requests"] for k in result.kernels)
        writes = sum(k.memory["write_requests"] for k in result.kernels)
        l1_accesses = (result.memory_aggregate["l1_hits"]
                       + result.memory_aggregate["l1_misses"])
        assert per_kernel_requests == l1_accesses + writes
        assert all(k.retired_thread_insts >= 0 for k in result.kernels)

    @given(goal_fraction=st.sampled_from([0.3, 0.6, 0.9]))
    @settings(max_examples=6, deadline=None)
    def test_quota_bounds_overshoot_per_epoch(self, goal_fraction):
        """With static adjustment off and a reachable goal, the EWS cap
        keeps the QoS kernel within the alpha-scaled quota envelope."""
        spec = KernelSpec(
            name="cap-test", threads_per_tb=64, regs_per_thread=16,
            mix=InstructionMix(alu=0.95, sfu=0.0, ldg=0.03, stg=0.02,
                               lds=0.0),
            memory=MemoryPattern(footprint_bytes=1 << 20),
            ilp=0.9, body_length=12, iterations_per_tb=2)
        iso = GPUSimulator(GPU, [LaunchedKernel(spec)])
        iso.run(2000)
        isolated = iso.result().kernels[0].ipc
        goal = goal_fraction * isolated
        policy = QoSPolicy("rollover", static_adjustment=False)
        nonqos = KernelSpec(
            name="filler", threads_per_tb=64, regs_per_thread=16,
            memory=MemoryPattern(footprint_bytes=1 << 22),
            body_length=12, iterations_per_tb=2)
        sim = GPUSimulator(GPU, [
            LaunchedKernel(spec, is_qos=True, ipc_goal=goal),
            LaunchedKernel(nonqos),
        ], policy)
        sim.run(4000)
        ipc = sim.result().kernels[0].ipc
        # Never more than the alpha cap envelope (plus warp granularity).
        assert ipc <= goal * policy.alpha_cap + 32


class TestSchedulerInvariant:
    @given(spec=spec_strategy("prop-a"))
    @settings(max_examples=10, deadline=None)
    def test_warps_unique_across_schedulers(self, spec):
        sim = GPUSimulator(GPU, [LaunchedKernel(spec)])
        sim.run(800)
        for sm in sim.sms:
            seen = set()
            for scheduler in sm.schedulers:
                for warp in scheduler.warps:
                    assert id(warp) not in seen
                    seen.add(id(warp))
