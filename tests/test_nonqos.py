"""Tests for the non-QoS artificial IPC-goal search (Section 3.5)."""

import pytest
from hypothesis import given, strategies as st

from repro.qos.nonqos import (
    INITIAL_NONQOS_IPC,
    MIN_NONQOS_IPC,
    nonqos_ipc_goal,
)


class TestFormula:
    def test_paper_initial_value(self):
        assert INITIAL_NONQOS_IPC == 1.0

    def test_goal_scales_by_qos_headroom(self):
        """QoS kernel at 2x its adjusted goal -> non-QoS goal doubles."""
        goal = nonqos_ipc_goal(own_epoch_ipc=10.0,
                               qos_epoch_ipc={0: 200.0},
                               qos_goals={0: 100.0},
                               alphas={0: 1.0})
        assert goal == pytest.approx(20.0)

    def test_goal_shrinks_when_qos_lags(self):
        goal = nonqos_ipc_goal(own_epoch_ipc=10.0,
                               qos_epoch_ipc={0: 50.0},
                               qos_goals={0: 100.0},
                               alphas={0: 1.0})
        assert goal == pytest.approx(5.0)

    def test_alpha_tightens_the_bar(self):
        relaxed = nonqos_ipc_goal(10.0, {0: 100.0}, {0: 100.0}, {0: 1.0})
        tightened = nonqos_ipc_goal(10.0, {0: 100.0}, {0: 100.0}, {0: 2.0})
        assert tightened < relaxed

    def test_multiple_qos_kernels_multiply(self):
        goal = nonqos_ipc_goal(10.0,
                               {0: 150.0, 1: 120.0},
                               {0: 100.0, 1: 100.0},
                               {0: 1.0, 1: 1.0})
        assert goal == pytest.approx(10.0 * 1.5 * 1.2)

    def test_floor_prevents_starvation_deadlock(self):
        """A fully starved QoS kernel zeroes the product; the floor keeps
        the non-QoS kernel marginally alive so measurement can recover."""
        goal = nonqos_ipc_goal(0.0, {0: 0.0}, {0: 100.0}, {0: 1.0})
        assert goal == MIN_NONQOS_IPC

    def test_rejects_negative_ipc(self):
        with pytest.raises(ValueError):
            nonqos_ipc_goal(-1.0, {}, {}, {})

    def test_rejects_nonpositive_goal(self):
        with pytest.raises(ValueError):
            nonqos_ipc_goal(1.0, {0: 10.0}, {0: 0.0}, {0: 1.0})

    def test_no_qos_kernels_returns_own_ipc(self):
        assert nonqos_ipc_goal(42.0, {}, {}, {}) == 42.0


class TestProperties:
    @given(own=st.floats(0.0, 1e4),
           epoch=st.floats(0.0, 1e4),
           goal=st.floats(0.1, 1e4),
           alpha=st.floats(1.0, 8.0))
    def test_never_below_floor(self, own, epoch, goal, alpha):
        value = nonqos_ipc_goal(own, {0: epoch}, {0: goal}, {0: alpha})
        assert value >= MIN_NONQOS_IPC

    @given(own=st.floats(1.0, 1e4), goal=st.floats(1.0, 1e4))
    def test_exactly_on_goal_is_neutral(self, own, goal):
        value = nonqos_ipc_goal(own, {0: goal}, {0: goal}, {0: 1.0})
        assert value == pytest.approx(max(own, MIN_NONQOS_IPC))
