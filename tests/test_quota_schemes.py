"""Tests for the quota schemes, anchored to the Figure 4 worked examples."""

import pytest
from hypothesis import given, strategies as st

from repro.qos.quota import (
    ElasticScheme,
    HistoryScheme,
    NaiveScheme,
    QuotaScheme,
    RolloverScheme,
    RolloverTimeScheme,
    SCHEME_NAMES,
    scheme_by_name,
)


class TestFactory:
    def test_names(self):
        assert set(SCHEME_NAMES) == {"naive", "history", "elastic",
                                     "rollover", "rollover-time"}

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_roundtrip(self, name):
        assert scheme_by_name(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            scheme_by_name("greedy")

    def test_base_refresh_abstract(self):
        with pytest.raises(NotImplementedError):
            QuotaScheme().refresh(0.0, 1.0, True)


class TestFlags:
    def test_naive_has_no_history(self):
        assert NaiveScheme().use_history is False
        assert HistoryScheme().use_history is True

    def test_elastic_flag(self):
        assert ElasticScheme().elastic is True
        assert RolloverScheme().elastic is False

    def test_rollover_time_blocks_nonqos(self):
        assert RolloverTimeScheme().initial_nonqos_blocked is True
        assert RolloverScheme().initial_nonqos_blocked is False


class TestNaiveFigure4a:
    """Figure 4a: quotas reset each epoch, residuals discarded."""

    def test_qos_residual_discarded(self):
        # End of epoch 1: C_K0 residual is irrelevant, reset to 100.
        assert NaiveScheme().refresh(37.0, 100.0, is_qos=True) == 100.0

    def test_nonqos_overrun_discarded_at_boundary(self):
        # C_K1 = -2 at epoch end -> reset to its fresh quota 50.
        assert NaiveScheme().refresh(-2.0, 50.0, is_qos=False) == 50.0


class TestElasticFigure4b:
    """Figure 4b: residuals are added to fresh quotas at elastic restarts."""

    def test_overrun_carries(self):
        # C_K0 = -3 when the elastic epoch restarts -> 100 + (-3) = 97.
        assert ElasticScheme().refresh(-3.0, 100.0, is_qos=True) == 97.0

    def test_nonqos_overrun_carries(self):
        # C_K1 = -2 -> 50 + (-2) = 48.
        assert ElasticScheme().refresh(-2.0, 50.0, is_qos=False) == 48.0


class TestRolloverFigure4c:
    """Figure 4c: unused QoS quota rolls over; non-QoS surplus is discarded."""

    def test_qos_surplus_rolls_over(self):
        # Status C_K0 = 5 at the boundary -> 100 + 5 = 105.
        assert RolloverScheme().refresh(5.0, 100.0, is_qos=True) == 105.0

    def test_nonqos_surplus_discarded(self):
        # Status C_K1 = 20 -> reset to 50 (not 70).
        assert RolloverScheme().refresh(20.0, 50.0, is_qos=False) == 50.0

    def test_nonqos_debt_carries(self):
        # Status C_K1 = -3 -> 50 - 3 = 47.
        assert RolloverScheme().refresh(-3.0, 50.0, is_qos=False) == 47.0

    def test_qos_debt_carries(self):
        assert RolloverScheme().refresh(-1.0, 100.0, is_qos=True) == 99.0


class TestRolloverTime:
    def test_qos_accounting_same_as_rollover(self):
        rollover, timed = RolloverScheme(), RolloverTimeScheme()
        for residual in (-4.0, 0.0, 12.0):
            assert (timed.refresh(residual, 80.0, True)
                    == rollover.refresh(residual, 80.0, True))

    def test_nonqos_always_starts_blocked(self):
        timed = RolloverTimeScheme()
        assert timed.refresh(25.0, 50.0, is_qos=False) == 0.0
        assert timed.refresh(-25.0, 50.0, is_qos=False) == 0.0


class TestSchemeProperties:
    @given(residual=st.floats(-1000, 1000), share=st.floats(0, 1000))
    def test_rollover_qos_never_below_elastic(self, residual, share):
        """Rollover and Elastic agree on QoS counters (both carry)."""
        assert (RolloverScheme().refresh(residual, share, True)
                == ElasticScheme().refresh(residual, share, True))

    @given(residual=st.floats(-1000, 1000), share=st.floats(0, 1000))
    def test_rollover_nonqos_never_banks_surplus(self, residual, share):
        value = RolloverScheme().refresh(residual, share, False)
        assert value <= share

    @given(residual=st.floats(-1000, 1000), share=st.floats(0, 1000),
           is_qos=st.booleans())
    def test_naive_ignores_residual(self, residual, share, is_qos):
        assert NaiveScheme().refresh(residual, share, is_qos) == share
