"""Tests for the memory subsystem: L1 path, MC bandwidth queueing, stats."""

import pytest

from repro.config import GPUConfig, MemoryConfig
from repro.sim.memory import MemoryController, MemorySubsystem
from repro.sim.cache import Cache


def make_subsystem(num_sms=2, num_mcs=2, num_kernels=2, service_interval=4,
                   dram_banks=0):
    # Bank modelling is off by default here so latency arithmetic in the
    # queueing tests stays exact; TestDRAMBanks covers the bank model.
    config = GPUConfig(
        num_sms=num_sms, num_mcs=num_mcs,
        memory=MemoryConfig(mc_service_interval=service_interval,
                            dram_banks=dram_banks))
    return MemorySubsystem(config, num_kernels), config


class TestL1Path:
    def test_l1_hit_latency(self):
        mem, config = make_subsystem()
        lat = config.memory.latency
        mem.warp_access(0, 0, (7,), False, now=100)        # fill
        done = mem.warp_access(0, 0, (7,), False, now=1000)
        assert done == 1000 + lat.l1_hit

    def test_l1s_are_private_per_sm(self):
        mem, config = make_subsystem()
        lat = config.memory.latency
        mem.warp_access(0, 0, (7,), False, now=0)
        done = mem.warp_access(1, 0, (7,), False, now=1000)
        # SM1 misses its own L1 even though SM0 has the line (hits in L2).
        assert done > 1000 + lat.l1_hit

    def test_flush_l1(self):
        mem, config = make_subsystem()
        mem.warp_access(0, 0, (7,), False, now=0)
        mem.flush_l1(0)
        assert mem.l1s[0].probe(7) is False


class TestMissPath:
    def test_miss_goes_through_interconnect_and_dram(self):
        mem, config = make_subsystem()
        lat = config.memory.latency
        done = mem.warp_access(0, 0, (9,), False, now=0)
        expected = lat.interconnect + lat.dram + lat.interconnect
        assert done == expected

    def test_l2_hit_faster_than_dram(self):
        mem, config = make_subsystem()
        lat = config.memory.latency
        mem.warp_access(0, 0, (9,), False, now=0)
        # Second SM misses L1 but hits the now-filled L2 slice.
        done = mem.warp_access(1, 0, (9,), False, now=10_000)
        service = 10_000 + lat.interconnect + lat.l2_hit + lat.interconnect
        assert done == service

    def test_lines_interleave_across_mcs(self):
        mem, _config = make_subsystem(num_mcs=2)
        mem.warp_access(0, 0, (0, 1, 2, 3), False, now=0)
        assert mem.controllers[0].serviced == 2  # lines 0, 2
        assert mem.controllers[1].serviced == 2  # lines 1, 3


class TestBandwidthQueueing:
    def test_back_to_back_requests_serialise(self):
        mem, config = make_subsystem(num_mcs=1, service_interval=4)
        lat = config.memory.latency
        first = mem.warp_access(0, 0, (0,), False, now=0)
        second = mem.warp_access(0, 1, (1,), False, now=0)
        assert second == first + 4  # queued behind the first request

    def test_queue_drains_over_time(self):
        mem, _config = make_subsystem(num_mcs=1, service_interval=4)
        mem.warp_access(0, 0, (0,), False, now=0)
        mc = mem.controllers[0]
        assert mc.queue_delay(0) > 0
        assert mc.queue_delay(10_000) == 0

    def test_fanout_completion_is_slowest_line(self):
        mem, _config = make_subsystem(num_mcs=1, service_interval=10)
        lines = tuple(range(8))
        done = mem.warp_access(0, 0, lines, False, now=0)
        single = MemorySubsystem(
            GPUConfig(num_mcs=1,
                      memory=MemoryConfig(mc_service_interval=10,
                                          dram_banks=0)), 1
        ).warp_access(0, 0, (0,), False, now=0)
        assert done >= single + 7 * 10


class TestKernelStats:
    def test_requests_attributed_per_kernel(self):
        mem, _config = make_subsystem(num_kernels=2)
        mem.warp_access(0, 0, (1, 2), False, now=0)
        mem.warp_access(0, 1, (3,), True, now=0)
        assert mem.kernel_stats[0].requests == 2
        assert mem.kernel_stats[1].requests == 1
        assert mem.kernel_stats[1].write_requests == 1
        assert mem.kernel_stats[0].write_requests == 0

    def test_hit_counters(self):
        mem, _config = make_subsystem()
        mem.warp_access(0, 0, (5,), False, now=0)
        mem.warp_access(0, 0, (5,), False, now=0)
        stats = mem.kernel_stats[0]
        assert stats.l1_hits == 1
        assert stats.dram_accesses == 1
        assert stats.l2_hits == 0

    def test_aggregate_keys(self):
        mem, _config = make_subsystem()
        mem.warp_access(0, 0, (5,), False, now=0)
        aggregate = mem.aggregate()
        assert aggregate["l1_misses"] == 1
        assert aggregate["mc_serviced"] == 1
        assert mem.total_dram_accesses() == 1

    def test_as_dict(self):
        mem, _config = make_subsystem()
        mem.warp_access(0, 0, (5,), False, now=0)
        stats = mem.kernel_stats[0].as_dict()
        assert stats["requests"] == 1
        assert set(stats) == {"requests", "l1_hits", "l2_hits",
                              "dram_accesses", "write_requests",
                              "mshr_stalls"}


class TestMemoryController:
    def test_service_returns_hit_flag(self):
        mc = MemoryController(Cache(4 * 1024, 4, 128), service_interval=2)
        _done, hit = mc.service(3, False, now=0, l2_hit_latency=50,
                                dram_latency=300)
        assert hit is False
        _done, hit = mc.service(3, False, now=100, l2_hit_latency=50,
                                dram_latency=300)
        assert hit is True

    def test_service_respects_interval(self):
        mc = MemoryController(Cache(4 * 1024, 4, 128), service_interval=5)
        first, _hit = mc.service(0, False, 0, 50, 300)
        second, _hit = mc.service(1, False, 0, 50, 300)
        assert second - first == 5

    def test_dirty_eviction_charges_writeback_slot(self):
        mc = MemoryController(Cache(2 * 128, 1, 128), service_interval=5)
        mc.service(0, True, 0, 50, 300)     # line 0 dirty in set 0
        mc.service(2, False, 0, 50, 300)    # evicts dirty line 0
        assert mc.writebacks == 1
        # Two services + one write-back = three slots consumed.
        assert mc.next_free == 15

    def test_clean_eviction_is_free(self):
        mc = MemoryController(Cache(2 * 128, 1, 128), service_interval=5)
        mc.service(0, False, 0, 50, 300)
        mc.service(2, False, 0, 50, 300)
        assert mc.writebacks == 0
        assert mc.next_free == 10


class TestDRAMBanks:
    def _mc(self, banks=2, row_lines=4, interval=2):
        from repro.sim.memory import DRAMBanks, MemoryController
        return MemoryController(Cache(64 * 1024, 4, 128), interval,
                                DRAMBanks(banks, row_lines))

    def test_row_hit_cheaper_than_row_miss(self):
        mc = self._mc()
        first, _ = mc.service(0, False, 0, 50, 340, 160)   # opens row 0
        second, _ = mc.service(1, False, 1000, 50, 340, 160)  # same row
        assert first == 340
        assert second == 1000 + 160
        assert mc.dram.row_hits == 1
        assert mc.dram.row_misses == 1

    def test_row_conflict_reopens(self):
        mc = self._mc(banks=1, row_lines=4)
        mc.service(0, False, 0, 50, 340, 160)      # row 0 opened
        mc.service(4, False, 1000, 50, 340, 160)   # row 1 evicts row 0
        # Line 1 is row 0 again (and not L2-cached): full reopen cost.
        done, _ = mc.service(1, False, 2000, 50, 340, 160)
        assert done == 2000 + 340
        assert mc.dram.row_misses == 3
        # Row 0 is now open: its next uncached line is a row hit.
        done, _ = mc.service(2, False, 3000, 50, 340, 160)
        assert done == 3000 + 160

    def test_rows_interleave_across_banks(self):
        from repro.sim.memory import DRAMBanks
        dram = DRAMBanks(2, 4)
        dram.access_latency(0, 10, 100)   # row 0 -> bank 0
        dram.access_latency(4, 10, 100)   # row 1 -> bank 1
        # Both rows stay open: re-touching either is a hit.
        assert dram.access_latency(1, 10, 100) == 10
        assert dram.access_latency(5, 10, 100) == 10

    def test_disabled_banks_always_miss_latency(self):
        from repro.sim.memory import DRAMBanks
        dram = DRAMBanks(0, 4)
        assert dram.access_latency(0, 10, 100) == 100
        assert dram.access_latency(0, 10, 100) == 100

    def test_geometry_validation(self):
        from repro.sim.memory import DRAMBanks
        import pytest as _pytest
        with _pytest.raises(ValueError):
            DRAMBanks(-1, 4)
        with _pytest.raises(ValueError):
            DRAMBanks(4, 0)

    def test_streaming_sees_more_row_hits_than_random(self):
        import random
        streaming = self._mc(banks=8, row_lines=16)
        scattered = self._mc(banks=8, row_lines=16)
        for line in range(200):
            streaming.service(line, False, line * 10, 50, 340, 160)
        rng = random.Random(7)
        for _ in range(200):
            scattered.service(rng.randrange(1 << 20), False, 0, 50, 340, 160)
        stream_rate = streaming.dram.row_hits / 200
        scatter_rate = scattered.dram.row_hits / 200
        assert stream_rate > 0.8
        assert scatter_rate < 0.2
