"""Determinism and equivalence tests for the parallel sweep executor."""

import pytest

from repro.config import FAST_GPU
from repro.harness.cache import CaseCache
from repro.harness.parallel import ParallelCaseRunner, resolve_workers
from repro.harness.runner import CaseRunner, CaseSpec
from repro.kernels import get_kernel
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel

CYCLES = 4000

SPECS = [
    CaseSpec.pair("sgemm", "lbm", 0.5, "rollover"),
    CaseSpec.pair("mri-q", "spmv", 0.65, "spart"),
    CaseSpec.trio(("sgemm", "lbm", "mri-q"), 1, 0.5, "rollover"),
]


class TestSimulatorDeterminism:
    def test_identical_results_across_runs(self):
        results = []
        for _ in range(2):
            kernels = [
                LaunchedKernel(get_kernel("sgemm"), is_qos=True,
                               ipc_goal=100.0),
                LaunchedKernel(get_kernel("lbm")),
            ]
            sim = GPUSimulator(FAST_GPU, kernels, QoSPolicy("rollover"))
            sim.run(6000)
            results.append(sim.result())
        assert results[0] == results[1]


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestSweepEquivalence:
    @pytest.fixture(scope="class")
    def serial_records(self):
        return CaseRunner(FAST_GPU, CYCLES).sweep(SPECS)

    def test_parallel_equals_serial_record_for_record(self, serial_records):
        parallel = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2)
        assert parallel.sweep(SPECS) == serial_records

    def test_single_worker_equals_serial(self, serial_records):
        parallel = ParallelCaseRunner(FAST_GPU, CYCLES, workers=1)
        assert parallel.sweep(SPECS) == serial_records

    def test_order_follows_input_not_completion(self, serial_records):
        parallel = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2)
        reversed_records = parallel.sweep(list(reversed(SPECS)))
        assert reversed_records == list(reversed(serial_records))

    def test_duplicate_specs_simulate_once(self):
        parallel = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2)
        records = parallel.sweep([SPECS[0], SPECS[0]])
        assert records[0] is records[1]
        assert parallel.cached_cases == 1

    def test_sweep_seeds_isolated_memo(self):
        parallel = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2)
        parallel.sweep(SPECS[:1])
        assert set(parallel._isolated) >= {"sgemm", "lbm"}

    def test_sweep_through_cache_round_trip(self, tmp_path, serial_records):
        cold = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2,
                                  cache=CaseCache(tmp_path))
        assert cold.sweep(SPECS) == serial_records
        warm_cache = CaseCache(tmp_path)
        warm = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2,
                                  cache=warm_cache)
        assert warm.sweep(SPECS) == serial_records
        assert warm_cache.hits >= len(SPECS)


class TestTelemetrySweepEquivalence:
    """Telemetry streams must be identical between the serial and parallel
    runners: workers are throwaway serial runners, so the only way this
    fails is nondeterminism in the simulator itself."""

    @pytest.fixture(scope="class")
    def serial_telemetry(self):
        runner = CaseRunner(FAST_GPU, CYCLES, telemetry=True)
        return runner.sweep(SPECS)

    def test_parallel_telemetry_matches_serial(self, serial_telemetry):
        parallel = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2,
                                      telemetry=True)
        records = parallel.sweep(SPECS)
        assert records == serial_telemetry
        for record in records:
            assert record.telemetry  # streams actually attached

    def test_telemetry_off_records_carry_no_stream(self, serial_telemetry):
        plain = CaseRunner(FAST_GPU, CYCLES).sweep(SPECS)
        for lean, full in zip(plain, serial_telemetry):
            assert lean.telemetry == ()
            assert full.telemetry != ()
            # Outcomes are unaffected by recording.
            assert lean.kernels == full.kernels
            assert lean.cycles == full.cycles

    def test_telemetry_survives_cache_round_trip(self, tmp_path,
                                                 serial_telemetry):
        cold = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2,
                                  telemetry=True, cache=CaseCache(tmp_path))
        assert cold.sweep(SPECS) == serial_telemetry
        warm_cache = CaseCache(tmp_path)
        warm = ParallelCaseRunner(FAST_GPU, CYCLES, workers=2,
                                  telemetry=True, cache=warm_cache)
        assert warm.sweep(SPECS) == serial_telemetry
        assert warm_cache.hits >= len(SPECS)
