"""Tests for the partial-context-switch preemption engine."""

from repro.config import PreemptionConfig
from repro.kernels.spec import KernelSpec
from repro.sim.preemption import PreemptionEngine
from repro.sim.tb import ThreadBlock
from repro.sim.warp import Warp, WarpState


def make_tb(smem=0, regs=16):
    spec = KernelSpec(name="preempt-test", threads_per_tb=64,
                      regs_per_thread=regs, smem_per_tb_bytes=smem)
    tb = ThreadBlock(0, 0, spec, 0)
    tb.warps.append(Warp(0, tb, 0, seed=1, start_cursor=0))
    return tb


class TestEvictionCost:
    def test_cost_includes_drain_and_store(self):
        config = PreemptionConfig(drain_cycles=100, bytes_per_cycle=256)
        engine = PreemptionEngine(config)
        tb = make_tb(smem=4096, regs=16)
        done = engine.begin_eviction(None, tb, cycle=1000)
        expected = 1000 + 100 + tb.spec.context_bytes // 256
        assert done == expected

    def test_disabled_preemption_completes_immediately(self):
        engine = PreemptionEngine(PreemptionConfig(enabled=False))
        tb = make_tb(smem=1 << 16)
        assert engine.begin_eviction(None, tb, cycle=42) == 42
        assert engine.stall_cycles == 0

    def test_freezes_tb(self):
        engine = PreemptionEngine(PreemptionConfig())
        tb = make_tb()
        engine.begin_eviction(None, tb, cycle=0)
        assert tb.evicting is True
        assert tb.warps[0].state == WarpState.FROZEN


class TestEventOrdering:
    def test_pop_completed_in_time_order(self):
        engine = PreemptionEngine(PreemptionConfig(drain_cycles=0,
                                                   bytes_per_cycle=64))
        small = make_tb(smem=0, regs=1)
        large = make_tb(smem=32 * 1024)
        engine.begin_eviction("sm-large", large, cycle=0)
        engine.begin_eviction("sm-small", small, cycle=0)
        done = list(engine.pop_completed(1 << 30))
        assert [sm for sm, _tb in done] == ["sm-small", "sm-large"]

    def test_pop_respects_cycle(self):
        engine = PreemptionEngine(PreemptionConfig(drain_cycles=100,
                                                   bytes_per_cycle=256))
        tb = make_tb()
        done_at = engine.begin_eviction("sm", tb, cycle=0)
        assert list(engine.pop_completed(done_at - 1)) == []
        assert engine.has_pending
        assert engine.next_completion == done_at
        assert list(engine.pop_completed(done_at)) == [("sm", tb)]
        assert not engine.has_pending
        assert engine.next_completion is None

    def test_counters(self):
        engine = PreemptionEngine(PreemptionConfig(drain_cycles=10,
                                                   bytes_per_cycle=1024))
        engine.begin_eviction("sm", make_tb(), cycle=0)
        engine.begin_eviction("sm", make_tb(), cycle=5)
        assert engine.evictions == 2
        assert engine.stall_cycles > 0
