"""Differential tests: the performance cores vs the reference scan core.

Both performance reworks must produce record-for-record identical
:class:`SimulationResult`s — and identical idle-warp sampling state — to
the reference per-cycle-scan core, for every sharing scheme (plus the
pid/mpc controllers) and both scheduler policies:

* the **event** core (per-SM sleep skipping in the engine plus two-tier
  warp wake queues in the schedulers), and
* the **batch** core (windowed struct-of-arrays advancement in
  :mod:`repro.sim.batch`, dropping to the event core's scalar path on
  control-flow edges).

The batch-specific classes at the bottom force the scalar fallback *mid
run* — preemption-driven TB moves and quota exhaustion between vectorised
windows — and check the windows actually opened, so the identity is not
vacuous.
"""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.harness.runner import make_policy
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy

SCHEMES = ["smk", "naive", "history", "elastic", "rollover",
           "rollover-time", "rollover-nostatic", "spart"]

#: The scheme set the batch differential runs: all 8 sharing schemes plus
#: the controller-backed quota policies.
SCHEMES_PLUS_CONTROLLERS = SCHEMES + ["pid", "mpc"]


def spec(name, **kwargs):
    defaults = dict(threads_per_tb=64, regs_per_thread=16,
                    body_length=16, iterations_per_tb=4,
                    memory=MemoryPattern(footprint_bytes=1 << 22))
    defaults.update(kwargs)
    return KernelSpec(name=name, **defaults)


def gpu_config(core, scheduler_policy):
    return GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                     idle_warp_samples=10,
                     sm=SMConfig(warp_schedulers=2),
                     engine_core=core,
                     scheduler_policy=scheduler_policy)


def run_sim(core, scheme, scheduler_policy, cycles=2500):
    launches = [
        LaunchedKernel(spec("qos-k", mix=InstructionMix(
            alu=0.7, sfu=0.05, ldg=0.15, stg=0.05, lds=0.05)),
            is_qos=True, ipc_goal=40.0),
        LaunchedKernel(spec("bg-k", mix=InstructionMix(
            alu=0.3, sfu=0.0, ldg=0.55, stg=0.1, lds=0.05), ilp=0.2)),
    ]
    sim = GPUSimulator(gpu_config(core, scheduler_policy), launches,
                       make_policy(scheme))
    sim.run(cycles)
    sampling = [(sm.idle_samples, tuple(sm.idle_sum)) for sm in sim.sms]
    return sim.result(), sampling


class TestRecordIdentical:
    """Three-way differential: scan, event and batch must agree exactly."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_gto(self, scheme):
        event = run_sim("event", scheme, "gto")
        scan = run_sim("scan", scheme, "gto")
        batch = run_sim("batch", scheme, "gto")
        assert event == scan
        assert batch == scan

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_lrr(self, scheme):
        event = run_sim("event", scheme, "lrr")
        scan = run_sim("scan", scheme, "lrr")
        batch = run_sim("batch", scheme, "lrr")
        assert event == scan
        assert batch == scan

    @pytest.mark.parametrize("scheme", ["pid", "mpc"])
    @pytest.mark.parametrize("policy", ["gto", "lrr"])
    def test_controller_schemes(self, scheme, policy):
        event = run_sim("event", scheme, policy)
        batch = run_sim("batch", scheme, policy)
        assert batch == event


class TestSleepSkipSampling:
    """Per-SM sleep skipping must not eat idle-warp samples: an SM the
    engine never steps still observes every epoch-anchored grid point."""

    def _counts(self, core):
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        idle_warp_samples=10,
                        sm=SMConfig(warp_schedulers=1),
                        engine_core=core)
        # Dependent-load-heavy kernel: long stalls put SM 0 to sleep
        # between bursts, engaging both the per-SM skip and the
        # whole-GPU idle skip.
        mem_spec = spec("m", mix=InstructionMix(
            alu=0.1, sfu=0.0, ldg=0.9, stg=0.0, lds=0.0), ilp=0.0)
        counts = []

        class Recorder(SharingPolicy):
            def setup(self, ctx):
                # Confine the kernel to SM 0; SM 1 stays empty and its
                # scheduler sleeps forever — the engine never steps it.
                ctx.set_tb_target(0, 0, 1)
                ctx.set_tb_target(1, 0, 0)

            def on_epoch_start(self, ctx, cycle, epoch_index):
                if epoch_index > 0:
                    counts.append([ctx.idle_samples(sm_id)
                                   for sm_id in range(ctx.num_sms)])

        sim = GPUSimulator(gpu, [LaunchedKernel(mem_spec)], Recorder())
        sim.run(5000)
        return counts

    def test_sleeping_sm_sees_every_sample(self):
        counts = self._counts("event")
        assert len(counts) >= 8
        # Epoch 0 misses the boundary sample (its grid starts one
        # interval into the run); every later epoch sees the full
        # idle_warp_samples on BOTH the busy and the never-stepped SM.
        assert counts[0] == [9, 9]
        for per_sm in counts[1:]:
            assert per_sm == [10, 10]

    @pytest.mark.parametrize("core", ["event", "batch"])
    def test_matches_scan_core(self, core):
        assert self._counts(core) == self._counts("scan")


class TestTelemetryRecordIdentical:
    """Telemetry streams must be byte-identical between cores: the sleep
    counters are defined from the issue trajectory, not from which cycles a
    particular core actually skipped."""

    def _records(self, core, scheme):
        from repro.sim import TelemetryRecorder
        launches = [
            LaunchedKernel(spec("qos-k", mix=InstructionMix(
                alu=0.7, sfu=0.05, ldg=0.15, stg=0.05, lds=0.05)),
                is_qos=True, ipc_goal=40.0),
            LaunchedKernel(spec("bg-k", mix=InstructionMix(
                alu=0.3, sfu=0.0, ldg=0.55, stg=0.1, lds=0.05), ilp=0.2)),
        ]
        sim = GPUSimulator(gpu_config(core, "gto"), launches,
                           make_policy(scheme), telemetry=TelemetryRecorder())
        sim.run(2500)
        return sim.finalize_telemetry()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_event_matches_scan(self, scheme):
        assert self._records("event", scheme) == self._records("scan", scheme)

    @pytest.mark.parametrize("scheme", SCHEMES_PLUS_CONTROLLERS)
    def test_batch_matches_scan(self, scheme):
        assert self._records("batch", scheme) == self._records("scan", scheme)

    def test_sleep_counters_nonzero_somewhere(self):
        # The identity above must not hold vacuously: this workload does
        # leave SMs idle, so the counters have something to agree on.
        records = self._records("event", "rollover")
        assert any(record.sleep_skipped_sm_cycles for record in records)


class TestBatchScalarFallback:
    """Edge cases that force the batch core off its vectorised path mid
    run: preemption-driven TB moves between windows, and quota exhaustion
    landing on the scalar path.  Each case asserts both identity with the
    event core AND that vectorised windows actually opened, so the
    differential exercises real window/fallback transitions rather than
    degenerating to the pure event loop."""

    @staticmethod
    def _compute_spec(name):
        # Memory-free and high-ILP: windows open wide whenever the policy
        # machinery leaves the SMs alone.
        return KernelSpec(name=name, threads_per_tb=64, regs_per_thread=16,
                          body_length=64, iterations_per_tb=32,
                          mix=InstructionMix(alu=0.9, sfu=0.0, ldg=0.0,
                                             stg=0.0, lds=0.1),
                          ilp=0.95,
                          memory=MemoryPattern(footprint_bytes=1 << 20))

    class _Shuffler(SharingPolicy):
        """Bounces a kernel's TBs between the two SMs every other epoch,
        driving evictions (partial context switch) and redispatches."""

        def setup(self, ctx):
            ctx.set_tb_target(0, 0, 2)
            ctx.set_tb_target(1, 0, 2)
            ctx.set_tb_target(0, 1, 1)
            ctx.set_tb_target(1, 1, 1)

        def on_epoch_start(self, ctx, cycle, epoch_index):
            lopsided = epoch_index % 2 == 1
            ctx.set_tb_target(0, 0, 4 if lopsided else 2)
            ctx.set_tb_target(1, 0, 0 if lopsided else 2)

    def _run(self, core, with_windows):
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=600,
                        idle_warp_samples=6,
                        sm=SMConfig(warp_schedulers=2),
                        engine_core=core)
        launches = [
            LaunchedKernel(self._compute_spec("qos-k"), is_qos=True,
                           ipc_goal=30.0),
            LaunchedKernel(self._compute_spec("bg-k")),
        ]
        sim = GPUSimulator(gpu, launches, self._Shuffler())
        sim.run(6000)
        if with_windows is not None:
            state = sim._batch_state
            assert state is not None
            with_windows(sim, state)
        return (sim.result(),
                [(sm.idle_samples, tuple(sm.idle_sum)) for sm in sim.sms])

    def test_tb_moves_force_scalar_fallback(self):
        evictions = []

        def check(sim, state):
            # The shuffling policy really did move TBs (preemption ran)...
            assert sim.preemption.evictions > 0
            evictions.append(sim.preemption.evictions)
            # ...and the probe/backoff machinery was exercised.
            assert state.backoff >= 1

        batch = self._run("batch", check)
        event = self._run("event", None)
        assert batch == event
        assert evictions and evictions[0] > 0

    def test_windows_actually_open(self, monkeypatch):
        from repro.sim.batch import BatchState

        windows = []
        original = BatchState.advance

        def counting_advance(self, cycle, horizon):
            windows.append(horizon - cycle)
            return original(self, cycle, horizon)

        monkeypatch.setattr(BatchState, "advance", counting_advance)
        batch = self._run("batch", None)
        event = self._run("event", None)
        assert batch == event
        # Vectorised windows opened and were wide enough to matter.
        assert windows and max(windows) >= 8

    def test_quota_exhaustion_stays_scalar(self):
        """A tight quota forces mid-epoch zero crossings; the probe's cap
        must keep every crossing (and its policy callback) off the
        vectorised path while staying record-identical."""
        results = {}
        for core in ("batch", "event"):
            gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=600,
                            idle_warp_samples=6,
                            sm=SMConfig(warp_schedulers=2),
                            engine_core=core)
            launches = [
                LaunchedKernel(self._compute_spec("qos-k"), is_qos=True,
                               ipc_goal=8.0),  # tiny goal => tiny quota
                LaunchedKernel(self._compute_spec("bg-k")),
            ]
            sim = GPUSimulator(gpu, launches, make_policy("rollover"))
            sim.run(6000)
            results[core] = (sim.result(), [(sm.idle_samples,
                                             tuple(sm.idle_sum))
                                            for sm in sim.sms])
        assert results["batch"] == results["event"]


class TestServedWorkloadDifferential:
    """A served workload — mid-simulation ``launch_at`` plus finite-grid
    retire driven by the dispatcher — must replay record- and telemetry-
    identical on all three cores.  Arrival cycles bound the event core's
    sleep skips and the batch core's probe horizon; these differentials
    keep those bounds honest."""

    HORIZON = 14000

    @classmethod
    def _serve(cls, core):
        from repro.serve import Dispatcher, PoissonArrivals, RequestClass

        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=600,
                        idle_warp_samples=6,
                        sm=SMConfig(warp_schedulers=2),
                        engine_core=core)
        classes = (RequestClass("rt", "mri-q", slo_cycles=8000, grid_tbs=1),
                   RequestClass("bg", "sad", slo_cycles=16000, grid_tbs=2))
        requests = PoissonArrivals(classes, 1500.0,
                                   seed=5).generate(cls.HORIZON)
        dispatcher = Dispatcher(gpu, max_concurrent=2, telemetry=True)
        return dispatcher.serve(requests, cls.HORIZON)

    def test_three_core_identity(self):
        results = {core: self._serve(core)
                   for core in ("scan", "event", "batch")}
        base = results["scan"]
        # Non-vacuous: requests really were launched mid-run and retired
        # (freeing slots the queues refilled), and the machine really
        # slept between arrivals.
        assert base.generated >= 6
        assert base.completed >= 3
        assert base.sim_result is not None
        assert any(record.sleep_skipped_sm_cycles
                   for record in base.telemetry)
        assert results["event"] == base
        assert results["batch"] == base

    def test_batch_windows_open(self, monkeypatch):
        """The identity above must not come from the batch core never
        vectorising: windows still open between arrival boundaries."""
        from repro.sim.batch import BatchState

        windows = []
        original = BatchState.advance

        def counting_advance(self, cycle, horizon):
            windows.append(horizon - cycle)
            return original(self, cycle, horizon)

        monkeypatch.setattr(BatchState, "advance", counting_advance)
        batch = self._serve("batch")
        event = self._serve("event")
        assert batch == event
        assert windows and max(windows) >= 8
