"""Differential tests: event-driven core vs the reference scan core.

The event core (per-SM sleep skipping in the engine plus two-tier warp
wake queues in the schedulers) is a pure performance rework: it must
produce record-for-record identical :class:`SimulationResult`s — and
identical idle-warp sampling state — to the reference per-cycle-scan
core, for every sharing scheme and both scheduler policies.
"""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.harness.runner import make_policy
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy

SCHEMES = ["smk", "naive", "history", "elastic", "rollover",
           "rollover-time", "rollover-nostatic", "spart"]


def spec(name, **kwargs):
    defaults = dict(threads_per_tb=64, regs_per_thread=16,
                    body_length=16, iterations_per_tb=4,
                    memory=MemoryPattern(footprint_bytes=1 << 22))
    defaults.update(kwargs)
    return KernelSpec(name=name, **defaults)


def gpu_config(core, scheduler_policy):
    return GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                     idle_warp_samples=10,
                     sm=SMConfig(warp_schedulers=2),
                     engine_core=core,
                     scheduler_policy=scheduler_policy)


def run_sim(core, scheme, scheduler_policy, cycles=2500):
    launches = [
        LaunchedKernel(spec("qos-k", mix=InstructionMix(
            alu=0.7, sfu=0.05, ldg=0.15, stg=0.05, lds=0.05)),
            is_qos=True, ipc_goal=40.0),
        LaunchedKernel(spec("bg-k", mix=InstructionMix(
            alu=0.3, sfu=0.0, ldg=0.55, stg=0.1, lds=0.05), ilp=0.2)),
    ]
    sim = GPUSimulator(gpu_config(core, scheduler_policy), launches,
                       make_policy(scheme))
    sim.run(cycles)
    sampling = [(sm.idle_samples, tuple(sm.idle_sum)) for sm in sim.sms]
    return sim.result(), sampling


class TestRecordIdentical:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_gto(self, scheme):
        event = run_sim("event", scheme, "gto")
        scan = run_sim("scan", scheme, "gto")
        assert event == scan

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_lrr(self, scheme):
        event = run_sim("event", scheme, "lrr")
        scan = run_sim("scan", scheme, "lrr")
        assert event == scan


class TestSleepSkipSampling:
    """Per-SM sleep skipping must not eat idle-warp samples: an SM the
    engine never steps still observes every epoch-anchored grid point."""

    def _counts(self, core):
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        idle_warp_samples=10,
                        sm=SMConfig(warp_schedulers=1),
                        engine_core=core)
        # Dependent-load-heavy kernel: long stalls put SM 0 to sleep
        # between bursts, engaging both the per-SM skip and the
        # whole-GPU idle skip.
        mem_spec = spec("m", mix=InstructionMix(
            alu=0.1, sfu=0.0, ldg=0.9, stg=0.0, lds=0.0), ilp=0.0)
        counts = []

        class Recorder(SharingPolicy):
            def setup(self, ctx):
                # Confine the kernel to SM 0; SM 1 stays empty and its
                # scheduler sleeps forever — the engine never steps it.
                ctx.set_tb_target(0, 0, 1)
                ctx.set_tb_target(1, 0, 0)

            def on_epoch_start(self, ctx, cycle, epoch_index):
                if epoch_index > 0:
                    counts.append([ctx.idle_samples(sm_id)
                                   for sm_id in range(ctx.num_sms)])

        sim = GPUSimulator(gpu, [LaunchedKernel(mem_spec)], Recorder())
        sim.run(5000)
        return counts

    def test_sleeping_sm_sees_every_sample(self):
        counts = self._counts("event")
        assert len(counts) >= 8
        # Epoch 0 misses the boundary sample (its grid starts one
        # interval into the run); every later epoch sees the full
        # idle_warp_samples on BOTH the busy and the never-stepped SM.
        assert counts[0] == [9, 9]
        for per_sm in counts[1:]:
            assert per_sm == [10, 10]

    def test_matches_scan_core(self):
        assert self._counts("event") == self._counts("scan")


class TestTelemetryRecordIdentical:
    """Telemetry streams must be byte-identical between cores: the sleep
    counters are defined from the issue trajectory, not from which cycles a
    particular core actually skipped."""

    def _records(self, core, scheme):
        from repro.sim import TelemetryRecorder
        launches = [
            LaunchedKernel(spec("qos-k", mix=InstructionMix(
                alu=0.7, sfu=0.05, ldg=0.15, stg=0.05, lds=0.05)),
                is_qos=True, ipc_goal=40.0),
            LaunchedKernel(spec("bg-k", mix=InstructionMix(
                alu=0.3, sfu=0.0, ldg=0.55, stg=0.1, lds=0.05), ilp=0.2)),
        ]
        sim = GPUSimulator(gpu_config(core, "gto"), launches,
                           make_policy(scheme), telemetry=TelemetryRecorder())
        sim.run(2500)
        return sim.finalize_telemetry()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_event_matches_scan(self, scheme):
        assert self._records("event", scheme) == self._records("scan", scheme)

    def test_sleep_counters_nonzero_somewhere(self):
        # The identity above must not hold vacuously: this workload does
        # leave SMs idle, so the counters have something to agree on.
        records = self._records("event", "rollover")
        assert any(record.sleep_skipped_sm_cycles for record in records)
