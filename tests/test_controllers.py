"""Tests for the pluggable SLO controller subsystem (repro.controllers).

Covers the QuotaController seam (golden differential: the four paper
schemes are bit-identical before/after the adaptation, on both engine
cores), the PID and MPC control laws, controller-state telemetry, cache
keying of gain presets, the scoring harness and the ``repro controllers``
CLI.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.config import FAST_GPU, ControllerConfig
from repro.controllers import CONTROLLER_NAMES, controller_by_name
from repro.controllers.base import (
    ALPHA_CAP,
    ControllerState,
    QuotaController,
    SchemeController,
    history_fallback_scale,
)
from repro.controllers.evaluate import (
    score_case,
    settling_epochs,
    format_comparison,
)
from repro.controllers.mpc import MPCQuotaController, fit_line
from repro.controllers.pid import PIDQuotaController
from repro.harness.runner import POLICY_NAMES, CaseRunner
from repro.qos import QoSPolicy
from repro.sim.policy import EpochView

GOLDEN_PATH = (pathlib.Path(__file__).parent / "data"
               / "golden_scheme_records.json")


class StubCtx:
    """The one PolicyContext attribute controllers read in unit tests."""

    def __init__(self, num_kernels=2):
        self.num_kernels = num_kernels


def make_view(epoch_ipc, cumulative_ipc=None, index=0):
    if cumulative_ipc is None:
        cumulative_ipc = epoch_ipc
    n = len(epoch_ipc)
    return EpochView(index=index, cycle=(index + 1) * 1000,
                     epoch_cycles=1000, retired=(0,) * n,
                     retired_delta=(0,) * n,
                     epoch_ipc=tuple(epoch_ipc),
                     cumulative_ipc=tuple(cumulative_ipc))


def started(controller, goals={0: 10.0}, config=FAST_GPU):
    controller.start(config, tuple(goals), goals)
    return controller


# ------------------------------------------------------------------ registry

class TestRegistry:
    def test_controller_names_are_policy_names(self):
        assert set(CONTROLLER_NAMES) <= set(POLICY_NAMES)

    def test_controller_by_name(self):
        assert isinstance(controller_by_name("pid"), PIDQuotaController)
        assert isinstance(controller_by_name("mpc"), MPCQuotaController)

    def test_unknown_controller_raises(self):
        with pytest.raises(ValueError, match="unknown controller"):
            controller_by_name("fuzzy")

    def test_qos_policy_names_its_controller(self):
        assert QoSPolicy("rollover").name == "qos-rollover"
        policy = QoSPolicy("rollover", controller=PIDQuotaController())
        assert policy.name == "qos-pid"


# ------------------------------------------------------------- base + scheme

class TestSchemeController:
    def test_matches_paper_alpha_law(self):
        ctrl = started(SchemeController(use_history=True))
        view = make_view([4.0], cumulative_ipc=[4.0])
        scales = ctrl.on_epoch(StubCtx(1), view)
        assert scales == {0: min(ALPHA_CAP, max(1.0, 10.0 / 4.0))}

    def test_zero_history_boosts_to_cap(self):
        ctrl = started(SchemeController(use_history=True))
        scales = ctrl.on_epoch(StubCtx(1), make_view([0.0]))
        assert scales == {0: ALPHA_CAP}

    def test_naive_family_is_constant_one(self):
        ctrl = started(SchemeController(use_history=False))
        scales = ctrl.on_epoch(StubCtx(1), make_view([0.1]))
        assert scales == {0: 1.0}

    def test_base_controller_state_is_empty(self):
        ctrl = started(QuotaController())
        assert ctrl.on_epoch(StubCtx(1), make_view([1.0])) == {0: 1.0}
        assert ctrl.state(0) == ControllerState()

    def test_history_fallback_free_function(self):
        assert history_fallback_scale(10.0, 0.0, 8.0) == 8.0
        assert history_fallback_scale(10.0, 4.0, 8.0) == 2.5
        assert history_fallback_scale(10.0, 40.0, 8.0) == 1.0


# ---------------------------------------------------------------------- PID

class TestPIDController:
    def test_under_goal_boosts_scale(self):
        ctrl = started(PIDQuotaController())
        scales = ctrl.on_epoch(StubCtx(1), make_view([5.0]))
        assert scales[0] > 1.0

    def test_overshoot_shrinks_below_one_but_not_below_floor(self):
        ctrl = started(PIDQuotaController())
        floor = FAST_GPU.controller.alpha_floor
        scale = None
        for _ in range(30):
            scale = ctrl.on_epoch(StubCtx(1), make_view([20.0]))[0]
        assert floor <= scale < 1.0

    def test_antiwindup_freezes_integral_at_the_rail(self):
        ctrl = started(PIDQuotaController())
        for _ in range(50):
            scales = ctrl.on_epoch(StubCtx(1), make_view([0.0]))
        assert scales[0] == FAST_GPU.controller.alpha_cap
        limit = FAST_GPU.controller.pid_integral_limit
        integral = ctrl.state(0).integral
        # Conditional integration: saturation stops accumulation well
        # before the hard clamp would.
        assert integral is not None and abs(integral) <= limit
        saturated = ctrl.on_epoch(StubCtx(1), make_view([0.0]))
        assert ctrl.state(0).integral == integral
        assert saturated[0] == FAST_GPU.controller.alpha_cap

    def test_recovers_after_windup(self):
        # After a starvation phase the controller must still respond to an
        # overshoot (the anti-windup property, end to end).
        ctrl = started(PIDQuotaController())
        for _ in range(20):
            ctrl.on_epoch(StubCtx(1), make_view([0.0]))
        for _ in range(30):
            scale = ctrl.on_epoch(StubCtx(1), make_view([20.0]))[0]
        assert scale < 1.0

    def test_state_carries_error_and_integral(self):
        ctrl = started(PIDQuotaController())
        ctrl.on_epoch(StubCtx(1), make_view([5.0]))
        state = ctrl.state(0)
        assert state.error == pytest.approx(0.5)
        assert state.integral is not None
        assert state.prediction is None

    def test_gains_change_the_output(self):
        hot = dataclasses.replace(FAST_GPU, controller=ControllerConfig(
            pid_kp=3.0))
        a = started(PIDQuotaController())
        b = started(PIDQuotaController(), config=hot)
        view = make_view([5.0])
        assert a.on_epoch(StubCtx(1), view) != b.on_epoch(StubCtx(1), view)


# ---------------------------------------------------------------------- MPC

class TestFitLine:
    def test_exact_on_linear_points(self):
        intercept, slope = fit_line([(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)])
        assert intercept == pytest.approx(1.0)
        assert slope == pytest.approx(2.0)

    def test_degenerate_inputs_return_none(self):
        assert fit_line([]) is None
        assert fit_line([(1.0, 2.0)]) is None
        assert fit_line([(1.0, 2.0), (1.0, 4.0), (1.0, 6.0)]) is None


class TestMPCController:
    def test_falls_back_to_history_law_while_ring_is_short(self):
        ctrl = started(MPCQuotaController())
        view = make_view([4.0, 3.0], cumulative_ipc=[4.0, 3.0])
        scales = ctrl.on_epoch(StubCtx(2), view)
        assert scales[0] == history_fallback_scale(10.0, 4.0, ALPHA_CAP)
        assert ctrl.state(0).prediction is None

    def test_converges_onto_the_fitted_plant_model(self):
        # Plant: ipc = 2 * scale.  Once the ring holds enough varied
        # (scale, ipc) points the model is exact, and the optimiser should
        # pick a scale predicting ~goal (=10 -> scale ~5).
        ctrl = started(MPCQuotaController())
        ctx = StubCtx(2)
        cumulative = [2.0, 4.0, 4.5, 4.6, 4.7, 4.8]
        scales = {0: 1.0}
        for step in range(6):
            ipc = 2.0 * scales[0]
            view = make_view([ipc, 3.0],
                             cumulative_ipc=[cumulative[step], 3.0])
            scales = ctrl.on_epoch(ctx, view)
        assert scales[0] == pytest.approx(5.0, abs=0.6)
        prediction = ctrl.state(0).prediction
        assert prediction is not None
        assert prediction == pytest.approx(10.0, abs=1.0)

    def test_negative_slope_fit_falls_back(self):
        ctrl = started(MPCQuotaController())
        ctrl.tuning = FAST_GPU.controller
        ctrl._nonqos_indices = (1,)
        # Seed a ring whose fit says "more quota, less IPC" — noise.
        ctrl._ring[0] = [(1.0, 8.0), (2.0, 6.0), (3.0, 4.0), (4.0, 2.0)]
        view = make_view([2.0, 3.0], cumulative_ipc=[5.0, 3.0])
        scales = ctrl.on_epoch(StubCtx(2), view)
        assert scales[0] == history_fallback_scale(10.0, 5.0, ALPHA_CAP)

    def test_ring_is_bounded_by_history_window(self):
        ctrl = started(MPCQuotaController())
        for _ in range(3 * FAST_GPU.controller.mpc_history):
            ctrl.on_epoch(StubCtx(2), make_view([4.0, 3.0]))
        assert len(ctrl._ring[0]) == FAST_GPU.controller.mpc_history
        assert len(ctrl._nonqos_ring) == FAST_GPU.controller.mpc_history


# --------------------------------------------------- integration + telemetry

@pytest.fixture(scope="module")
def pid_record():
    runner = CaseRunner(FAST_GPU, 6000, telemetry=True)
    return runner.run_pair("sgemm", "lbm", 0.5, "pid")


class TestControllerPolicies:
    @pytest.mark.parametrize("name", CONTROLLER_NAMES)
    def test_results_identical_with_and_without_telemetry(self, name):
        lean = CaseRunner(FAST_GPU, 6000).run_pair("sgemm", "lbm", 0.5, name)
        full = CaseRunner(FAST_GPU, 6000,
                          telemetry=True).run_pair("sgemm", "lbm", 0.5, name)
        assert lean.kernels == full.kernels
        assert lean.cycles == full.cycles
        assert lean.evictions == full.evictions

    def test_controller_state_reaches_the_telemetry_stream(self, pid_record):
        states = [k for epoch in pid_record.telemetry
                  for k in epoch.kernels if k.ctrl_error is not None]
        assert states, "PID runs must expose ctrl_error in telemetry"
        assert any(k.ctrl_integral is not None for k in states)

    def test_scheme_policies_leave_controller_fields_none(self):
        runner = CaseRunner(FAST_GPU, 6000, telemetry=True)
        record = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        for epoch in record.telemetry:
            for kernel in epoch.kernels:
                assert kernel.ctrl_error is None
                assert kernel.ctrl_integral is None
                assert kernel.ctrl_prediction is None

    def test_controller_records_pass_schema_validation(self, pid_record):
        from repro.sim.telemetry import (
            epoch_record_to_dict,
            validate_epoch_dict,
        )
        for epoch in pid_record.telemetry:
            validate_epoch_dict(epoch_record_to_dict(epoch))

    def test_gain_presets_hash_into_cache_keys(self):
        from repro.harness.cache import case_key
        tuned = dataclasses.replace(FAST_GPU, controller=ControllerConfig(
            pid_kp=2.0))
        args = (("sgemm", "lbm"), (True, False), (0.5, None), "pid",
                6000, 1000)
        assert case_key(FAST_GPU, *args) != case_key(tuned, *args)


# --------------------------------------------------------- golden differential

GOLDEN = json.loads(GOLDEN_PATH.read_text())


class TestGoldenDifferential:
    """The scheme-behind-controller adaptation must be a refactor, not a
    behaviour change: every pre-seam record replays bit-identically."""

    @pytest.mark.parametrize("core", ["event", "scan", "batch"])
    def test_schemes_bit_identical_to_pre_seam_records(self, core):
        # The golden file predates the batch core; since the batch core is
        # defined as record-for-record identical to the event core, its
        # records replay against the event core's golden entries.
        golden_core = "event" if core == "batch" else core
        runner = CaseRunner(FAST_GPU.scaled(engine_core=core),
                            GOLDEN["cycles"])
        mismatches = []
        for scheme in ("naive", "history", "elastic", "rollover"):
            for label, case in sorted(GOLDEN["cases"].items()):
                record = runner.run_case(
                    tuple(case["names"]), tuple(case["qos"]),
                    tuple(case["goals"]), scheme)
                current = json.loads(
                    json.dumps(dataclasses.asdict(record)))
                key = f"{golden_core}/{scheme}/{label}"
                if current != GOLDEN["records"][key]:
                    mismatches.append(f"{core}/{scheme}/{label}")
        assert mismatches == []


# ------------------------------------------------------------------- scoring

class TestScoring:
    def test_settling_epochs(self):
        goal = 10.0
        trajectory = [(2.0, goal), (8.0, goal), (9.6, goal), (9.8, goal)]
        assert settling_epochs(trajectory) == 2.0
        assert settling_epochs([(9.9, goal)] * 3) == 0.0
        assert settling_epochs([(1.0, goal)] * 3) == 3.0

    def test_score_case_requires_telemetry(self):
        record = CaseRunner(FAST_GPU, 6000).run_pair("sgemm", "lbm", 0.5,
                                                     "pid")
        with pytest.raises(ValueError, match="telemetry"):
            score_case(record, "sgemm+lbm")

    def test_score_case_metrics_are_bounded(self, pid_record):
        score = score_case(pid_record, "sgemm+lbm")
        assert 0.0 <= score.qos_attainment <= 1.0
        assert score.overshoot >= 0.0
        assert 0.0 <= score.settling_epochs <= score.epochs
        assert score.nonqos_stp > 0.0
        assert score.policy == "pid"

    def test_format_comparison_lists_every_policy(self, pid_record):
        score = score_case(pid_record, "sgemm+lbm")
        table = format_comparison({"pid": [score]}, "title")
        assert "title" in table
        assert "pid" in table
        assert "sgemm+lbm" in table


# ----------------------------------------------------------------------- CLI

class TestControllersCLI:
    def test_bench_quick_smoke(self, capsys):
        from repro.cli import main
        code = main(["controllers", "bench", "--quick", "--workloads", "1",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rollover" in out
        assert "pid" in out
        assert "attain%" in out

    def test_compare_writes_output_file(self, tmp_path, capsys):
        from repro.cli import main
        target = tmp_path / "compare.txt"
        code = main(["controllers", "compare", "--quick", "--workloads", "1",
                     "--no-cache", "-o", str(target)])
        assert code == 0
        table = target.read_text()
        for policy in ("naive", "history", "elastic", "rollover", "pid",
                       "mpc"):
            assert policy in table
