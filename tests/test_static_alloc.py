"""Tests for symmetric TB allocation and runtime adjustment (Section 3.6)."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.qos import QoSPolicy
from repro.qos.static_alloc import StaticAllocator, symmetric_targets
from repro.sim import GPUSimulator, LaunchedKernel


def spec(name, threads=128, regs=32, smem=0):
    return KernelSpec(name=name, threads_per_tb=threads,
                      regs_per_thread=regs, smem_per_tb_bytes=smem,
                      memory=MemoryPattern(footprint_bytes=1 << 22))


class TestSymmetricTargets:
    def test_paper_example_one_qos_two_nonqos(self):
        """Section 3.6: 'one QoS kernel and two non-QoS kernels on a GPU
        with 16 SMs: the QoS kernel will run on 16 SMs and each non-QoS
        kernel on 8 SMs'."""
        config = GPUConfig(num_sms=16)
        specs = [spec("qos"), spec("nq1"), spec("nq2")]
        targets = symmetric_targets(config, [0], [1, 2], specs)
        assert len(targets) == 16
        assert all(targets[sm].get(0, 0) >= 1 for sm in range(16))
        nq1_sms = sum(1 for sm in range(16) if targets[sm].get(1, 0) >= 1)
        nq2_sms = sum(1 for sm in range(16) if targets[sm].get(2, 0) >= 1)
        assert nq1_sms == 8
        assert nq2_sms == 8
        # Partitions are disjoint.
        assert all(not (targets[sm].get(1, 0) and targets[sm].get(2, 0))
                   for sm in range(16))

    def test_all_qos_share_all_sms(self):
        config = GPUConfig(num_sms=4)
        specs = [spec("q1"), spec("q2")]
        targets = symmetric_targets(config, [0, 1], [], specs)
        for sm_targets in targets:
            assert sm_targets[0] >= 1 and sm_targets[1] >= 1

    def test_targets_jointly_feasible(self):
        """The equal-thread split must be scaled down to fit registers."""
        config = GPUConfig(num_sms=2)
        heavy = spec("heavy", threads=128, regs=84)
        light = spec("light", threads=128, regs=48, smem=8 * 1024)
        targets = symmetric_targets(config, [0], [1], [heavy, light])
        for sm_targets in targets:
            regs = sum([heavy, light][idx].regs_per_tb_bytes * count
                       for idx, count in sm_targets.items())
            assert regs <= config.sm.registers_bytes
            threads = sum([heavy, light][idx].threads_per_tb * count
                          for idx, count in sm_targets.items())
            assert threads <= config.sm.max_threads

    def test_more_nonqos_than_sms_rejected(self):
        config = GPUConfig(num_sms=2)
        specs = [spec(f"k{i}") for i in range(4)]
        with pytest.raises(ValueError):
            symmetric_targets(config, [], [0, 1, 2, 3], specs)

    def test_uneven_partition_gives_leftover_to_last(self):
        config = GPUConfig(num_sms=5)
        specs = [spec("q"), spec("a"), spec("b")]
        targets = symmetric_targets(config, [0], [1, 2], specs)
        a_sms = [sm for sm in range(5) if targets[sm].get(1, 0)]
        b_sms = [sm for sm in range(5) if targets[sm].get(2, 0)]
        assert len(a_sms) + len(b_sms) == 5
        assert abs(len(a_sms) - len(b_sms)) <= 1


def _corun(qos_spec, nonqos_spec, goal, cycles=12_000, static=True):
    gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                    idle_warp_samples=10, sm=SMConfig(warp_schedulers=2))
    policy = QoSPolicy("rollover", static_adjustment=static)
    sim = GPUSimulator(gpu, [
        LaunchedKernel(qos_spec, is_qos=True, ipc_goal=goal),
        LaunchedKernel(nonqos_spec),
    ], policy)
    sim.run(cycles)
    return sim, policy


class TestRuntimeAdjustment:
    def _isolated_ipc(self, kernel_spec):
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        sm=SMConfig(warp_schedulers=2))
        sim = GPUSimulator(gpu, [LaunchedKernel(kernel_spec)])
        sim.run(12_000)
        return sim.result().kernels[0].ipc

    def test_lagging_qos_kernel_gains_tbs(self):
        """A hard goal must trigger TB grants (and usually evictions)."""
        qos = spec("qos-grow", regs=48)
        nonqos = spec("nq", regs=48)
        goal = 0.9 * self._isolated_ipc(qos)
        sim, policy = _corun(qos, nonqos, goal)
        assert policy.allocator.grants > 0
        qos_tbs = sim.total_tbs(0)
        nonqos_tbs = sim.total_tbs(1)
        assert qos_tbs > nonqos_tbs

    def test_static_adjustment_disabled_means_no_grants(self):
        qos = spec("qos-static", regs=48)
        goal = 0.9 * self._isolated_ipc(qos)
        _sim, policy = _corun(qos, spec("nq", regs=48), goal, static=False)
        assert policy.allocator.grants == 0
        assert policy.allocator.evictions_requested == 0

    def test_easy_goal_triggers_no_eviction_pressure(self):
        qos = spec("qos-easy", regs=48)
        goal = 0.2 * self._isolated_ipc(qos)
        sim, _policy = _corun(qos, spec("nq", regs=48), goal)
        result = sim.result()
        assert result.kernels[0].reached_goal
        # The non-QoS kernel keeps a healthy share of the machine.
        assert sim.total_tbs(1) >= 2


class TestAllocatorHelpers:
    def test_tbs_to_vacate_counts_resources(self):
        gpu = GPUConfig(num_sms=1, num_mcs=1)
        big = spec("big", threads=256, regs=64)     # 64 KB regs per TB
        small = spec("small", threads=64, regs=16)  # 4 KB regs per TB
        sim = GPUSimulator(gpu, [LaunchedKernel(big), LaunchedKernel(small)])
        sim.tb_targets[0][1] = 32
        sim.setup()
        allocator = StaticAllocator(gpu)
        sm = sim.sms[0]
        needed = allocator._tbs_to_vacate(sim.ctx, 0, big, victim_idx=1)
        assert needed is not None
        freed = needed * small.regs_per_tb_bytes
        free_now = gpu.sm.registers_bytes - sm.resources.registers_bytes
        assert freed + free_now >= big.regs_per_tb_bytes

    def test_vacate_impossible_when_victim_frees_nothing(self):
        gpu = GPUConfig(num_sms=1, num_mcs=1)
        smem_hungry = spec("smem", threads=64, regs=8, smem=96 * 1024)
        no_smem = spec("nosmem", threads=64, regs=8, smem=0)
        sim = GPUSimulator(gpu, [LaunchedKernel(smem_hungry),
                                 LaunchedKernel(no_smem)])
        sim.tb_targets[0][0] = 1
        sim.tb_targets[0][1] = 4
        sim.setup()
        # Wanting a second smem-hungry TB: evicting no-smem TBs can never
        # free shared memory.
        allocator = StaticAllocator(gpu)
        needed = allocator._tbs_to_vacate(sim.ctx, 0, smem_hungry,
                                          victim_idx=1)
        assert needed is None
