"""Tests for kernel-wide quota carry and redistribution.

The paper's Rollover keeps a QoS kernel's unused quota; because Quota_k is
a whole-kernel quantity distributed per SM each epoch, credit stranded on a
slow SM must flow back into the pool and reach SMs with headroom.  Without
redistribution a kernel whose SMs have asymmetric capacity equilibrates
strictly below its goal (the fast SMs are throttled at their share while
the slow SMs bank credit they can never spend).
"""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.qos import QoSPolicy
from repro.qos.quota import (
    ElasticScheme,
    NaiveScheme,
    RolloverScheme,
    RolloverTimeScheme,
)
from repro.sim import GPUSimulator, LaunchedKernel


class TestCarryRules:
    def test_naive_carries_nothing(self):
        scheme = NaiveScheme()
        assert scheme.carry(37.0, True) == 0.0
        assert scheme.carry(-5.0, False) == 0.0

    def test_elastic_carries_everything(self):
        scheme = ElasticScheme()
        assert scheme.carry(37.0, True) == 37.0
        assert scheme.carry(-5.0, False) == -5.0

    def test_rollover_carries_qos_surplus_and_all_debt(self):
        scheme = RolloverScheme()
        assert scheme.carry(37.0, True) == 37.0
        assert scheme.carry(-5.0, True) == -5.0
        assert scheme.carry(37.0, False) == 0.0
        assert scheme.carry(-5.0, False) == -5.0

    def test_refresh_is_share_plus_carry(self):
        for scheme in (NaiveScheme(), ElasticScheme(), RolloverScheme()):
            for residual in (-4.0, 0.0, 9.0):
                for is_qos in (True, False):
                    assert scheme.refresh(residual, 50.0, is_qos) == \
                        pytest.approx(50.0 + scheme.carry(residual, is_qos))

    def test_rollover_time_blocks_nonqos_at_boundary(self):
        scheme = RolloverTimeScheme()
        assert scheme.refresh(10.0, 50.0, is_qos=False) == 0.0
        assert scheme.refresh(10.0, 50.0, is_qos=True) == 60.0


class TestRedistributionEndToEnd:
    def test_asymmetric_interference_still_reaches_goal(self):
        """QoS kernel shares SM0 with a bandwidth hog and SM1 with nothing:
        per-SM shares are equal but capacities differ wildly.  Kernel-wide
        carry must let SM1 absorb SM0's stranded credit."""
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        idle_warp_samples=10,
                        sm=SMConfig(warp_schedulers=2))
        qos = KernelSpec(
            name="asym-qos", threads_per_tb=64, regs_per_thread=16,
            mix=InstructionMix(alu=0.85, sfu=0.0, ldg=0.1, stg=0.05, lds=0.0),
            memory=MemoryPattern(footprint_bytes=1 << 22),
            ilp=0.8, body_length=16, iterations_per_tb=3)
        hog = KernelSpec(
            name="asym-hog", threads_per_tb=64, regs_per_thread=16,
            mix=InstructionMix(alu=0.2, sfu=0.0, ldg=0.6, stg=0.2, lds=0.0),
            memory=MemoryPattern(footprint_bytes=1 << 27, reuse_fraction=0.0,
                                 coalesced_fraction=0.3,
                                 uncoalesced_degree=4),
            ilp=0.2, body_length=16, iterations_per_tb=2, intensity="memory")

        iso = GPUSimulator(gpu, [LaunchedKernel(qos)])
        iso.run(10_000)
        isolated = iso.result().kernels[0].ipc
        # Static adjustment is off, so the QoS kernel keeps its symmetric
        # half of each SM; pick a goal inside that TLP-limited capacity.
        goal = 0.5 * isolated

        class PinnedQoS(QoSPolicy):
            """Symmetric targets but the hog confined to SM0."""

            def setup(self, ctx):
                super().setup(ctx)
                ctx.set_tb_target(1, 1, 0)  # no hog on SM1

        sim = GPUSimulator(gpu, [
            LaunchedKernel(qos, is_qos=True, ipc_goal=goal),
            LaunchedKernel(hog),
        ], PinnedQoS("rollover", static_adjustment=False))
        sim.run(1_000)  # warm-up excluded, as in the harness
        sim.mark_measurement_start()
        sim.run(20_000)
        achieved = sim.result().kernels[0].ipc
        assert achieved >= goal * 0.99

    def test_counters_reset_not_stacked(self):
        """After a boundary, per-SM counters hold the fresh share (plus the
        redistributed carry), not share + local residual twice."""
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        sm=SMConfig(warp_schedulers=2))
        spec = KernelSpec(
            name="reset-check", threads_per_tb=64, regs_per_thread=16,
            memory=MemoryPattern(footprint_bytes=1 << 22),
            body_length=16, iterations_per_tb=3)
        policy = QoSPolicy("rollover", static_adjustment=False)
        sim = GPUSimulator(gpu, [
            LaunchedKernel(spec, is_qos=True, ipc_goal=5.0),
            LaunchedKernel(spec.__class__(**{**spec.__dict__, "name": "other"})),
        ], policy)
        sim.run(2_000)
        # Total counter mass across SMs stays bounded by a couple of quotas
        # (an accumulation bug would grow it every epoch).
        quota = policy._kernel_quota(sim.ctx, 0)
        total = sum(sm.quota_counters[0] for sm in sim.sms)
        assert total <= 3 * quota
