"""Interprocedural flow engine: taint traces, effect inference, caching.

Three layers under test:

* the FLOW/FLOAT rules through :func:`check_source` — positive fixtures
  must carry a full source→sink trace in the message, and each positive
  fixture has a *mediated twin* (seeded RNG, ``sorted``, ``math.fsum``)
  that must analyse clean;
* effect/purity inference (:func:`repro.analysis.flow.classify`) and the
  EFFECT seam rules, driven by module names the rules anchor on;
* the persistent summary cache: a second run over an unchanged tree
  computes nothing, an edit recomputes only what it must, and the
  findings are identical either way.
"""

import ast
import pathlib
import textwrap

from repro.analysis.callgraph import build_callgraph  # noqa: F401
from repro.analysis.core import ModuleInfo, Project
from repro.analysis.driver import (analyze_paths, check_source,
                                   resolve_flow_cache_dir)
from repro.analysis.flow import (IO, MUTATES_ENGINE, PURE, READS_STATE,
                                 ProjectFlowAnalysis, classify)

REPO = pathlib.Path(__file__).resolve().parents[1]


def flow(source, rules=("FLOW001", "FLOW002", "FLOW003", "FLOAT001"),
         name=None):
    return check_source(textwrap.dedent(source), rule_ids=list(rules),
                        name=name)


def rules_of(findings):
    return [finding.rule for finding in findings]


def analysis_of(source, name="mod"):
    source = textwrap.dedent(source)
    module = ModuleInfo(path=pathlib.Path(name + ".py"),
                        display=name + ".py", source=source,
                        tree=ast.parse(source), name=name)
    return ProjectFlowAnalysis(Project([module]))


# ------------------------------------------------------------ FLOW001


class TestTaintedIdentity:
    def test_trace_crosses_two_intermediate_helpers(self):
        findings = flow("""
            import hashlib
            import time

            def stamp():
                return time.time()

            def describe():
                return f"run at {stamp()}"

            def case_key():
                return hashlib.sha256(describe().encode()).hexdigest()
            """)
        assert rules_of(findings) == ["FLOW001"]
        message = findings[0].message
        # The full provenance chain is printed, source to sink.
        assert "wall-clock read time.time()" in message
        assert "stamp()" in message and "describe()" in message
        assert "identity sink sha256()" in message

    def test_seeded_rng_twin_is_clean(self):
        findings = flow("""
            import hashlib
            import random

            def stamp():
                return random.Random(42).random()

            def describe():
                return f"run at {stamp()}"

            def case_key():
                return hashlib.sha256(describe().encode()).hexdigest()
            """)
        assert findings == []

    def test_set_order_through_join_helper(self):
        findings = flow("""
            import hashlib

            def join(items):
                return ",".join(items)

            def digest(names):
                return hashlib.sha256(join(set(names)).encode()).hexdigest()
            """)
        assert rules_of(findings) == ["FLOW001"]

    def test_sorted_twin_is_clean(self):
        findings = flow("""
            import hashlib

            def join(items):
                return ",".join(items)

            def digest(names):
                return hashlib.sha256(
                    join(sorted(set(names))).encode()).hexdigest()
            """)
        assert findings == []

    def test_unseeded_rng_into_key_callable(self):
        findings = flow("""
            import random

            def run(case_key):
                return case_key(random.random())
            """)
        assert rules_of(findings) == ["FLOW001"]
        assert "random.random" in findings[0].message


# ------------------------------------------------------------ FLOW002


class TestTaintedSortKey:
    def test_lambda_id_key(self):
        findings = flow("""
            def order(tbs):
                return sorted(tbs, key=lambda tb: id(tb))
            """)
        assert rules_of(findings) == ["FLOW002"]

    def test_named_helper_key_reading_the_clock(self):
        findings = flow("""
            import time

            def jitter(item):
                return time.time()

            def order(items):
                return sorted(items, key=jitter)
            """)
        assert rules_of(findings) == ["FLOW002"]

    def test_stable_key_is_clean(self):
        findings = flow("""
            def order(tbs):
                return sorted(tbs, key=lambda tb: tb.name)
            """)
        assert findings == []


# ------------------------------------------------------------ FLOW003


class TestTaintedTelemetry:
    def test_wall_clock_into_note_quota(self):
        findings = flow("""
            import time

            def observe(recorder):
                recorder.note_quota("k", time.time())
            """)
        assert rules_of(findings) == ["FLOW003"]

    def test_simulation_quantities_are_clean(self):
        findings = flow("""
            def observe(recorder, cycles):
                recorder.note_quota("k", cycles)
            """)
        assert findings == []


# ------------------------------------------------------------ FLOAT001


class TestFloatAccumulation:
    def test_augmented_sum_over_a_set(self):
        findings = flow("""
            def total(values):
                acc = 0.0
                for value in set(values):
                    acc += value
                return acc
            """)
        assert rules_of(findings) == ["FLOAT001"]

    def test_sum_over_helper_returned_listing(self):
        findings = flow("""
            import os

            def entries(path):
                return os.listdir(path)

            def total(path, sizes):
                return sum(sizes[name] for name in entries(path))
            """)
        assert "FLOAT001" in rules_of(findings)

    def test_fsum_twin_is_clean(self):
        findings = flow("""
            import math

            def total(values):
                return math.fsum(set(values))
            """)
        assert findings == []

    def test_sorted_loop_twin_is_clean(self):
        findings = flow("""
            def total(values):
                acc = 0.0
                for value in sorted(set(values)):
                    acc += value
                return acc
            """)
        assert findings == []

    def test_plain_list_accumulation_is_clean(self):
        findings = flow("""
            def total(values):
                acc = 0.0
                for value in values:
                    acc += value
                return acc
            """)
        assert findings == []


# ----------------------------------------------------- effect inference


class TestEffectInference:
    def test_four_way_classification(self):
        analysis = analysis_of("""
            def pure(a, b):
                return a + b

            def reads(engine):
                return engine.cycle

            def mutates(engine):
                engine.cycle = 0

            def logs(x):
                print(x)
            """)
        assert analysis.classification("mod.pure") == PURE
        assert analysis.classification("mod.reads") == READS_STATE
        assert analysis.classification("mod.mutates") == MUTATES_ENGINE
        assert analysis.classification("mod.logs") == IO

    def test_mutation_maps_through_call_summaries(self):
        analysis = analysis_of("""
            def poke(target):
                target.count += 1

            def wrapper(engine):
                poke(engine)
            """)
        facts = analysis.facts_for("mod.wrapper")
        assert "param:engine" in facts.mutates

    def test_io_propagates_transitively(self):
        analysis = analysis_of("""
            def emit(row):
                print(row)

            def outer(rows):
                for row in rows:
                    emit(row)
            """)
        assert analysis.classification("mod.outer") == IO

    def test_local_mutation_stays_local(self):
        analysis = analysis_of("""
            def build(n):
                out = []
                for i in range(n):
                    out.append(i)
                return out
            """)
        assert analysis.classification("mod.build") == PURE


# ----------------------------------------------------- EFFECT rules


class TestEffectRules:
    def test_effect001_telemetry_mutating_engine_param(self):
        findings = check_source(textwrap.dedent("""
            class Recorder:
                def open_epoch(self, engine):
                    engine.epoch += 1
                    self.epochs = []
            """), rule_ids=["EFFECT001"], name="repro.sim.telemetry")
        assert rules_of(findings) == ["EFFECT001"]
        assert "engine" in findings[0].message

    def test_effect001_self_accumulation_and_io_are_fine(self):
        findings = check_source(textwrap.dedent("""
            class Recorder:
                def open_epoch(self, engine):
                    self.epochs.append(engine.cycle)

                def export(self, stream):
                    stream.write("row")
            """), rule_ids=["EFFECT001"], name="repro.sim.telemetry")
        assert findings == []

    def test_effect002_observer_with_side_effect(self):
        findings = check_source(textwrap.dedent("""
            class PolicyContext:
                def quota_attainment(self, kernel):
                    self.calls += 1
                    return 1.0

                def set_quota(self, kernel, value):
                    self.quotas[kernel] = value
            """), rule_ids=["EFFECT002"], name="repro.sim.policy")
        assert rules_of(findings) == ["EFFECT002"]
        assert "quota_attainment" in findings[0].message
        # set_quota is on the actuation allowlist and stays unflagged.

    def test_effect003_policy_reaching_around_the_seam(self):
        findings = check_source(textwrap.dedent("""
            class Policy:
                def on_epoch(self, ctx, engine):
                    engine.cycle = 0
                    print("acted")
            """), rule_ids=["EFFECT003"], name="repro.qos.fixture")
        assert rules_of(findings) == ["EFFECT003"]
        message = findings[0].message
        assert "engine" in message and "IO" in message

    def test_effect003_actuating_via_the_seam_is_fine(self):
        findings = check_source(textwrap.dedent("""
            class Policy:
                def on_epoch(self, ctx):
                    self.rounds += 1
                    ctx.set_quota("k", 1)
            """), rule_ids=["EFFECT003"], name="repro.qos.fixture")
        assert findings == []


# ----------------------------------------------------- summary cache


def write_tree(root):
    (root / "helpers.py").write_text(textwrap.dedent("""
        import time

        def stamp():
            return time.time()
        """))
    (root / "keys.py").write_text(textwrap.dedent("""
        import hashlib

        from helpers import stamp

        def case_key():
            return hashlib.sha256(str(stamp()).encode()).hexdigest()
        """))
    (root / "clean.py").write_text(textwrap.dedent("""
        def double(x):
            return 2 * x
        """))


class TestSummaryCache:
    RULES = ["FLOW001", "FLOW002", "FLOW003", "FLOAT001"]

    def run(self, root, cache):
        return analyze_paths([root], root=root, rule_ids=self.RULES,
                             flow_cache_dir=cache)

    def test_warm_run_skips_every_module(self, tmp_path):
        write_tree(tmp_path)
        cache = tmp_path / "cache"
        cold = self.run(tmp_path, cache)
        assert cold.flow_stats == {"modules": 3, "computed": 3, "cached": 0}
        assert rules_of(cold.findings) == ["FLOW001"]
        warm = self.run(tmp_path, cache)
        assert warm.flow_stats == {"modules": 3, "computed": 0, "cached": 3}
        # Cached findings are bit-identical to the cold run's.
        assert [(f.rule, f.path, f.line, f.message)
                for f in warm.findings] == [
            (f.rule, f.path, f.line, f.message) for f in cold.findings]

    def test_editing_a_module_invalidates_its_dependents(self, tmp_path):
        write_tree(tmp_path)
        cache = tmp_path / "cache"
        self.run(tmp_path, cache)
        # Sanitize the source helper: its importer must recompute too,
        # and the finding disappears.
        (tmp_path / "helpers.py").write_text(textwrap.dedent("""
            def stamp():
                return 42
            """))
        result = self.run(tmp_path, cache)
        assert result.flow_stats["cached"] == 1  # clean.py only
        assert result.flow_stats["computed"] == 2
        assert result.findings == []

    def test_import_cycles_invalidate_the_whole_cycle(self, tmp_path):
        # a ↔ b ↔ c form a cycle; d imports only a.  Every member's
        # cache key must cover every other member's source — a
        # traversal-order-truncated closure would leave some member
        # cached after an edit elsewhere in the cycle (and, worse, the
        # truncation point used to vary with per-process hash
        # randomisation, so warm runs recomputed a random subset).
        (tmp_path / "a.py").write_text("import b\n\nX = 1\n")
        (tmp_path / "b.py").write_text("import c\n\nY = 2\n")
        (tmp_path / "c.py").write_text("import a\n\nZ = 3\n")
        (tmp_path / "d.py").write_text("import a\n\nW = 4\n")
        cache = tmp_path / "cache"
        cold = self.run(tmp_path, cache)
        assert cold.flow_stats == {"modules": 4, "computed": 4, "cached": 0}
        warm = self.run(tmp_path, cache)
        assert warm.flow_stats == {"modules": 4, "computed": 0, "cached": 4}
        (tmp_path / "b.py").write_text("import c\n\nY = 20\n")
        edited = self.run(tmp_path, cache)
        assert edited.flow_stats == {"modules": 4, "computed": 4, "cached": 0}

    def test_disabled_cache_always_computes(self, tmp_path):
        write_tree(tmp_path)
        first = analyze_paths([tmp_path], root=tmp_path,
                              rule_ids=self.RULES, flow_cache=False)
        second = analyze_paths([tmp_path], root=tmp_path,
                               rule_ids=self.RULES, flow_cache=False)
        assert first.flow_stats["computed"] == 3
        assert second.flow_stats["computed"] == 3


class TestCacheDirResolution:
    def test_disabled_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE", str(tmp_path))
        assert resolve_flow_cache_dir(enabled=False) is None

    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE", str(tmp_path / "env"))
        explicit = tmp_path / "explicit"
        assert resolve_flow_cache_dir(explicit=explicit) == explicit

    def test_env_off_disables(self, monkeypatch):
        for value in ("0", "off", "OFF", "", "no"):
            monkeypatch.setenv("REPRO_LINT_CACHE", value)
            assert resolve_flow_cache_dir(root=REPO) is None

    def test_env_path_relocates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE", str(tmp_path / "spot"))
        assert resolve_flow_cache_dir(root=REPO) == tmp_path / "spot"

    def test_default_is_the_benchmarks_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)
        assert resolve_flow_cache_dir(root=REPO) == (
            REPO / "benchmarks" / ".cache" / "analysis")

    def test_no_checkout_no_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)
        assert resolve_flow_cache_dir(root=tmp_path) is None
        assert resolve_flow_cache_dir(root=None) is None
