"""Tests for the SM issue path, EWS quota enforcement, and TB hosting."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.sim.kernel_runtime import KernelRuntime
from repro.sim.memory import MemorySubsystem
from repro.sim.sm import SM
from repro.sim.stats import KernelStats
from repro.sim.warp import WarpState


def alu_spec(name="sm-alu", ilp=1.0, iterations=2, body=10, barrier=False):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=8,
        mix=InstructionMix(alu=1.0, sfu=0.0, ldg=0.0, stg=0.0, lds=0.0,
                           barrier_per_iteration=barrier),
        memory=MemoryPattern(footprint_bytes=1 << 20),
        ilp=ilp, body_length=body, iterations_per_tb=iterations)


def memory_spec(name="sm-mem"):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=8,
        mix=InstructionMix(alu=0.0, sfu=0.0, ldg=1.0, stg=0.0, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 26, reuse_fraction=0.0),
        ilp=0.0, body_length=10, iterations_per_tb=2)


class Harness:
    """A single SM wired to stub callbacks for unit testing."""

    def __init__(self, specs, config=None):
        self.config = config or GPUConfig(num_sms=1, num_mcs=1,
                                          sm=SMConfig(warp_schedulers=2))
        self.memory = MemorySubsystem(self.config, len(specs))
        self.runtimes = [KernelRuntime(i, spec, self.config.memory.line_size)
                         for i, spec in enumerate(specs)]
        self.stats = [KernelStats() for _ in specs]
        self.exhausted_events = []
        self.finished_tbs = []
        self.sm = SM(0, self.config, self.runtimes, self.memory, self.stats,
                     self._on_exhausted, self._on_finished)

    def _on_exhausted(self, sm, kernel_idx, cycle):
        self.exhausted_events.append((kernel_idx, cycle))

    def _on_finished(self, sm, tb, cycle):
        self.finished_tbs.append(tb)
        sm.remove_tb(tb)

    def run(self, cycles, start=0):
        issued = 0
        for cycle in range(start, start + cycles):
            issued += self.sm.step(cycle)
        return issued


class TestDispatch:
    def test_dispatch_accounts_resources(self):
        harness = Harness([alu_spec()])
        tb = harness.sm.dispatch_tb(0, tb_id=0, cycle=0)
        assert harness.sm.resources.threads == 64
        assert harness.sm.tb_count[0] == 1
        assert len(tb.warps) == 2

    def test_warps_balanced_across_schedulers(self):
        harness = Harness([alu_spec()])
        harness.sm.dispatch_tb(0, 0, 0)
        harness.sm.dispatch_tb(0, 1, 0)
        counts = [len(s.warps) for s in harness.sm.schedulers]
        assert counts == [2, 2]

    def test_remove_tb_releases_everything(self):
        harness = Harness([alu_spec()])
        tb = harness.sm.dispatch_tb(0, 0, 0)
        harness.sm.remove_tb(tb)
        assert harness.sm.resources.threads == 0
        assert harness.sm.tb_count[0] == 0
        assert all(not s.warps for s in harness.sm.schedulers)


class TestIssue:
    def test_pure_alu_tb_completes(self):
        harness = Harness([alu_spec(ilp=1.0)])
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(200)
        assert len(harness.finished_tbs) == 1
        # 2 warps x 20 instructions x 32 lanes
        assert harness.stats[0].retired_thread_insts == 2 * 20 * 32

    def test_issue_rate_bounded_by_schedulers(self):
        harness = Harness([alu_spec(ilp=1.0, iterations=50, body=50)])
        harness.sm.dispatch_tb(0, 0, 0)
        harness.sm.dispatch_tb(0, 1, 0)
        issued = harness.run(20, start=1)
        assert issued <= 20 * 2  # two schedulers

    def test_dependent_alu_is_slower_than_independent(self):
        fast = Harness([alu_spec(name="fast", ilp=1.0, iterations=4)])
        slow = Harness([alu_spec(name="slow", ilp=0.0, iterations=4)])
        for harness in (fast, slow):
            harness.sm.dispatch_tb(0, 0, 0)
            harness.run(60)
        assert (fast.stats[0].retired_thread_insts
                > slow.stats[0].retired_thread_insts)

    def test_memory_kernel_generates_requests(self):
        harness = Harness([memory_spec()])
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(3000)
        assert harness.memory.kernel_stats[0].requests > 0

    def test_barrier_program_terminates(self):
        harness = Harness([alu_spec(barrier=True, iterations=2)])
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(500)
        assert len(harness.finished_tbs) == 1
        for scheduler in harness.sm.schedulers:
            assert not scheduler.warps


class TestQuotaEnforcement:
    def test_counter_decrements_by_lanes(self):
        harness = Harness([alu_spec()])
        harness.sm.quota_enabled = True
        harness.sm.set_quota(0, 1000.0)
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(5, start=1)
        retired = harness.stats[0].retired_thread_insts
        assert harness.sm.quota_counters[0] == 1000.0 - retired

    def test_exhaustion_throttles_and_fires_hook(self):
        harness = Harness([alu_spec(iterations=50)])
        harness.sm.quota_enabled = True
        harness.sm.set_quota(0, 64.0)
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(50, start=1)
        assert harness.exhausted_events
        assert harness.sm.quota_ok[0] is False
        retired = harness.stats[0].retired_thread_insts
        # Overrun bounded by one warp instruction per scheduler.
        assert retired <= 64 + 32 * len(harness.sm.schedulers)

    def test_refill_resumes_execution(self):
        harness = Harness([alu_spec(iterations=50)])
        harness.sm.quota_enabled = True
        harness.sm.set_quota(0, 64.0)
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(50, start=1)
        before = harness.stats[0].retired_thread_insts
        harness.sm.add_quota(0, 1e9)
        harness.run(50, start=51)
        assert harness.stats[0].retired_thread_insts > before

    def test_quota_disabled_never_throttles(self):
        harness = Harness([alu_spec(iterations=50)])
        harness.sm.set_quota(0, 1.0)
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(100, start=1)
        assert not harness.exhausted_events
        assert harness.stats[0].retired_thread_insts > 1000

    def test_all_exhausted(self):
        harness = Harness([alu_spec(), memory_spec()])
        harness.sm.quota_counters[0] = 0.0
        harness.sm.quota_counters[1] = 5.0
        assert harness.sm.all_exhausted([0]) is True
        assert harness.sm.all_exhausted([0, 1]) is False


class TestIdleSampling:
    def test_idle_warps_counted_for_oversubscribed_kernel(self):
        harness = Harness([alu_spec(ilp=1.0, iterations=50, body=50)])
        for tb_id in range(4):  # 8 warps on 2 schedulers
            harness.sm.dispatch_tb(0, tb_id, 0)
        for cycle in range(1, 30):
            harness.sm.step(cycle, sample=True)
        assert harness.sm.mean_idle_warps(0) > 0

    def test_reset_epoch_sampling(self):
        harness = Harness([alu_spec()])
        harness.sm.dispatch_tb(0, 0, 0)
        for cycle in range(1, 10):
            harness.sm.step(cycle, sample=True)
        harness.sm.reset_epoch_sampling()
        assert harness.sm.idle_samples == 0
        assert harness.sm.mean_idle_warps(0) == 0.0
        assert harness.sm.retired_local[0] == 0

    def test_retired_local_tracks_per_epoch(self):
        harness = Harness([alu_spec()])
        harness.sm.dispatch_tb(0, 0, 0)
        harness.run(20, start=1)
        assert harness.sm.retired_local[0] == \
            harness.stats[0].retired_thread_insts


class TestEvictionVictim:
    def test_picks_most_recent_live_tb(self):
        harness = Harness([alu_spec()])
        harness.sm.dispatch_tb(0, 0, 0)
        newest = harness.sm.dispatch_tb(0, 1, 0)
        assert harness.sm.pick_eviction_victim(0) is newest

    def test_skips_evicting_tbs(self):
        harness = Harness([alu_spec()])
        older = harness.sm.dispatch_tb(0, 0, 0)
        newer = harness.sm.dispatch_tb(0, 1, 0)
        newer.evicting = True
        assert harness.sm.pick_eviction_victim(0) is older

    def test_none_when_no_candidates(self):
        harness = Harness([alu_spec()])
        assert harness.sm.pick_eviction_victim(0) is None
