"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main
from repro.harness.experiments import ExperimentSuite


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig06a"])
        assert args.experiment == "fig06a"
        assert args.preset == "fast"
        assert args.output_dir is None

    def test_preset_choice(self):
        args = build_parser().parse_args(["table1", "--preset", "smoke"])
        assert args.preset == "smoke"

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--preset", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ExperimentSuite.EXPERIMENTS:
            assert experiment_id in out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "GTO" in out

    def test_output_dir(self, tmp_path, capsys):
        assert main(["table2", "--preset", "smoke",
                     "-o", str(tmp_path)]) == 0
        written = tmp_path / "table2.txt"
        assert written.exists()
        assert "comparison with prior work" in written.read_text()

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["fig99", "--preset", "smoke"])


class TestTraceCommand:
    def test_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "case.jsonl"
        assert main(["trace", "mri-q", "lbm", "--preset", "smoke",
                     "-o", str(out)]) == 0
        from repro.trace import read_trace
        with out.open() as stream:
            meta, records = read_trace(stream)
        assert meta["kernels"] == ["mri-q", "lbm"]
        assert meta["policy"] == "rollover"
        assert records
        assert records[0].epoch_index == 0

    def test_stdout_by_default(self, capsys):
        assert main(["trace", "mri-q", "lbm", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        import io
        from repro.trace import read_trace
        meta, records = read_trace(io.StringIO(out))
        assert meta["preset"] == "smoke"
        assert records

    def test_policy_and_qos_options(self, tmp_path):
        out = tmp_path / "trio.jsonl"
        assert main(["trace", "sgemm", "mri-q", "lbm", "--qos", "2",
                     "--goal", "0.25", "--policy", "naive",
                     "--preset", "smoke", "-o", str(out)]) == 0
        from repro.trace import read_trace
        with out.open() as stream:
            meta, records = read_trace(stream)
        assert meta["qos"] == [True, True, False]
        assert meta["goal_fraction"] == 0.25
        assert [k.name for k in records[0].kernels] == ["sgemm", "mri-q",
                                                        "lbm"]

    def test_rejects_bad_qos_count(self, capsys):
        assert main(["trace", "sgemm", "lbm", "--qos", "3",
                     "--preset", "smoke"]) == 2

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["trace", "sgemm", "lbm", "--policy", "bogus"])
