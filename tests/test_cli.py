"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main
from repro.harness.experiments import ExperimentSuite


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig06a"])
        assert args.experiment == "fig06a"
        assert args.preset == "fast"
        assert args.output_dir is None

    def test_preset_choice(self):
        args = build_parser().parse_args(["table1", "--preset", "smoke"])
        assert args.preset == "smoke"

    def test_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--preset", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ExperimentSuite.EXPERIMENTS:
            assert experiment_id in out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "GTO" in out

    def test_output_dir(self, tmp_path, capsys):
        assert main(["table2", "--preset", "smoke",
                     "-o", str(tmp_path)]) == 0
        written = tmp_path / "table2.txt"
        assert written.exists()
        assert "comparison with prior work" in written.read_text()

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["fig99", "--preset", "smoke"])
