"""Tests for the engine's structured epoch telemetry (repro.sim.telemetry).

Covers the observational contract (telemetry on changes nothing), record
content and epoch bookkeeping, the dict codec + strict schema check, and
the JSONL trace round-trip.
"""

import io

import pytest

from repro.config import FAST_GPU, GPUConfig, SMConfig
from repro.kernels import get_kernel
from repro.qos import QoSPolicy
from repro.sim import (
    GPUSimulator,
    LaunchedKernel,
    SharingPolicy,
    TelemetryRecorder,
)
from repro.sim.telemetry import (
    SCHEMA_VERSION,
    epoch_record_from_dict,
    epoch_record_to_dict,
    validate_epoch_dict,
)
from repro.trace import read_trace, write_trace

CYCLES = 6000


def run(policy=None, telemetry=False, cycles=CYCLES, gpu=FAST_GPU):
    recorder = TelemetryRecorder() if telemetry else None
    sim = GPUSimulator(gpu, [
        LaunchedKernel(get_kernel("sgemm"), is_qos=True, ipc_goal=100.0),
        LaunchedKernel(get_kernel("lbm")),
    ], policy, telemetry=recorder)
    sim.run(cycles)
    return sim


@pytest.fixture(scope="module")
def rollover_records():
    sim = run(QoSPolicy("rollover"), telemetry=True)
    return sim.finalize_telemetry()


class TestObservationalContract:
    @pytest.mark.parametrize("policy_factory", [
        lambda: None,
        lambda: SharingPolicy(),
        lambda: QoSPolicy("rollover"),
        lambda: QoSPolicy("naive"),
    ])
    def test_results_identical_with_and_without(self, policy_factory):
        off = run(policy_factory(), telemetry=False)
        on = run(policy_factory(), telemetry=True)
        assert on.result() == off.result()

    def test_finalize_without_recorder_is_empty(self):
        sim = run(QoSPolicy("rollover"), telemetry=False)
        assert sim.finalize_telemetry() == ()


class TestRecordContent:
    def test_epochs_contiguous_and_ordered(self, rollover_records):
        assert rollover_records
        for i, record in enumerate(rollover_records):
            assert record.epoch_index == i
            assert record.end_cycle > record.start_cycle
            if i:
                assert record.start_cycle == rollover_records[i - 1].end_cycle

    def test_trailing_partial_epoch_reaches_final_cycle(self):
        gpu = FAST_GPU
        sim = run(QoSPolicy("rollover"), telemetry=True,
                  cycles=gpu.epoch_length + gpu.epoch_length // 2)
        records = sim.finalize_telemetry()
        assert records[-1].end_cycle == sim.cycle

    def test_finalize_idempotent(self):
        sim = run(QoSPolicy("rollover"), telemetry=True)
        assert sim.finalize_telemetry() == sim.finalize_telemetry()

    def test_kernel_names_and_retired(self, rollover_records):
        names = [k.name for k in rollover_records[0].kernels]
        assert names == ["sgemm", "lbm"]
        total = sum(k.retired for record in rollover_records
                    for k in record.kernels if k.name == "sgemm")
        assert total > 0

    def test_quota_fields_present_for_quota_policy(self, rollover_records):
        # The opening refresh happens from epoch 1 on (epoch 0 runs on the
        # setup-time grant, which QoSPolicy also notes).
        sampled = rollover_records[1]
        for kernel in sampled.kernels:
            assert kernel.quota_granted is not None
            assert kernel.quota_carried is not None
            assert kernel.quota_residual is not None
            assert kernel.ipc_goal is not None

    def test_quota_fields_none_for_unmanaged_policy(self):
        sim = run(SharingPolicy(), telemetry=True)
        for record in sim.finalize_telemetry():
            for kernel in record.kernels:
                assert kernel.quota_granted is None
                assert kernel.quota_residual is None
                assert kernel.alpha is None

    def test_sleep_counters_bounded_by_span(self, rollover_records):
        num_sms = FAST_GPU.num_sms
        for record in rollover_records:
            span = record.end_cycle - record.start_cycle
            assert 0 <= record.idle_jump_cycles <= span
            assert 0 <= record.sleep_skipped_sm_cycles <= num_sms * span
            # A fully idle GPU cycle is idle on every SM.
            assert (record.sleep_skipped_sm_cycles
                    >= num_sms * record.idle_jump_cycles)

    def test_epoch_ipc_matches_retired_delta(self, rollover_records):
        for record in rollover_records:
            span = record.end_cycle - record.start_cycle
            for kernel in record.kernels:
                assert kernel.epoch_ipc == pytest.approx(kernel.retired / span)


class TestTBMoves:
    def test_preempting_policy_records_moves(self):
        # A tiny machine under an aggressive QoS goal forces TB moves.
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                        idle_warp_samples=8, sm=SMConfig(warp_schedulers=2))
        sim = run(QoSPolicy("rollover"), telemetry=True, cycles=12_000,
                  gpu=gpu)
        records = sim.finalize_telemetry()
        moves = [move for record in records for move in record.tb_moves]
        assert sim.result().evictions == len(moves)
        for move in moves:
            assert 0 <= move.sm_id < gpu.num_sms
            assert move.drain_cycles >= 0


class TestCodec:
    def test_round_trip(self, rollover_records):
        for record in rollover_records:
            payload = epoch_record_to_dict(record)
            validate_epoch_dict(payload)
            assert epoch_record_from_dict(payload) == record

    def test_validate_rejects_missing_field(self, rollover_records):
        payload = epoch_record_to_dict(rollover_records[0])
        del payload["end_cycle"]
        with pytest.raises(ValueError, match="end_cycle"):
            validate_epoch_dict(payload)

    def test_validate_rejects_unknown_field(self, rollover_records):
        payload = epoch_record_to_dict(rollover_records[0])
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            validate_epoch_dict(payload)

    def test_validate_rejects_wrong_type(self, rollover_records):
        payload = epoch_record_to_dict(rollover_records[0])
        payload["epoch_index"] = "zero"
        with pytest.raises(ValueError, match="epoch_index"):
            validate_epoch_dict(payload)

    def test_validate_rejects_bad_kernel_entry(self, rollover_records):
        payload = epoch_record_to_dict(rollover_records[0])
        payload["kernels"][0]["retired"] = 1.5
        with pytest.raises(ValueError, match="retired"):
            validate_epoch_dict(payload)


class TestJsonlTrace:
    def test_round_trip(self, rollover_records):
        buffer = io.StringIO()
        count = write_trace(buffer, rollover_records,
                            meta={"policy": "rollover"})
        assert count == len(rollover_records)
        buffer.seek(0)
        meta, records = read_trace(buffer)
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["policy"] == "rollover"
        assert tuple(records) == tuple(rollover_records)

    def test_read_rejects_missing_meta(self, rollover_records):
        buffer = io.StringIO()
        write_trace(buffer, rollover_records)
        body = "".join(buffer.getvalue().splitlines(True)[1:])
        with pytest.raises(ValueError, match="meta"):
            read_trace(io.StringIO(body))

    def test_read_rejects_version_skew(self, rollover_records):
        buffer = io.StringIO()
        write_trace(buffer, rollover_records)
        skewed = buffer.getvalue().replace(
            f'"schema_version": {SCHEMA_VERSION}',
            f'"schema_version": {SCHEMA_VERSION + 1}', 1)
        with pytest.raises(ValueError, match="schema version"):
            read_trace(io.StringIO(skewed))

    def test_read_rejects_corrupt_epoch_line(self, rollover_records):
        buffer = io.StringIO()
        write_trace(buffer, rollover_records)
        corrupted = buffer.getvalue().replace('"epoch_index"',
                                              '"epoch_idx"')
        with pytest.raises(ValueError):
            read_trace(io.StringIO(corrupted))
