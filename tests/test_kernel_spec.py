"""Tests for KernelSpec / InstructionMix / MemoryPattern validation and
resource arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.config import SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern


class TestInstructionMix:
    def test_default_sums_to_one(self):
        mix = InstructionMix()
        assert abs(mix.alu + mix.sfu + mix.ldg + mix.stg + mix.lds - 1.0) < 1e-9

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            InstructionMix(alu=0.5, sfu=0.0, ldg=0.0, stg=0.0, lds=0.0)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            InstructionMix(alu=1.2, sfu=-0.2, ldg=0.0, stg=0.0, lds=0.0)


class TestMemoryPattern:
    def test_defaults_valid(self):
        MemoryPattern()

    @pytest.mark.parametrize("kwargs", [
        {"footprint_bytes": 0},
        {"coalesced_fraction": 1.5},
        {"coalesced_fraction": -0.1},
        {"reuse_fraction": 2.0},
        {"uncoalesced_degree": 0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MemoryPattern(**kwargs)


class TestKernelSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"threads_per_tb": 100},       # not a warp multiple
        {"threads_per_tb": 0},
        {"regs_per_thread": 0},
        {"smem_per_tb_bytes": -1},
        {"ilp": 1.5},
        {"divergence": -0.1},
        {"body_length": 0},
        {"iterations_per_tb": 0},
        {"intensity": "balanced"},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            KernelSpec(name="bad", **kwargs)


class TestResourceArithmetic:
    def test_warps_per_tb(self):
        spec = KernelSpec(name="k", threads_per_tb=256)
        assert spec.warps_per_tb == 8

    def test_register_bytes_per_tb(self):
        spec = KernelSpec(name="k", threads_per_tb=64, regs_per_thread=32)
        assert spec.regs_per_tb_bytes == 32 * 4 * 64

    def test_context_bytes_includes_smem(self):
        spec = KernelSpec(name="k", threads_per_tb=64, regs_per_thread=16,
                          smem_per_tb_bytes=2048)
        assert spec.context_bytes == spec.regs_per_tb_bytes + 2048

    def test_resource_vector_keys(self):
        vector = KernelSpec(name="k").resource_vector()
        assert set(vector) == {"registers_bytes", "shared_memory_bytes",
                               "threads", "tbs"}
        assert vector["tbs"] == 1


class TestMaxTBsPerSM:
    def test_thread_limited(self):
        spec = KernelSpec(name="k", threads_per_tb=1024, regs_per_thread=1)
        assert spec.max_tbs_per_sm(SMConfig()) == 2  # 2048 threads / 1024

    def test_register_limited(self):
        spec = KernelSpec(name="k", threads_per_tb=32, regs_per_thread=256)
        # 256 regs * 4 B * 32 threads = 32 KB per TB -> 8 TBs in 256 KB.
        assert spec.max_tbs_per_sm(SMConfig()) == 8

    def test_shared_memory_limited(self):
        spec = KernelSpec(name="k", threads_per_tb=32, regs_per_thread=1,
                          smem_per_tb_bytes=48 * 1024)
        assert spec.max_tbs_per_sm(SMConfig()) == 2  # 96 KB / 48 KB

    def test_tb_slot_limited(self):
        spec = KernelSpec(name="k", threads_per_tb=32, regs_per_thread=1)
        assert spec.max_tbs_per_sm(SMConfig()) == 32

    @given(threads=st.sampled_from([32, 64, 128, 256, 512]),
           regs=st.integers(min_value=1, max_value=255),
           smem=st.sampled_from([0, 1024, 8192, 49152]))
    def test_admission_limit_is_tight(self, threads, regs, smem):
        """max_tbs_per_sm is exactly the last admissible count."""
        spec = KernelSpec(name="k", threads_per_tb=threads,
                          regs_per_thread=regs, smem_per_tb_bytes=smem)
        sm = SMConfig()
        count = spec.max_tbs_per_sm(sm)
        assert count * spec.regs_per_tb_bytes <= sm.registers_bytes
        assert count * spec.threads_per_tb <= sm.max_threads
        if smem:
            assert count * smem <= sm.shared_memory_bytes
        # one more TB must violate some limit (unless capped by TB slots)
        over = count + 1
        if over <= sm.max_tbs:
            assert (over * spec.regs_per_tb_bytes > sm.registers_bytes
                    or over * spec.threads_per_tb > sm.max_threads
                    or (smem and over * smem > sm.shared_memory_bytes))
