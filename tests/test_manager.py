"""Tests for the QoS manager policy: quotas, alphas, refills, elastic epochs."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.qos import QoSPolicy
from repro.qos.manager import ALPHA_CAP
from repro.qos.quota import RolloverScheme
from repro.sim import GPUSimulator, LaunchedKernel


def alu_spec(name, ilp=0.9):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.9, sfu=0.0, ldg=0.05, stg=0.05, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 22),
        ilp=ilp, body_length=16, iterations_per_tb=3)


def make_gpu(**kwargs):
    defaults = dict(num_sms=2, num_mcs=1, epoch_length=500,
                    idle_warp_samples=10, sm=SMConfig(warp_schedulers=2))
    defaults.update(kwargs)
    return GPUConfig(**defaults)


def corun(policy, goal=50.0, cycles=4000, gpu=None):
    sim = GPUSimulator(gpu or make_gpu(), [
        LaunchedKernel(alu_spec("qos-k"), is_qos=True, ipc_goal=goal),
        LaunchedKernel(alu_spec("nonqos-k")),
    ], policy)
    sim.run(cycles)
    return sim


class TestConstruction:
    def test_scheme_by_string(self):
        assert QoSPolicy("elastic").scheme.name == "elastic"

    def test_scheme_by_instance(self):
        scheme = RolloverScheme()
        assert QoSPolicy(scheme).scheme is scheme

    def test_default_is_rollover(self):
        assert QoSPolicy().scheme.name == "rollover"

    def test_uses_quotas(self):
        assert QoSPolicy().uses_quotas is True

    def test_name_includes_scheme(self):
        assert QoSPolicy("naive").name == "qos-naive"


class TestSetupState:
    def test_partitions_kernels(self):
        policy = QoSPolicy()
        sim = corun(policy, cycles=0)
        sim.setup()
        assert policy.qos_indices == [0]
        assert policy.nonqos_indices == [1]
        assert policy.goals == {0: 50.0}

    def test_quota_counters_loaded_at_setup(self):
        policy = QoSPolicy()
        sim = corun(policy, cycles=0)
        sim.setup()
        for sm in sim.sms:
            assert sm.quota_enabled
            assert sm.quota_counters[0] > 0


class TestQuotaDistribution:
    def test_proportional_to_hosted_tbs(self):
        policy = QoSPolicy(static_adjustment=False)
        sim = corun(policy, goal=40.0, cycles=1600)
        total = sim.config.epoch_length * policy.alphas[0] * 40.0
        shares = []
        total_tbs = sim.total_tbs(0)
        for sm in sim.sms:
            shares.append(sm.tb_count[0] / total_tbs * total)
        # Fresh counters at the last boundary were proportional shares plus
        # rollover residue; with symmetric TBs the shares must be equal.
        assert shares[0] == pytest.approx(shares[1])

    def test_whole_gpu_quota_formula(self):
        policy = QoSPolicy(static_adjustment=False)
        sim = corun(policy, goal=40.0, cycles=1100)
        expected = policy.alphas[0] * 40.0 * sim.config.epoch_length
        assert policy._kernel_quota(sim.ctx, 0) == pytest.approx(expected)


class TestAlpha:
    def test_alpha_rises_when_history_lags(self):
        policy = QoSPolicy(static_adjustment=False)
        # An impossible goal: history stays far below, alpha must grow.
        corun(policy, goal=10_000.0, cycles=3000)
        assert policy.alphas[0] > 1.0

    def test_alpha_capped(self):
        policy = QoSPolicy(static_adjustment=False)
        corun(policy, goal=1e9, cycles=2000)
        assert policy.alphas[0] <= ALPHA_CAP

    def test_alpha_is_one_when_goal_met(self):
        policy = QoSPolicy(static_adjustment=False)
        corun(policy, goal=1.0, cycles=3000)
        assert policy.alphas[0] == 1.0

    def test_naive_scheme_never_scales(self):
        policy = QoSPolicy("naive", static_adjustment=False)
        corun(policy, goal=10_000.0, cycles=3000)
        assert policy.alphas[0] == 1.0


class TestThrottling:
    def test_quota_caps_qos_kernel(self):
        """EWS must hold an over-provisioned QoS kernel near its goal."""
        policy = QoSPolicy(static_adjustment=False)
        sim = corun(policy, goal=20.0, cycles=6000)
        ipc = sim.result().kernels[0].ipc
        assert ipc == pytest.approx(20.0, rel=0.15)

    def test_nonqos_gets_leftover_cycles(self):
        policy = QoSPolicy(static_adjustment=False)
        sim = corun(policy, goal=10.0, cycles=6000)
        result = sim.result()
        assert result.kernels[0].reached_goal
        # The non-QoS kernel's refills let it dominate the machine.
        assert result.kernels[1].ipc > result.kernels[0].ipc

    def test_rollover_time_blocks_then_releases(self):
        policy = QoSPolicy("rollover-time", static_adjustment=False)
        sim = corun(policy, goal=10.0, cycles=6000)
        result = sim.result()
        assert result.kernels[0].reached_goal
        assert result.kernels[1].ipc > 0  # released after QoS exhaustion


class TestElasticEpochs:
    def test_elastic_runs_more_epochs(self):
        gpu = make_gpu()
        elastic = corun(QoSPolicy("elastic", static_adjustment=False),
                        goal=5.0, cycles=5000, gpu=gpu)
        fixed = corun(QoSPolicy("rollover", static_adjustment=False),
                      goal=5.0, cycles=5000, gpu=gpu)
        # Tiny quotas are consumed early; elastic restarts epochs at once.
        assert elastic.result().epochs > fixed.result().epochs


class TestHistoryTracking:
    def test_history_matches_result_ipc(self):
        policy = QoSPolicy(static_adjustment=False)
        sim = corun(policy, goal=30.0, cycles=4000)
        # ipc_history is refreshed at the last epoch boundary; the final
        # result IPC must be close to it (same run, slightly longer window).
        result_ipc = sim.result().kernels[0].ipc
        assert policy.ipc_history[0] == pytest.approx(result_ipc, rel=0.1)

    def test_epoch_ipc_positive_for_running_kernels(self):
        policy = QoSPolicy(static_adjustment=False)
        corun(policy, goal=30.0, cycles=4000)
        assert policy.epoch_ipc[0] > 0
