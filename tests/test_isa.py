"""Tests for the instruction-set abstraction."""

import pytest

from repro.isa import (
    COMPUTE_OPCODES,
    MEMORY_OPCODES,
    Opcode,
    WarpInstruction,
    is_global_memory,
)


class TestOpcodeClasses:
    def test_compute_and_memory_disjoint(self):
        assert not (COMPUTE_OPCODES & MEMORY_OPCODES)

    def test_all_opcodes_classified_or_barrier(self):
        classified = COMPUTE_OPCODES | MEMORY_OPCODES | {Opcode.BAR}
        assert set(Opcode) == classified

    def test_global_memory_predicate(self):
        assert is_global_memory(Opcode.LDG)
        assert is_global_memory(Opcode.STG)
        assert not is_global_memory(Opcode.LDS)
        assert not is_global_memory(Opcode.ALU)
        assert not is_global_memory(Opcode.BAR)

    def test_opcodes_are_ints(self):
        # The SM issue path dispatches on raw ints for speed.
        assert Opcode.ALU == 0
        assert Opcode.BAR == 5


class TestWarpInstruction:
    def test_defaults(self):
        inst = WarpInstruction(Opcode.ALU)
        assert inst.active_lanes == 32
        assert inst.dependent

    def test_divergent_lanes(self):
        inst = WarpInstruction(Opcode.ALU, active_lanes=16)
        assert inst.active_lanes == 16

    @pytest.mark.parametrize("lanes", [0, 33, -1])
    def test_rejects_bad_lane_counts(self, lanes):
        with pytest.raises(ValueError):
            WarpInstruction(Opcode.ALU, active_lanes=lanes)

    def test_immutable(self):
        inst = WarpInstruction(Opcode.LDG)
        with pytest.raises(AttributeError):
            inst.active_lanes = 8
