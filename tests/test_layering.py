"""Architectural layering: policies may not import the engine.

Policies consume the narrow :class:`repro.sim.policy.PolicyContext` surface;
the engine imports *them* (through the harness), never the reverse.  This
module walks the AST of every source file in the policy-side packages and
fails if any of them imports ``repro.sim.engine`` — the inverted dependency
this refactor removed — so it cannot silently creep back in.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

#: Packages that must stay engine-free: they see only the PolicyContext.
POLICY_PACKAGES = ("qos", "baselines", "sharing")

FORBIDDEN = "repro.sim.engine"


def policy_sources():
    files = []
    for package in POLICY_PACKAGES:
        files.extend(sorted((SRC / package).rglob("*.py")))
    assert files, "policy packages not found — did the layout change?"
    return files


def imports_of(path: pathlib.Path):
    """Every module name imported by ``path`` (absolute form)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.module:
                found.append(node.module)
    return found


class TestPolicyLayering:
    @pytest.mark.parametrize("path", policy_sources(),
                             ids=lambda p: str(p.relative_to(SRC)))
    def test_never_imports_engine(self, path):
        offenders = [name for name in imports_of(path)
                     if name == FORBIDDEN or name.startswith(FORBIDDEN + ".")]
        assert not offenders, (
            f"{path.relative_to(SRC)} imports {offenders}; policies must "
            "use repro.sim.policy.PolicyContext instead of the engine")

    def test_policy_module_itself_is_engine_free(self):
        # The contract's home must honour it too (engine imports policy).
        offenders = [name for name in imports_of(SRC / "sim" / "policy.py")
                     if name == FORBIDDEN or name.startswith(FORBIDDEN + ".")]
        assert not offenders

    def test_forbidden_module_exists(self):
        # Guard the guard: if the engine module moves, the scan above would
        # pass vacuously.
        assert (SRC / "sim" / "engine.py").exists()
