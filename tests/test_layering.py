"""Architectural layering, enforced through the `repro lint` analyzer.

The hand-rolled AST walk this file used to carry became the analyzer's
declarative import contracts (:data:`repro.analysis.rules.IMPORT_CONTRACTS`,
rule LAY001) plus the PolicyContext seam rules (LAY002/LAY003).  These
tests drive the same rules through the analyzer API — one source of truth —
so a contract violation fails here with the rule's own actionable message,
and the contract table itself is sanity-checked against the live tree.
"""

import pathlib

import pytest

from repro.analysis import analyze_paths
from repro.analysis.rules import IMPORT_CONTRACTS, POLICY_SIDE_PACKAGES

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src"

LAYERING_RULES = ("LAY001", "LAY002", "LAY003")


def layering_findings():
    result = analyze_paths([SRC], root=REPO, rule_ids=list(LAYERING_RULES))
    return result


@pytest.fixture(scope="module")
def analysis():
    return layering_findings()


class TestImportContracts:
    @pytest.mark.parametrize(
        "contract", IMPORT_CONTRACTS, ids=lambda c: c.name)
    def test_contract_holds(self, analysis, contract):
        offenders = [
            finding for finding in analysis.findings
            if finding.rule == "LAY001" and contract.name in finding.message]
        assert not offenders, "\n".join(
            finding.format() for finding in offenders)

    def test_policy_engine_contract_governs_all_policy_packages(self):
        # The generalised table must not silently drop the original
        # invariant: every policy-side package stays under the
        # engine-independence contract.
        contract = next(c for c in IMPORT_CONTRACTS
                        if c.name == "policy-engine-independence")
        for package in POLICY_SIDE_PACKAGES:
            assert package in contract.packages
        assert "repro.sim.engine" in contract.forbidden
        # The contract's home must honour it too (the engine imports
        # repro.sim.policy, never the reverse).
        assert "repro.sim.policy" in contract.packages

    def test_governed_packages_exist(self):
        # Guard the guard: if a governed package is renamed, the contract
        # would pass vacuously.
        for contract in IMPORT_CONTRACTS:
            for package in contract.packages:
                relative = pathlib.Path(*package.split(".")[1:])
                target = SRC / "repro" / relative
                assert (target.is_dir()
                        or target.with_suffix(".py").is_file()), (
                    f"contract '{contract.name}' governs {package}, which "
                    "no longer exists — update IMPORT_CONTRACTS")

    def test_forbidden_engine_module_exists(self):
        # ... and likewise for the module the contracts forbid.
        assert (SRC / "repro" / "sim" / "engine.py").exists()


class TestPolicyContextSeam:
    def test_no_attribute_assignment_into_context(self, analysis):
        offenders = [finding for finding in analysis.findings
                     if finding.rule == "LAY002"]
        assert not offenders, "\n".join(
            finding.format() for finding in offenders)

    def test_no_private_context_access(self, analysis):
        offenders = [finding for finding in analysis.findings
                     if finding.rule == "LAY003"]
        assert not offenders, "\n".join(
            finding.format() for finding in offenders)


class TestAnalyzerSeesTheTree:
    def test_policy_packages_are_analyzed(self, analysis):
        # If the analyzer's file discovery broke, every layering test above
        # would pass vacuously; require the policy packages to be present.
        names = sorted({module.name for module in analysis.modules})
        for package in POLICY_SIDE_PACKAGES:
            assert any(name == package or name.startswith(package + ".")
                       for name in names), (
                f"{package} was not analyzed — file discovery regressed?")
        assert "repro.sim.engine" in names
