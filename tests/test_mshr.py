"""Tests for the L1 MSHR structural-hazard model."""

import pytest

from repro.config import GPUConfig, MemoryConfig
from repro.sim.memory import MemorySubsystem


def make_subsystem(mshrs, service_interval=2, num_mcs=1):
    config = GPUConfig(
        num_sms=1, num_mcs=num_mcs,
        memory=MemoryConfig(l1_mshrs=mshrs,
                            mc_service_interval=service_interval))
    return MemorySubsystem(config, 1), config


class TestMSHRLimit:
    def test_under_limit_no_stall(self):
        mem, _config = make_subsystem(mshrs=8)
        mem.warp_access(0, 0, tuple(range(8)), False, now=0)
        assert mem.kernel_stats[0].mshr_stalls == 0

    def test_over_limit_stalls(self):
        mem, _config = make_subsystem(mshrs=4)
        mem.warp_access(0, 0, tuple(range(8)), False, now=0)
        assert mem.kernel_stats[0].mshr_stalls == 4

    def test_stalled_requests_complete_later(self):
        few, _config = make_subsystem(mshrs=2)
        many, _config = make_subsystem(mshrs=64)
        lines = tuple(range(12))
        limited = few.warp_access(0, 0, lines, False, now=0)
        unlimited = many.warp_access(0, 0, lines, False, now=0)
        assert limited > unlimited

    def test_mshrs_free_over_time(self):
        mem, _config = make_subsystem(mshrs=2)
        mem.warp_access(0, 0, (0, 1), False, now=0)
        # Far in the future both outstanding misses have returned.
        mem.warp_access(0, 0, (2, 3), False, now=1_000_000)
        assert mem.kernel_stats[0].mshr_stalls == 0

    def test_flush_clears_mshrs(self):
        mem, _config = make_subsystem(mshrs=2)
        mem.warp_access(0, 0, (0, 1), False, now=0)
        mem.flush_l1(0)
        mem.warp_access(0, 0, (2, 3), False, now=0)
        assert mem.kernel_stats[0].mshr_stalls == 0


class TestL1WriteSemantics:
    def test_stores_bypass_l1(self):
        mem, _config = make_subsystem(mshrs=64)
        mem.warp_access(0, 0, (7,), True, now=0)     # store
        assert mem.l1s[0].probe(7) is False           # no-allocate
        assert mem.kernel_stats[0].l1_hits == 0

    def test_stores_consume_controller_bandwidth(self):
        mem, _config = make_subsystem(mshrs=64, service_interval=10)
        mem.warp_access(0, 0, (7,), True, now=0)
        assert mem.controllers[0].serviced == 1

    def test_store_marks_l2_dirty_and_evicts_with_writeback(self):
        config = GPUConfig(
            num_sms=1, num_mcs=1,
            memory=MemoryConfig(l1_mshrs=64, l2_slice_size=2 * 128,
                                l2_assoc=1, mc_service_interval=2))
        mem = MemorySubsystem(config, 1)
        mem.warp_access(0, 0, (0,), True, now=0)       # dirty line 0, set 0
        mem.warp_access(0, 0, (2,), False, now=10_000)  # evicts line 0
        assert mem.aggregate()["l2_writebacks"] == 1
