"""Tests for the case runner and its memoisation."""

import pytest

from repro.config import FAST_GPU
from repro.harness.runner import CaseRunner, make_policy, POLICY_NAMES
from repro.baselines import SpartPolicy
from repro.qos import QoSPolicy
from repro.sim import SharingPolicy

CYCLES = 6000


@pytest.fixture(scope="module")
def runner():
    return CaseRunner(FAST_GPU, CYCLES)


class TestMakePolicy:
    def test_spart(self):
        assert isinstance(make_policy("spart"), SpartPolicy)

    def test_smk_base(self):
        policy = make_policy("smk")
        assert type(policy) is SharingPolicy

    def test_quota_schemes(self):
        for name in ("naive", "history", "elastic", "rollover",
                     "rollover-time"):
            policy = make_policy(name)
            assert isinstance(policy, QoSPolicy)
            assert policy.scheme.name == name

    def test_nostatic_variant(self):
        policy = make_policy("rollover-nostatic")
        assert isinstance(policy, QoSPolicy)
        assert policy.static_adjustment is False

    def test_every_listed_name_constructs(self):
        for name in POLICY_NAMES:
            make_policy(name)


class TestIsolated:
    def test_memoised(self, runner):
        first = runner.isolated_ipc("sgemm")
        second = runner.isolated_ipc("sgemm")
        assert first == second
        assert first > 0

    def test_compute_faster_than_memory(self, runner):
        assert runner.isolated_ipc("mri-q") > runner.isolated_ipc("spmv")


class TestRunPair:
    def test_outcome_structure(self, runner):
        record = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        assert record.policy == "rollover"
        qos, nonqos = record.kernels
        assert qos.is_qos and not nonqos.is_qos
        assert qos.goal_fraction == 0.5
        assert qos.ipc_goal == pytest.approx(
            0.5 * runner.isolated_ipc("sgemm"))
        assert nonqos.ipc_goal is None
        assert nonqos.reached is None
        assert 0 <= nonqos.normalized_throughput <= 1.5

    def test_memoisation_returns_same_object(self, runner):
        first = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        second = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        assert first is second
        assert runner.cached_cases >= 1

    def test_easy_goal_met(self, runner):
        record = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        assert record.qos_met

    def test_goal_ratio_and_miss_percent(self, runner):
        record = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        qos = record.qos_kernels[0]
        assert qos.goal_ratio == pytest.approx(qos.ipc / qos.ipc_goal)
        if qos.reached:
            assert qos.miss_percent == 0.0

    def test_power_metrics_present(self, runner):
        record = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        assert record.power_w > 0
        assert record.instructions_per_watt > 0


class TestRunTrio:
    def test_one_qos(self, runner):
        record = runner.run_trio(("sgemm", "lbm", "mri-q"), 1, 0.5,
                                 "rollover")
        assert len(record.qos_kernels) == 1
        assert len(record.nonqos_kernels) == 2

    def test_two_qos(self, runner):
        record = runner.run_trio(("sgemm", "lbm", "mri-q"), 2, 0.25,
                                 "rollover")
        assert len(record.qos_kernels) == 2
        assert all(k.goal_fraction == 0.25 for k in record.qos_kernels)

    def test_qos_met_requires_all(self, runner):
        record = runner.run_trio(("sgemm", "lbm", "mri-q"), 2, 0.25,
                                 "rollover")
        expected = all(k.reached for k in record.qos_kernels)
        assert record.qos_met == expected

    def test_invalid_qos_count(self, runner):
        with pytest.raises(ValueError):
            runner.run_trio(("sgemm", "lbm", "mri-q"), 3, 0.5, "rollover")
        with pytest.raises(ValueError):
            runner.run_trio(("sgemm", "lbm", "mri-q"), 0, 0.5, "rollover")


class TestIntensityTagging:
    def test_outcomes_carry_class(self, runner):
        record = runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        assert record.kernels[0].intensity == "C"
        assert record.kernels[1].intensity == "M"
