"""Experiment store: claim protocol, interrupt/resume, provenance, CLI.

The load-bearing guarantees under test:

* claim-by-update never hands the same case to two pullers;
* an interrupted sweep (fault-injected via ``CaseRunner.fault_after``)
  resumed by a fresh runner produces records byte-identical to an
  uninterrupted run — serial and parallel, telemetry on and off;
* re-running a completed experiment performs zero new simulations.
"""

import json

import pytest

from repro.config import FAST_GPU
from repro.harness.cache import (CaseCache, code_salt, experiment_id_for,
                                 experiment_spec_hash, record_to_dict,
                                 sweep_grid_payload)
from repro.harness.expdb import (ExperimentDB, default_expdb_path,
                                 expdb_disabled_by_env, open_default_expdb)
from repro.harness.parallel import ParallelCaseRunner
from repro.harness.runner import CaseRunner, CaseSpec, SweepInterrupted

CYCLES = 4000

SPECS = [
    CaseSpec.pair("sgemm", "lbm", 0.5, "rollover"),
    CaseSpec.pair("mri-q", "spmv", 0.65, "spart"),
    CaseSpec.pair("sgemm", "spmv", 0.65, "rollover"),
    CaseSpec.trio(("sgemm", "lbm", "mri-q"), 1, 0.5, "rollover"),
]

ROWS = [({"case": index}, f"key-{index}") for index in range(4)]


def register_demo(db, experiment_id="exp-demo", salt="salt-a"):
    return db.register(experiment_id, "hash-" + experiment_id, salt,
                       {"specs": [spec for spec, _ in ROWS]}, ROWS)


class TestStore:
    def test_register_is_idempotent(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        assert register_demo(db) is True
        claim = db.claim_next("exp-demo", "w0")
        assert claim == (0, {"case": 0})
        # Re-registering the same id neither duplicates cases nor resets
        # their statuses.
        assert register_demo(db) is False
        assert db.case_counts("exp-demo") == {"pending": 3, "running": 1}

    def test_claim_order_and_payloads(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        register_demo(db)
        indices = []
        while True:
            claim = db.claim_next("exp-demo", "w0")
            if claim is None:
                break
            index, spec = claim
            assert spec == {"case": index}
            indices.append(index)
            db.mark_done("exp-demo", index)
        assert indices == [0, 1, 2, 3]

    def test_no_double_claim_across_connections(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        first, second = ExperimentDB(path), ExperimentDB(path)
        register_demo(first)
        claims = []
        for db in (first, second, first, second, second):
            claim = db.claim_next("exp-demo", f"w{id(db) % 2}")
            if claim is not None:
                claims.append(claim[0])
        assert sorted(claims) == [0, 1, 2, 3]  # four cases, four claims

    def test_release_stale_reclaims_running_and_failed(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        register_demo(db)
        db.claim_next("exp-demo", "w0")
        index, _ = db.claim_next("exp-demo", "w0")
        db.mark_failed("exp-demo", index, "boom")
        assert db.case_counts("exp-demo") == {
            "failed": 1, "pending": 2, "running": 1}
        assert db.release_stale("exp-demo") == 2
        assert db.case_counts("exp-demo") == {"pending": 4}

    def test_finish_requires_every_case_done(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        register_demo(db)
        assert db.finish("exp-demo") is False
        while True:
            claim = db.claim_next("exp-demo", "w0")
            if claim is None:
                break
            db.mark_done("exp-demo", claim[0])
        assert db.finish("exp-demo") is True
        assert db.experiment("exp-demo")["status"] == "done"

    def test_isolated_round_trip(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        register_demo(db)
        db.record_isolated("exp-demo", "sgemm", "iso-key", 123.5)
        db.record_isolated("exp-demo", "lbm", "iso-key2", 45.25)
        assert db.isolated_ipcs("exp-demo") == {"sgemm": 123.5, "lbm": 45.25}
        assert db.isolated_ipcs("exp-other") == {}

    def test_gc_drops_stale_salts_and_optionally_done(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        register_demo(db, "exp-current", salt="salt-a")
        register_demo(db, "exp-stale", salt="salt-b")
        assert db.gc(current_salt="salt-a") == 1
        assert db.experiment("exp-stale") is None
        assert db.cases("exp-stale") == []
        while True:
            claim = db.claim_next("exp-current", "w0")
            if claim is None:
                break
            db.mark_done("exp-current", claim[0])
        db.finish("exp-current")
        assert db.gc(current_salt="salt-a", drop_done=True) == 1
        assert db.experiments() == []

    def test_stats_shape(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        register_demo(db)
        stats = db.stats()
        assert stats["experiments"] == {"pending": 1}
        assert stats["cases"] == {"pending": 4}

    def test_env_disable_and_relocation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXPDB", "0")
        assert expdb_disabled_by_env()
        assert open_default_expdb() is None
        monkeypatch.setenv("REPRO_EXPDB", str(tmp_path / "custom.sqlite"))
        assert not expdb_disabled_by_env()
        assert default_expdb_path() == tmp_path / "custom.sqlite"
        monkeypatch.setenv("REPRO_EXPDB", str(tmp_path))
        assert default_expdb_path() == tmp_path / "experiments.sqlite"


class TestExperimentIdentity:
    def grid(self, specs=SPECS, telemetry=False):
        return sweep_grid_payload(FAST_GPU, CYCLES, 2000, telemetry,
                                  [spec.payload() for spec in specs])

    def test_same_grid_same_id(self):
        first, second = self.grid(), self.grid()
        assert experiment_spec_hash(first) == experiment_spec_hash(second)
        assert (experiment_id_for(experiment_spec_hash(first))
                == experiment_id_for(experiment_spec_hash(second)))

    def test_identity_tracks_grid_content(self):
        base = experiment_spec_hash(self.grid())
        assert experiment_spec_hash(self.grid(SPECS[:2])) != base
        assert experiment_spec_hash(self.grid(telemetry=True)) != base
        reordered = list(reversed(SPECS))
        assert experiment_spec_hash(self.grid(reordered)) != base

    def test_id_embeds_hash_prefix(self):
        spec_hash = experiment_spec_hash(self.grid())
        assert experiment_id_for(spec_hash) == f"exp-{spec_hash[:12]}"

    def test_spec_payload_round_trip(self):
        for spec in SPECS:
            clone = CaseSpec.from_payload(
                json.loads(json.dumps(spec.payload())))
            assert clone == spec


def dump(records):
    """Byte-level form of a record list (the differential currency)."""
    return json.dumps([record_to_dict(record) for record in records],
                      sort_keys=True)


def interrupt_then_resume(tmp_path, runner_cls, telemetry, **runner_kwargs):
    """Fault a sweep at ~50%, resume with a fresh runner, return records."""
    db_path = tmp_path / "exp.sqlite"
    cache_dir = tmp_path / "cache"
    interrupted = runner_cls(FAST_GPU, CYCLES, cache=CaseCache(cache_dir),
                             telemetry=telemetry,
                             expdb=ExperimentDB(db_path), **runner_kwargs)
    interrupted.fault_after = len(SPECS) // 2
    with pytest.raises(SweepInterrupted):
        interrupted.sweep(SPECS)
    db = ExperimentDB(db_path)
    counts = db.case_counts(interrupted.experiment_log[0][0])
    assert counts.get("done", 0) < len(SPECS)  # genuinely mid-flight
    resumed = runner_cls(FAST_GPU, CYCLES, cache=CaseCache(cache_dir),
                         telemetry=telemetry, expdb=db, **runner_kwargs)
    records = resumed.sweep(SPECS)
    assert db.experiment(resumed.experiment_log[0][0])["status"] == "done"
    return records


class TestInterruptResume:
    @pytest.fixture(scope="class")
    def clean_records(self):
        return CaseRunner(FAST_GPU, CYCLES).sweep(SPECS)

    @pytest.fixture(scope="class")
    def clean_telemetry_records(self):
        return CaseRunner(FAST_GPU, CYCLES, telemetry=True).sweep(SPECS)

    def test_serial_resume_is_byte_identical(self, tmp_path, clean_records):
        records = interrupt_then_resume(tmp_path, CaseRunner, False)
        assert dump(records) == dump(clean_records)

    def test_serial_resume_with_telemetry(self, tmp_path,
                                          clean_telemetry_records):
        records = interrupt_then_resume(tmp_path, CaseRunner, True)
        assert dump(records) == dump(clean_telemetry_records)

    def test_parallel_resume_is_byte_identical(self, tmp_path, clean_records):
        records = interrupt_then_resume(tmp_path, ParallelCaseRunner, False,
                                        workers=2)
        assert dump(records) == dump(clean_records)

    def test_parallel_resume_with_telemetry(self, tmp_path,
                                            clean_telemetry_records):
        records = interrupt_then_resume(tmp_path, ParallelCaseRunner, True,
                                        workers=2)
        assert dump(records) == dump(clean_telemetry_records)

    def test_resume_without_case_cache_still_matches(self, tmp_path,
                                                     clean_records):
        """With the JSONL cache disabled, resume re-simulates done cases at
        assembly time — determinism keeps the records identical anyway."""
        db_path = tmp_path / "exp.sqlite"
        interrupted = CaseRunner(FAST_GPU, CYCLES,
                                 expdb=ExperimentDB(db_path))
        interrupted.fault_after = 2
        with pytest.raises(SweepInterrupted):
            interrupted.sweep(SPECS)
        resumed = CaseRunner(FAST_GPU, CYCLES, expdb=ExperimentDB(db_path))
        assert dump(resumed.sweep(SPECS)) == dump(clean_records)


class _Bomb:
    """Stand-in for GPUSimulator that detonates on construction."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("a completed experiment re-ran a simulation")


class TestZeroNewSimulations:
    def test_completed_experiment_never_simulates_again(self, tmp_path,
                                                        monkeypatch):
        db_path, cache_dir = tmp_path / "exp.sqlite", tmp_path / "cache"
        warm = CaseRunner(FAST_GPU, CYCLES, cache=CaseCache(cache_dir),
                          expdb=ExperimentDB(db_path))
        baseline = warm.sweep(SPECS)
        monkeypatch.setattr("repro.harness.runner.GPUSimulator", _Bomb)
        for runner_cls, kwargs in ((CaseRunner, {}),
                                   (ParallelCaseRunner, {"workers": 2})):
            rerun = runner_cls(FAST_GPU, CYCLES, cache=CaseCache(cache_dir),
                               expdb=ExperimentDB(db_path), **kwargs)
            assert dump(rerun.sweep(SPECS)) == dump(baseline)

    def test_unregistered_sweeps_stay_out_of_the_store(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        runner = CaseRunner(FAST_GPU, CYCLES, expdb=db)
        runner.sweep(SPECS[:1], register=False)
        assert db.experiments() == []
        assert runner.experiment_log == []
        runner.sweep(SPECS[:1])
        assert len(db.experiments()) == 1
        assert len(runner.experiment_log) == 1

    def test_experiment_log_records_content_ids(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        runner = CaseRunner(FAST_GPU, CYCLES, expdb=db)
        runner.sweep(SPECS[:1])
        experiment_id, spec_hash = runner.experiment_log[0]
        assert experiment_id == experiment_id_for(spec_hash)
        record = db.experiment(experiment_id)
        assert record["spec_hash"] == spec_hash
        assert record["code_salt"] == code_salt()


class TestExpCli:
    @pytest.fixture
    def store_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXPDB", str(tmp_path / "exp.sqlite"))
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        return tmp_path

    def interrupted_id(self, tmp_path):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        runner = CaseRunner(FAST_GPU, CYCLES,
                            cache=CaseCache(tmp_path / "cache"), expdb=db)
        runner.fault_after = 2
        with pytest.raises(SweepInterrupted):
            runner.sweep(SPECS)
        return runner.experiment_log[0][0]

    def test_list_show_resume(self, store_env, capsys):
        from repro.harness.expcli import main
        experiment_id = self.interrupted_id(store_env)
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert experiment_id in out and "2/4" in out
        assert main(["show", experiment_id]) == 0
        out = capsys.readouterr().out
        assert "pending" in out and "current" in out
        assert main(["resume", experiment_id, "--workers", "1"]) == 0
        assert main(["show", experiment_id]) == 0
        assert "done      4" in capsys.readouterr().out

    def test_resume_refuses_stale_salt(self, store_env, capsys):
        from repro.harness.expcli import main
        db = ExperimentDB(store_env / "exp.sqlite")
        register_demo(db, "exp-stale", salt="not-the-current-salt")
        assert main(["resume", "exp-stale"]) == 2
        assert "refusing" in capsys.readouterr().err
        assert main(["gc"]) == 0
        assert "dropped 1" in capsys.readouterr().out
        assert db.experiment("exp-stale") is None

    def test_unknown_experiment(self, store_env, capsys):
        from repro.harness.expcli import main
        assert main(["show", "exp-missing"]) == 2
        assert main(["resume", "exp-missing"]) == 2

    def test_disabled_store_is_a_noop(self, monkeypatch, capsys):
        from repro.harness.expcli import main
        monkeypatch.setenv("REPRO_EXPDB", "0")
        assert main(["list"]) == 0
        assert "disabled" in capsys.readouterr().err

    def test_cli_dispatches_exp(self, store_env, capsys):
        from repro.cli import main
        self.interrupted_id(store_env)
        assert main(["exp", "list"]) == 0
        assert "exp-" in capsys.readouterr().out


class TestExpDiff:
    @pytest.fixture
    def store_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXPDB", str(tmp_path / "exp.sqlite"))
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        return tmp_path

    def sweep_id(self, tmp_path, specs, cycles, fault_after=None):
        db = ExperimentDB(tmp_path / "exp.sqlite")
        runner = CaseRunner(FAST_GPU, cycles,
                            cache=CaseCache(tmp_path / "cache"), expdb=db)
        if fault_after is not None:
            runner.fault_after = fault_after
            with pytest.raises(SweepInterrupted):
                runner.sweep(specs)
        else:
            runner.sweep(specs)
        return runner.experiment_log[0][0]

    def test_diff_reports_grid_and_spec_deltas(self, store_env, capsys):
        from repro.harness.expcli import main
        id_a = self.sweep_id(store_env, SPECS[:3], CYCLES)
        id_b = self.sweep_id(store_env, SPECS[1:], CYCLES * 2)
        assert main(["show", "--diff", id_a, id_b]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and str(CYCLES) in out and str(CYCLES * 2) in out
        assert "2 shared, 1 only in A, 1 only in B" in out
        # The unshared specs are named, QoS kernels starred with their goal.
        assert "only A:   sgemm*0.5+lbm [rollover]" in out
        assert "only B:   sgemm*0.5+lbm+mri-q [rollover]" in out

    def test_diff_reports_status_drift_on_shared_specs(self, store_env,
                                                       capsys):
        from repro.harness.expcli import main
        id_a = self.sweep_id(store_env, SPECS, CYCLES)
        id_b = self.sweep_id(store_env, SPECS, CYCLES * 2, fault_after=2)
        assert id_a != id_b  # cycles are part of the grid identity
        assert main(["show", "--diff", id_a, id_b]) == 0
        out = capsys.readouterr().out
        assert "machine, cycles and telemetry identical" not in out
        assert "4 shared, 0 only in A, 0 only in B" in out
        assert "2 shared spec(s) differ" in out
        assert "A=done" in out and "B=pending" in out

    def test_diff_usage_errors(self, store_env, capsys):
        from repro.harness.expcli import main
        id_a = self.sweep_id(store_env, SPECS[:1], CYCLES)
        assert main(["show", "--diff", id_a]) == 2
        assert "two experiment ids" in capsys.readouterr().err
        assert main(["show", id_a, "exp-other"]) == 2
        assert "--diff" in capsys.readouterr().err
        assert main(["show", "--diff", id_a, "exp-missing"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
