"""Tests for QoS-goal to IPC-goal translation (Section 3.2)."""

import pytest

from repro.qos.goals import QoSRequirement, TransferModel, translate_qos_goal


class TestTransferModel:
    def test_zero_bytes_costs_nothing(self):
        assert TransferModel().transfer_time_s(0) == 0.0

    def test_linear_in_size(self):
        model = TransferModel(fixed_latency_s=1e-6,
                              bandwidth_bytes_per_s=1e9)
        assert model.transfer_time_s(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_unified_memory_is_free(self):
        model = TransferModel.unified()
        assert model.transfer_time_s(1 << 30) == 0.0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            TransferModel().transfer_time_s(-1)


class TestQoSRequirement:
    def test_from_frame_rate(self):
        req = QoSRequirement.from_frame_rate(60.0, instructions=1_000_000)
        assert req.deadline_s == pytest.approx(1 / 60)

    @pytest.mark.parametrize("kwargs", [
        {"deadline_s": 0.0, "instructions": 1},
        {"deadline_s": 1.0, "instructions": 0},
        {"deadline_s": 1.0, "instructions": 1, "queueing_s": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QoSRequirement(**kwargs)

    def test_bad_frame_rate(self):
        with pytest.raises(ValueError):
            QoSRequirement.from_frame_rate(0.0, instructions=10)


class TestTranslation:
    def test_basic_formula(self):
        """IPC = insts / (freq x time): 1.216e9 insts in 1 s at 1216 MHz -> 1."""
        req = QoSRequirement(deadline_s=1.0, instructions=1_216_000_000)
        ipc = translate_qos_goal(req, core_freq_mhz=1216.0,
                                 transfers=TransferModel.unified())
        assert ipc == pytest.approx(1.0)

    def test_transfer_time_shrinks_budget(self):
        req = QoSRequirement(deadline_s=1e-3, instructions=1_000_000,
                             input_bytes=6_000_000)
        free = translate_qos_goal(
            QoSRequirement(deadline_s=1e-3, instructions=1_000_000),
            core_freq_mhz=1000.0, transfers=TransferModel.unified())
        taxed = translate_qos_goal(
            req, core_freq_mhz=1000.0,
            transfers=TransferModel(fixed_latency_s=0,
                                    bandwidth_bytes_per_s=12e9))
        assert taxed > free  # less time -> higher required IPC

    def test_queueing_counts_against_budget(self):
        base = QoSRequirement(deadline_s=1e-3, instructions=1_000_000)
        queued = QoSRequirement(deadline_s=1e-3, instructions=1_000_000,
                                queueing_s=5e-4)
        unified = TransferModel.unified()
        assert (translate_qos_goal(queued, 1000.0, unified)
                == pytest.approx(2 * translate_qos_goal(base, 1000.0, unified)))

    def test_unachievable_deadline_raises(self):
        req = QoSRequirement(deadline_s=1e-6, instructions=100,
                             queueing_s=2e-6)
        with pytest.raises(ValueError, match="exceed the deadline"):
            translate_qos_goal(req, 1000.0, TransferModel.unified())

    def test_sixty_fps_video_example(self):
        """A 60 FPS frame kernel of 20M instructions on the Table 1 GPU
        needs a very modest IPC — the headroom QoS sharing exploits."""
        req = QoSRequirement.from_frame_rate(60.0, instructions=20_000_000,
                                             input_bytes=8_000_000)
        ipc = translate_qos_goal(req, core_freq_mhz=1216.0)
        assert 0.9 < ipc < 2.0
