"""Tests for machine configurations, including the Table 1 check."""

import pytest

from repro.config import (
    FAST_GPU,
    GPUConfig,
    LatencyConfig,
    MemoryConfig,
    PAPER_GPU,
    PASCAL56_GPU,
    PreemptionConfig,
    SMConfig,
    preset,
)


class TestTable1:
    """PAPER_GPU must match Table 1 of the paper exactly."""

    def test_core_frequency(self):
        assert PAPER_GPU.core_freq_mhz == 1216.0

    def test_memory_frequency(self):
        assert PAPER_GPU.mem_freq_mhz == 7000.0

    def test_sm_count(self):
        assert PAPER_GPU.num_sms == 16

    def test_mc_count(self):
        assert PAPER_GPU.num_mcs == 4

    def test_scheduler_policy_is_gto(self):
        assert PAPER_GPU.scheduler_policy == "gto"

    def test_register_file(self):
        assert PAPER_GPU.sm.registers_bytes == 256 * 1024

    def test_shared_memory(self):
        assert PAPER_GPU.sm.shared_memory_bytes == 96 * 1024

    def test_thread_limit(self):
        assert PAPER_GPU.sm.max_threads == 2048

    def test_tb_limit(self):
        assert PAPER_GPU.sm.max_tbs == 32

    def test_warp_schedulers(self):
        assert PAPER_GPU.sm.warp_schedulers == 4

    def test_epoch_length_matches_section_41(self):
        assert PAPER_GPU.epoch_length == 10_000

    def test_idle_warp_samples_matches_section_41(self):
        assert PAPER_GPU.idle_warp_samples == 100


class TestPascal56:
    """Section 4.6: 56 SMs with two warp schedulers, rest as Table 1."""

    def test_sm_count(self):
        assert PASCAL56_GPU.num_sms == 56

    def test_two_warp_schedulers(self):
        assert PASCAL56_GPU.sm.warp_schedulers == 2

    def test_other_parameters_unchanged(self):
        assert PASCAL56_GPU.sm.max_threads == PAPER_GPU.sm.max_threads
        assert PASCAL56_GPU.num_mcs == PAPER_GPU.num_mcs


class TestFastPreset:
    def test_preserves_sm_to_mc_ratio(self):
        assert (FAST_GPU.num_sms / FAST_GPU.num_mcs
                == PAPER_GPU.num_sms / PAPER_GPU.num_mcs)

    def test_keeps_per_sm_shape(self):
        assert FAST_GPU.sm.warp_schedulers == PAPER_GPU.sm.warp_schedulers
        assert FAST_GPU.sm.max_threads == PAPER_GPU.sm.max_threads


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GPUConfig(num_sms=0)

    def test_rejects_zero_mcs(self):
        with pytest.raises(ValueError):
            GPUConfig(num_mcs=0)

    def test_rejects_bad_scheduler(self):
        with pytest.raises(ValueError):
            GPUConfig(scheduler_policy="fifo")

    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(ValueError):
            GPUConfig(epoch_length=0)

    def test_scaled_returns_modified_copy(self):
        modified = PAPER_GPU.scaled(num_sms=8)
        assert modified.num_sms == 8
        assert PAPER_GPU.num_sms == 16
        assert modified.sm == PAPER_GPU.sm


class TestSMConfig:
    def test_max_warps(self):
        assert SMConfig().max_warps == 64

    def test_max_warps_scales_with_threads(self):
        assert SMConfig(max_threads=1024).max_warps == 32


class TestPreemptionConfig:
    def test_eviction_cost_scales_with_context(self):
        config = PreemptionConfig(drain_cycles=100, bytes_per_cycle=128)
        assert config.eviction_cycles(0) == 100
        assert config.eviction_cycles(1280) == 110

    def test_disabled_preemption_is_free(self):
        config = PreemptionConfig(enabled=False)
        assert config.eviction_cycles(1 << 20) == 0


class TestPresetLookup:
    def test_known_presets(self):
        assert preset("paper") is PAPER_GPU
        assert preset("pascal56") is PASCAL56_GPU
        assert preset("fast") is FAST_GPU

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset("turbo")


class TestLatencyConfig:
    def test_memory_hierarchy_latencies_increase(self):
        lat = LatencyConfig()
        assert lat.alu < lat.l1_hit < lat.l2_hit < lat.dram

    def test_defaults_positive(self):
        lat = LatencyConfig()
        for field in ("alu", "sfu", "shared_mem", "l1_hit", "l2_hit",
                      "dram", "interconnect"):
            assert getattr(lat, field) > 0


class TestMemoryConfig:
    def test_default_line_size(self):
        assert MemoryConfig().line_size == 128

    def test_caches_fit_geometry(self):
        mem = MemoryConfig()
        assert mem.l1_size % (mem.l1_assoc * mem.line_size) == 0
        assert mem.l2_slice_size % (mem.l2_assoc * mem.line_size) == 0


class TestConfigRoundTrip:
    """asdict -> gpu_config_from_dict must be lossless (resume depends on
    rebuilding the exact machine from the experiment store's grid)."""

    def test_round_trip_every_preset(self):
        import dataclasses

        from repro.config import gpu_config_from_dict

        for gpu in (PAPER_GPU, PASCAL56_GPU, FAST_GPU):
            rebuilt = gpu_config_from_dict(dataclasses.asdict(gpu))
            assert rebuilt == gpu

    def test_round_trip_non_default_machine(self):
        import dataclasses

        from repro.config import gpu_config_from_dict

        gpu = FAST_GPU.scaled(num_sms=2, engine_core="batch")
        assert gpu_config_from_dict(dataclasses.asdict(gpu)) == gpu

    def test_unknown_keys_fail_loudly(self):
        import dataclasses

        from repro.config import gpu_config_from_dict

        payload = dataclasses.asdict(FAST_GPU)
        payload["warp_width"] = 64
        with pytest.raises(TypeError):
            gpu_config_from_dict(payload)
