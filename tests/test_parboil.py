"""Tests for the Parboil workload registry."""

import pytest

from repro.config import SMConfig
from repro.kernels import (
    COMPUTE_INTENSIVE,
    MEMORY_INTENSIVE,
    PARBOIL,
    PARBOIL_NAMES,
    get_kernel,
    intensity_class,
    pair_class,
)


class TestRegistry:
    def test_ten_benchmarks(self):
        """Section 4.1: 10 Parboil benchmarks (bfs excluded)."""
        assert len(PARBOIL_NAMES) == 10
        assert "bfs" not in PARBOIL_NAMES

    def test_expected_names(self):
        assert set(PARBOIL_NAMES) == {
            "cutcp", "histo", "lbm", "mri-gridding", "mri-q",
            "sad", "sgemm", "spmv", "stencil", "tpacf",
        }

    def test_get_kernel_roundtrip(self):
        for name in PARBOIL_NAMES:
            assert get_kernel(name).name == name

    def test_get_kernel_unknown(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_kernel("bfs")

    def test_names_sorted(self):
        assert list(PARBOIL_NAMES) == sorted(PARBOIL_NAMES)


class TestIntensityClasses:
    def test_five_five_split(self):
        assert len(COMPUTE_INTENSIVE) == 5
        assert len(MEMORY_INTENSIVE) == 5

    def test_published_classification(self):
        assert set(COMPUTE_INTENSIVE) == {"cutcp", "mri-q", "sad", "sgemm",
                                          "tpacf"}
        assert set(MEMORY_INTENSIVE) == {"histo", "lbm", "mri-gridding",
                                         "spmv", "stencil"}

    def test_intensity_class_letters(self):
        assert intensity_class("sgemm") == "C"
        assert intensity_class("lbm") == "M"

    def test_pair_class_is_order_independent(self):
        assert pair_class("sgemm", "lbm") == "C+M"
        assert pair_class("lbm", "sgemm") == "C+M"
        assert pair_class("sgemm", "cutcp") == "C+C"
        assert pair_class("lbm", "spmv") == "M+M"


class TestSpecSanity:
    """Every benchmark model must be hostable on the Table 1 SM."""

    @pytest.mark.parametrize("name", PARBOIL_NAMES)
    def test_at_least_two_tbs_fit(self, name):
        # Fine-grained sharing is meaningless if a single TB fills the SM.
        assert get_kernel(name).max_tbs_per_sm(SMConfig()) >= 2

    @pytest.mark.parametrize("name", PARBOIL_NAMES)
    def test_memory_kernels_have_bigger_footprints(self, name):
        spec = get_kernel(name)
        if spec.intensity == "memory":
            assert spec.memory.footprint_bytes >= 64 * 1024 * 1024
        else:
            assert spec.memory.footprint_bytes <= 32 * 1024 * 1024

    @pytest.mark.parametrize("name", PARBOIL_NAMES)
    def test_memory_kernels_have_memory_heavy_mix(self, name):
        spec = get_kernel(name)
        global_fraction = spec.mix.ldg + spec.mix.stg
        if spec.intensity == "memory":
            assert global_fraction >= 0.3
        else:
            assert global_fraction <= 0.25

    def test_histo_is_short_running(self):
        """Section 4.2 attributes histo's poor QoSreach to short kernels."""
        histo = get_kernel("histo")
        others = [get_kernel(name) for name in PARBOIL_NAMES
                  if name != "histo"]
        histo_work = histo.body_length * histo.iterations_per_tb
        assert all(histo_work <= s.body_length * s.iterations_per_tb
                   for s in others)

    def test_sgemm_and_cutcp_use_barriers(self):
        assert get_kernel("sgemm").mix.barrier_per_iteration
        assert get_kernel("cutcp").mix.barrier_per_iteration

    def test_mri_q_and_tpacf_use_sfu(self):
        assert get_kernel("mri-q").mix.sfu > 0.1
        assert get_kernel("tpacf").mix.sfu > 0.1

    def test_irregular_kernels_poorly_coalesced(self):
        for name in ("spmv", "mri-gridding"):
            assert get_kernel(name).memory.coalesced_fraction <= 0.5
        for name in ("lbm", "stencil"):
            assert get_kernel(name).memory.coalesced_fraction >= 0.8
