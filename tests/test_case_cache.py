"""Tests for the persistent case cache (repro.harness.cache)."""

import pytest

from repro.config import FAST_GPU
from repro.harness.cache import (CaseCache, case_key, code_salt, isolated_key,
                                 record_from_dict, record_to_dict)
from repro.harness.runner import CaseRunner

CYCLES = 4000
NAMES = ("sgemm", "lbm")
FLAGS = (True, False)
GOALS = (0.5, None)


def make_record():
    return CaseRunner(FAST_GPU, CYCLES).run_pair("sgemm", "lbm", 0.5,
                                                 "rollover")


class TestKeying:
    def test_stable(self):
        first = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover", CYCLES, 100)
        second = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover", CYCLES, 100)
        assert first == second

    @pytest.mark.parametrize("override", [
        dict(gpu=FAST_GPU.scaled(num_sms=8)),
        dict(names=("sgemm", "spmv")),
        dict(flags=(True, True)),
        dict(goals=(0.65, None)),
        dict(policy="spart"),
        dict(cycles=CYCLES + 1),
        dict(warmup=101),
    ])
    def test_any_component_changes_key(self, override):
        base = dict(gpu=FAST_GPU, names=NAMES, flags=FLAGS, goals=GOALS,
                    policy="rollover", cycles=CYCLES, warmup=100)
        varied = dict(base, **override)
        assert (case_key(base["gpu"], base["names"], base["flags"],
                         base["goals"], base["policy"], base["cycles"],
                         base["warmup"])
                != case_key(varied["gpu"], varied["names"], varied["flags"],
                            varied["goals"], varied["policy"], varied["cycles"],
                            varied["warmup"]))

    def test_isolated_key_distinct_from_case_key(self):
        assert (isolated_key(FAST_GPU, "sgemm", CYCLES, 100)
                != case_key(FAST_GPU, ("sgemm",), (False,), (None,), "smk",
                            CYCLES, 100))

    def test_code_salt_is_stable_hex(self):
        assert code_salt() == code_salt()
        int(code_salt(), 16)


class TestSerialisation:
    def test_record_round_trips(self):
        record = make_record()
        assert record_from_dict(record_to_dict(record)) == record

    def test_round_trip_through_json(self):
        import json
        record = make_record()
        rebuilt = record_from_dict(json.loads(json.dumps(
            record_to_dict(record))))
        assert rebuilt == record
        assert rebuilt.kernels[0].ipc == record.kernels[0].ipc


class TestStore:
    def test_put_get_survives_reopen(self, tmp_path):
        record = make_record()
        key = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover", CYCLES, 100)
        CaseCache(tmp_path).put_case(key, record)
        assert CaseCache(tmp_path).get_case(key) == record

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = CaseCache(tmp_path)
        assert cache.get_case("no-such-key") is None
        assert cache.misses == 1

    def test_isolated_round_trip(self, tmp_path):
        key = isolated_key(FAST_GPU, "sgemm", CYCLES, 100)
        CaseCache(tmp_path).put_isolated(key, 123.5)
        assert CaseCache(tmp_path).get_isolated(key) == 123.5

    def test_clear(self, tmp_path):
        cache = CaseCache(tmp_path)
        cache.put_isolated("k", 1.0)
        assert cache.clear() == 1
        assert len(CaseCache(tmp_path)) == 0

    def test_stats_shape(self, tmp_path):
        cache = CaseCache(tmp_path)
        cache.put_isolated("k", 1.0)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["isolated"] == 1
        assert stats["cases"] == 0

    def test_torn_write_tolerated(self, tmp_path):
        cache = CaseCache(tmp_path)
        cache.put_isolated("k", 1.0)
        with cache.path.open("a") as stream:
            stream.write('{"key": "torn", "kind')
        reopened = CaseCache(tmp_path)
        assert reopened.get_isolated("k") == 1.0
        assert len(reopened) == 1


class TestRunnerIntegration:
    def test_warm_runner_never_simulates(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner_module

        warm_cache = CaseCache(tmp_path)
        cold = CaseRunner(FAST_GPU, CYCLES, cache=warm_cache)
        record = cold.run_pair("sgemm", "lbm", 0.5, "rollover")

        class Explodes:
            def __init__(self, *args, **kwargs):
                raise AssertionError("cache miss caused a simulation")

        monkeypatch.setattr(runner_module, "GPUSimulator", Explodes)
        warm = CaseRunner(FAST_GPU, CYCLES, cache=CaseCache(tmp_path))
        assert warm.run_pair("sgemm", "lbm", 0.5, "rollover") == record
        assert warm.isolated_ipc("sgemm") == cold.isolated_ipc("sgemm")

    def test_different_case_still_misses(self, tmp_path):
        cache = CaseCache(tmp_path)
        runner = CaseRunner(FAST_GPU, CYCLES, cache=cache)
        runner.run_pair("sgemm", "lbm", 0.5, "rollover")
        hits_before = cache.hits
        runner.run_pair("sgemm", "lbm", 0.65, "rollover")
        assert cache.hits == hits_before  # new goal: no false hit


class TestTelemetryKeying:
    def test_telemetry_flag_changes_key(self):
        lean = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover", CYCLES,
                        100, telemetry=False)
        full = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover", CYCLES,
                        100, telemetry=True)
        assert lean != full

    def test_default_is_lean(self):
        implicit = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover",
                            CYCLES, 100)
        explicit = case_key(FAST_GPU, NAMES, FLAGS, GOALS, "rollover",
                            CYCLES, 100, telemetry=False)
        assert implicit == explicit

    def test_salt_covers_policy_and_telemetry_modules(self):
        # The contract and the recorder both shape cached records; editing
        # either must invalidate the store.
        from repro.harness.cache import salted_paths
        paths = salted_paths()
        assert "sim/policy.py" in paths
        assert "sim/telemetry.py" in paths
        assert "harness/runner.py" in paths

    def test_salt_covers_the_cache_module_itself(self):
        # Keying and record (de)serialisation live in harness/cache.py;
        # editing them redefines what a stored entry means, so the salt
        # must cover the module (surfaced by `repro lint` rule SALT001).
        from repro.harness.cache import salted_paths
        assert "harness/cache.py" in salted_paths()

    def test_telemetry_record_round_trips(self):
        record = CaseRunner(FAST_GPU, CYCLES, telemetry=True).run_pair(
            "sgemm", "lbm", 0.5, "rollover")
        assert record.telemetry
        assert record_from_dict(record_to_dict(record)) == record

    def test_telemetry_record_round_trips_through_json(self):
        import json
        record = CaseRunner(FAST_GPU, CYCLES, telemetry=True).run_pair(
            "sgemm", "lbm", 0.5, "rollover")
        rehydrated = record_from_dict(
            json.loads(json.dumps(record_to_dict(record))))
        assert rehydrated == record
