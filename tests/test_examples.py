"""Integration smoke tests: every shipped example must run end to end.

Each example's run length is monkeypatched down so the whole module stays
fast; the point is exercising the public API paths the examples document.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    def test_quickstart_present(self):
        assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    module = load_example(name)
    if hasattr(module, "CYCLES"):
        monkeypatch.setattr(module, "CYCLES", 4000)
    module.main()
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something


def test_quickstart_reports_goal_outcome(capsys, monkeypatch):
    module = load_example("quickstart")
    monkeypatch.setattr(module, "CYCLES", 6000)
    module.main()
    out = capsys.readouterr().out
    assert "REACHED" in out or "MISSED" in out
    assert "isolated" in out.lower()


def test_datacenter_trio_compares_policies(capsys, monkeypatch):
    module = load_example("datacenter_trio")
    monkeypatch.setattr(module, "CYCLES", 6000)
    module.main()
    out = capsys.readouterr().out
    assert "Spart" in out
    assert "Rollover" in out
