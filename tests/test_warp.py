"""Tests for warp state and address generation."""

from repro.kernels.spec import KernelSpec, MemoryPattern
from repro.sim.kernel_runtime import KernelRuntime
from repro.sim.tb import ThreadBlock
from repro.sim.warp import Warp, WarpState


def make_runtime(kernel_idx=0, **memory_kwargs):
    spec = KernelSpec(name="warp-test",
                      memory=MemoryPattern(**memory_kwargs))
    return KernelRuntime(kernel_idx, spec, line_size=128)


def make_warp(runtime, tb_id=0, warp_id=0):
    tb = ThreadBlock(tb_id, runtime.kernel_idx, runtime.spec, 0)
    return Warp(runtime.kernel_idx, tb, warp_id,
                seed=runtime.warp_seed(tb_id, warp_id),
                start_cursor=runtime.start_cursor(tb_id, warp_id))


class TestLCG:
    def test_deterministic_sequence(self):
        runtime = make_runtime()
        first = make_warp(runtime)
        second = make_warp(runtime)
        assert [first.next_random() for _ in range(10)] == \
               [second.next_random() for _ in range(10)]

    def test_values_are_32bit(self):
        warp = make_warp(make_runtime())
        for _ in range(100):
            value = warp.next_random()
            assert 0 <= value < 1 << 32

    def test_different_warps_different_streams(self):
        runtime = make_runtime()
        first = make_warp(runtime, warp_id=0)
        second = make_warp(runtime, warp_id=1)
        assert [first.next_random() for _ in range(5)] != \
               [second.next_random() for _ in range(5)]


class TestGlobalLines:
    def test_fully_coalesced_streams_single_lines(self):
        runtime = make_runtime(coalesced_fraction=1.0, reuse_fraction=0.0)
        warp = make_warp(runtime)
        previous = None
        for _ in range(20):
            lines = warp.global_lines(runtime)
            assert len(lines) == 1
            if previous is not None:
                # Streaming: consecutive lines (modulo wraparound).
                assert lines[0] == previous + 1 or lines[0] == runtime.base_line
            previous = lines[0]

    def test_full_reuse_repeats_last_line(self):
        runtime = make_runtime(coalesced_fraction=1.0, reuse_fraction=1.0)
        warp = make_warp(runtime)
        first = warp.global_lines(runtime)
        for _ in range(10):
            assert warp.global_lines(runtime) == first

    def test_uncoalesced_fans_out(self):
        runtime = make_runtime(coalesced_fraction=0.0, reuse_fraction=0.0,
                               uncoalesced_degree=6)
        warp = make_warp(runtime)
        lines = warp.global_lines(runtime)
        assert len(lines) == 6

    def test_lines_within_kernel_footprint(self):
        runtime = make_runtime(footprint_bytes=1024 * 1024,
                               coalesced_fraction=0.5, reuse_fraction=0.1,
                               uncoalesced_degree=4)
        warp = make_warp(runtime)
        low = runtime.base_line
        high = runtime.base_line + runtime.footprint_lines
        for _ in range(200):
            for line in warp.global_lines(runtime):
                assert low <= line < high

    def test_kernels_have_disjoint_address_spaces(self):
        first = make_runtime(kernel_idx=0)
        second = make_runtime(kernel_idx=1)
        span = first.base_line + first.footprint_lines
        assert second.base_line >= span


class TestWarpState:
    def test_initial_state(self):
        warp = make_warp(make_runtime())
        assert warp.state == WarpState.RUNNING
        assert warp.pc == 0
        assert warp.ready_at == 0

    def test_state_names(self):
        assert WarpState.NAMES[WarpState.RUNNING] == "RUNNING"
        assert WarpState.NAMES[WarpState.DONE] == "DONE"

    def test_repr_mentions_state(self):
        warp = make_warp(make_runtime())
        assert "RUNNING" in repr(warp)

    def test_zero_seed_replaced(self):
        tb = ThreadBlock(0, 0, KernelSpec(name="s"), 0)
        warp = Warp(0, tb, 0, seed=0, start_cursor=0)
        assert warp.lcg != 0  # an all-zero LCG would never advance
