"""Tests for experiment presets and workload enumeration."""

import pytest

from repro.harness.presets import (
    FAST_PRESET,
    PAPER_PRESET,
    all_pairs,
    all_trios,
    experiment_preset,
)
from repro.kernels import PARBOIL_NAMES, intensity_class


class TestPairs:
    def test_ninety_pairs(self):
        """Section 4.1: 10 x 9 = 90 ordered pairs."""
        pairs = all_pairs()
        assert len(pairs) == 90

    def test_no_self_pairs(self):
        assert all(qos != nonqos for qos, nonqos in all_pairs())

    def test_every_ordering_present(self):
        pairs = set(all_pairs())
        assert ("sgemm", "lbm") in pairs
        assert ("lbm", "sgemm") in pairs


class TestTrios:
    def test_sixty_of_120(self):
        trios = all_trios(limit=60)
        assert len(trios) == 60
        assert len(set(trios)) == 60

    def test_members_distinct(self):
        for trio in all_trios(limit=60):
            assert len(set(trio)) == 3

    def test_limit_above_total(self):
        assert len(all_trios(limit=1000)) == 120

    def test_deterministic(self):
        assert all_trios(limit=60) == all_trios(limit=60)


class TestPaperPreset:
    def test_matches_section_41(self):
        assert PAPER_PRESET.cycles == 2_000_000
        assert len(PAPER_PRESET.pairs) == 90
        assert len(PAPER_PRESET.trios) == 60
        assert PAPER_PRESET.pair_goals == tuple(
            pytest.approx(0.5 + 0.05 * i) for i in range(10))
        assert PAPER_PRESET.trio2_goals[0] == 0.25
        assert PAPER_PRESET.trio2_goals[-1] == 0.70
        assert PAPER_PRESET.gpu.num_sms == 16
        assert PAPER_PRESET.gpu_many_sm.num_sms == 56


class TestFastPreset:
    def test_pair_subset_is_class_balanced(self):
        classes = {f"{intensity_class(q)}+{intensity_class(n)}"
                   for q, n in FAST_PRESET.pairs}
        assert classes == {"C+C", "C+M", "M+C", "M+M"}

    def test_subset_members_are_valid_pairs(self):
        valid = set(all_pairs())
        assert all(pair in valid for pair in FAST_PRESET.pairs)

    def test_many_sm_config_has_fewer_schedulers(self):
        assert (FAST_PRESET.gpu_many_sm.sm.warp_schedulers
                < FAST_PRESET.gpu.sm.warp_schedulers)
        assert FAST_PRESET.gpu_many_sm.num_sms > FAST_PRESET.gpu.num_sms

    def test_describe(self):
        text = FAST_PRESET.describe()
        assert "fast" in text
        assert str(len(FAST_PRESET.pairs)) in text


class TestLookup:
    def test_known(self):
        assert experiment_preset("paper") is PAPER_PRESET
        assert experiment_preset("fast") is FAST_PRESET

    def test_smoke_exists(self):
        smoke = experiment_preset("smoke")
        assert smoke.cycles < FAST_PRESET.cycles

    def test_unknown(self):
        with pytest.raises(ValueError):
            experiment_preset("slow")
