"""Shared fixtures for the test suite.

``tiny_gpu`` is deliberately small (2 SMs, 1 MC, 500-cycle epochs) so
integration tests run in milliseconds while still exercising multi-SM and
multi-scheduler paths.
"""

from __future__ import annotations

import pytest

from repro.config import FAST_GPU, GPUConfig, MemoryConfig, SMConfig
from repro.kernels import get_kernel
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.sim import GPUSimulator, LaunchedKernel


@pytest.fixture
def tiny_gpu() -> GPUConfig:
    return GPUConfig(
        num_sms=2,
        num_mcs=1,
        epoch_length=500,
        idle_warp_samples=10,
        sm=SMConfig(warp_schedulers=2),
        memory=MemoryConfig(l2_slice_size=128 * 1024),
    )


@pytest.fixture
def fast_gpu() -> GPUConfig:
    return FAST_GPU


@pytest.fixture
def compute_spec() -> KernelSpec:
    """A small compute-bound kernel for unit tests."""
    return KernelSpec(
        name="unit-compute",
        threads_per_tb=64,
        regs_per_thread=16,
        smem_per_tb_bytes=0,
        mix=InstructionMix(alu=0.9, sfu=0.0, ldg=0.05, stg=0.05, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1024 * 1024),
        ilp=0.8,
        body_length=20,
        iterations_per_tb=3,
    )


@pytest.fixture
def memory_spec() -> KernelSpec:
    """A small memory-bound kernel for unit tests."""
    return KernelSpec(
        name="unit-memory",
        threads_per_tb=64,
        regs_per_thread=16,
        smem_per_tb_bytes=0,
        mix=InstructionMix(alu=0.4, sfu=0.0, ldg=0.45, stg=0.15, lds=0.0),
        memory=MemoryPattern(footprint_bytes=64 * 1024 * 1024,
                             coalesced_fraction=0.5, uncoalesced_degree=4,
                             reuse_fraction=0.05),
        ilp=0.3,
        body_length=20,
        iterations_per_tb=3,
        intensity="memory",
    )


@pytest.fixture
def barrier_spec() -> KernelSpec:
    """A kernel whose loop body ends in a TB-wide barrier."""
    return KernelSpec(
        name="unit-barrier",
        threads_per_tb=64,
        regs_per_thread=16,
        smem_per_tb_bytes=512,
        mix=InstructionMix(alu=0.8, sfu=0.0, ldg=0.1, stg=0.0, lds=0.1,
                           barrier_per_iteration=True),
        memory=MemoryPattern(footprint_bytes=1024 * 1024),
        body_length=12,
        iterations_per_tb=2,
    )


def run_isolated(spec: KernelSpec, gpu: GPUConfig, cycles: int = 4000):
    """Run one kernel alone; returns (simulator, result)."""
    sim = GPUSimulator(gpu, [LaunchedKernel(spec)])
    sim.run(cycles)
    return sim, sim.result()


@pytest.fixture
def parboil_sgemm() -> KernelSpec:
    return get_kernel("sgemm")
