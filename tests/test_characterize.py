"""Tests for workload characterisation — including the calibration
regression: every Parboil model must measure in its declared class."""

import pytest

from repro.config import FAST_GPU, GPUConfig, SMConfig
from repro.kernels import PARBOIL
from repro.kernels.characterize import (
    KernelProfile,
    characterize,
    characterize_suite,
    format_profiles,
)
from repro.kernels.synthetic import compute_kernel, streaming_kernel

TINY = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                 sm=SMConfig(warp_schedulers=2))


def profile(name="p", declared="compute", bw=0.3, **kwargs):
    defaults = dict(ipc=100.0, peak_fraction=0.5, l1_hit_rate=0.5,
                    l2_hit_rate=0.5, dram_lines_per_kcycle=10.0,
                    tlp_half_fraction=0.8)
    defaults.update(kwargs)
    return KernelProfile(name=name, declared_intensity=declared,
                         bandwidth_utilisation=bw, **defaults)


class TestClassification:
    def test_low_bandwidth_is_compute(self):
        assert profile(bw=0.3).measured_intensity == "C"

    def test_high_bandwidth_is_memory(self):
        assert profile(bw=0.9).measured_intensity == "M"

    def test_consistency_flag(self):
        assert profile(declared="compute", bw=0.3).classification_consistent
        assert not profile(declared="compute", bw=0.9).classification_consistent
        assert profile(declared="memory", bw=0.9).classification_consistent


class TestCharacterize:
    def test_compute_archetype_profile(self):
        result = characterize(compute_kernel("char-c"), TINY, cycles=4000)
        assert result.measured_intensity == "C"
        assert result.peak_fraction > 0.5
        assert 0.0 <= result.l1_hit_rate <= 1.0

    def test_streaming_archetype_profile(self):
        # Bandwidth classification needs the paper's 4:1 SM:MC ratio — on a
        # 2:1 machine a single kernel is MSHR-limited before it can saturate
        # the controller (Little's law), which is itself realistic.
        result = characterize(streaming_kernel("char-m"), FAST_GPU,
                              cycles=6000)
        assert result.measured_intensity == "M"
        assert result.bandwidth_utilisation > 0.6
        # Memory-bound kernels lose nothing at half TLP.
        assert result.tlp_half_fraction > 0.7

    def test_starved_tlp_costs_throughput(self):
        """Deep TLP cuts must cost throughput.  (Halving TLP alone can even
        help high-reuse kernels by easing L1 pressure, so the sensitivity
        check uses a 10% fill.)"""
        from repro.kernels.characterize import _run
        chain = compute_kernel("char-chain", ilp=0.05)
        full = _run(chain, FAST_GPU, cycles=6000).kernels[0].ipc
        starved = _run(chain, FAST_GPU, cycles=6000, fill=0.1).kernels[0].ipc
        assert starved < 0.8 * full


@pytest.mark.slow
class TestParboilCalibration:
    def test_every_model_measures_in_declared_class(self):
        """The calibration regression behind Figure 7's C/M split."""
        profiles = characterize_suite(cycles=16_000)
        bad = [p.name for p in profiles if not p.classification_consistent]
        assert not bad, f"misclassified models: {bad}"

    def test_compute_models_far_faster(self):
        profiles = {p.name: p for p in characterize_suite(cycles=8_000)}
        slowest_compute = min(
            p.ipc for p in profiles.values()
            if p.declared_intensity == "compute")
        fastest_memory = max(
            p.ipc for p in profiles.values()
            if p.declared_intensity == "memory")
        assert slowest_compute > 2 * fastest_memory


class TestFormat:
    def test_format_contains_all_rows(self):
        profiles = [profile(name=f"k{i}") for i in range(3)]
        text = format_profiles(profiles)
        for i in range(3):
            assert f"k{i}" in text
