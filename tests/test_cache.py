"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache


def make_cache(sets=4, assoc=2, line_size=128):
    return Cache(sets * assoc * line_size, assoc, line_size)


class TestBasics:
    def test_geometry(self):
        cache = Cache(24 * 1024, 6, 128)
        assert cache.num_sets == 32
        assert cache.assoc == 6

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            Cache(0, 4, 128)
        with pytest.raises(ValueError):
            Cache(64, 4, 128)  # smaller than one set

    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(42) is False
        assert cache.access(42) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_lines_in_same_set(self):
        cache = make_cache(sets=4, assoc=2)
        assert cache.access(0) is False
        assert cache.access(4) is False  # same set (line % 4), second way
        assert cache.access(0) is True
        assert cache.access(4) is True


class TestLRU:
    def test_eviction_order(self):
        cache = make_cache(sets=1, assoc=2, line_size=128)
        cache.access(0)
        cache.access(1)
        cache.access(2)          # evicts 0 (LRU)
        assert cache.probe(0) is False
        assert cache.probe(1) is True
        assert cache.probe(2) is True

    def test_touch_refreshes_recency(self):
        cache = make_cache(sets=1, assoc=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)          # 1 becomes LRU
        cache.access(2)          # evicts 1
        assert cache.probe(0) is True
        assert cache.probe(1) is False

    def test_probe_does_not_update_lru_or_counters(self):
        cache = make_cache(sets=1, assoc=2)
        cache.access(0)
        cache.access(1)
        hits, misses = cache.hits, cache.misses
        cache.probe(0)           # 0 stays LRU despite the probe
        assert (cache.hits, cache.misses) == (hits, misses)
        cache.access(2)          # evicts 0, not 1
        assert cache.probe(0) is False
        assert cache.probe(1) is True


class TestFlushAndStats:
    def test_flush_empties(self):
        cache = make_cache()
        for line in range(8):
            cache.access(line)
        cache.flush()
        assert all(cache.probe(line) is False for line in range(8))

    def test_hit_rate(self):
        cache = make_cache()
        assert cache.hit_rate == 0.0
        cache.access(1)
        cache.access(1)
        assert cache.hit_rate == 0.5
        assert cache.accesses == 2


class TestProperties:
    @given(lines=st.lists(st.integers(min_value=0, max_value=200),
                          min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_sets_never_exceed_associativity(self, lines):
        cache = make_cache(sets=4, assoc=3)
        for line in lines:
            cache.access(line)
        assert all(len(line_set) <= 3 for line_set in cache.sets)

    @given(lines=st.lists(st.integers(min_value=0, max_value=200),
                          min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_lines_map_to_correct_set(self, lines):
        cache = make_cache(sets=4, assoc=3)
        for line in lines:
            cache.access(line)
        for set_index, line_set in enumerate(cache.sets):
            assert all(line % 4 == set_index for line in line_set)

    @given(lines=st.lists(st.integers(min_value=0, max_value=50),
                          min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_immediate_rereference_always_hits(self, lines):
        cache = make_cache(sets=8, assoc=4)
        for line in lines:
            cache.access(line)
            assert cache.access(line) is True
