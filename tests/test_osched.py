"""Tests for the OS-level dispatcher (periodic jobs over the QoS GPU)."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.osched import Application, GPUServer
from repro.osched.dispatcher import _cycle_reaching
from repro.qos import TransferModel


def light_spec(name="frame-kernel"):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.85, sfu=0.0, ldg=0.1, stg=0.05, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 22),
        ilp=0.8, body_length=16, iterations_per_tb=3)


def make_gpu():
    return GPUConfig(num_sms=2, num_mcs=1, epoch_length=400,
                     idle_warp_samples=8, sm=SMConfig(warp_schedulers=2))


def seconds_for_cycles(gpu, cycles):
    return cycles / (gpu.core_freq_mhz * 1e6)


class TestApplication:
    def test_validation(self):
        with pytest.raises(ValueError):
            Application("a", light_spec(), period_s=0.0,
                        instructions_per_job=10)
        with pytest.raises(ValueError):
            Application("a", light_spec(), period_s=1.0,
                        instructions_per_job=0)

    def test_kernel_by_name(self):
        app = Application("a", "sgemm", period_s=1.0,
                          instructions_per_job=100)
        assert app.spec.name == "sgemm"

    def test_requirement_carries_deadline(self):
        app = Application("a", light_spec(), period_s=0.25,
                          instructions_per_job=100, input_bytes=64)
        requirement = app.requirement()
        assert requirement.deadline_s == 0.25
        assert requirement.input_bytes == 64


class TestGPUServer:
    def test_rejects_duplicate_names(self):
        server = GPUServer(make_gpu())
        server.submit(Application("a", light_spec("k1"), 1.0, 100))
        with pytest.raises(ValueError, match="already submitted"):
            server.submit(Application("a", light_spec("k2"), 1.0, 100))

    def test_rejects_duplicate_kernels(self):
        server = GPUServer(make_gpu())
        server.submit(Application("a", light_spec("k1"), 1.0, 100))
        with pytest.raises(ValueError, match="already in use"):
            server.submit(Application("b", light_spec("k1"), 1.0, 100))

    def test_run_requires_apps_and_time(self):
        server = GPUServer(make_gpu())
        with pytest.raises(ValueError):
            server.run(1.0)
        server.submit(Application("a", light_spec(), 1.0, 100))
        with pytest.raises(ValueError):
            server.run(0.0)

    def test_feasible_deadlines_met(self):
        gpu = make_gpu()
        server = GPUServer(gpu, transfers=TransferModel.unified())
        window_s = seconds_for_cycles(gpu, 12_000)
        period = window_s / 10
        # A very modest job: ~2 IPC needed on a machine delivering >100.
        insts = int(2 * period * gpu.core_freq_mhz * 1e6)
        server.submit(Application("video", light_spec("qos-k"), period, insts))
        server.submit(Application("batch", light_spec("batch-k"), period,
                                  insts, qos=False))
        report = server.run(window_s)
        video = report.app("video")
        assert video.jobs_due == 10
        assert video.drop_rate <= 0.2  # slack only for the first warm-up job
        assert video.ipc_goal == pytest.approx(2.0, rel=0.01)

    def test_infeasible_deadlines_drop(self):
        gpu = make_gpu()
        server = GPUServer(gpu, transfers=TransferModel.unified())
        window_s = seconds_for_cycles(gpu, 8_000)
        period = window_s / 8
        # Demands ~10x the machine's peak: every job must drop.
        insts = int(3000 * period * gpu.core_freq_mhz * 1e6)
        server.submit(Application("greedy", light_spec("qos-k"), period, insts))
        report = server.run(window_s)
        assert report.app("greedy").drop_rate > 0.8

    def test_best_effort_app_has_no_goal(self):
        gpu = make_gpu()
        server = GPUServer(gpu, transfers=TransferModel.unified())
        window_s = seconds_for_cycles(gpu, 6_000)
        server.submit(Application("be", light_spec("only-k"), window_s / 4,
                                  1000, qos=False))
        report = server.run(window_s)
        be = report.app("be")
        assert be.ipc_goal is None
        assert be.achieved_ipc > 0

    def test_unknown_app_lookup(self):
        gpu = make_gpu()
        server = GPUServer(gpu, transfers=TransferModel.unified())
        server.submit(Application("a", light_spec(), 1.0, 100))
        report = server.run(seconds_for_cycles(gpu, 2_000))
        with pytest.raises(KeyError):
            report.app("missing")


class TestCycleReaching:
    def test_interpolates_within_epoch(self):
        cycles = [0, 100, 200]
        retired = [0, 1000, 3000]
        assert _cycle_reaching(cycles, retired, 500) == pytest.approx(50.0)
        assert _cycle_reaching(cycles, retired, 2000) == pytest.approx(150.0)

    def test_exact_points(self):
        cycles = [0, 100]
        retired = [0, 1000]
        assert _cycle_reaching(cycles, retired, 1000) == pytest.approx(100.0)

    def test_unreachable_returns_none(self):
        assert _cycle_reaching([0, 100], [0, 10], 11) is None

    def test_flat_segment(self):
        cycles = [0, 100, 200]
        retired = [0, 1000, 1000]
        assert _cycle_reaching(cycles, retired, 1000) == pytest.approx(100.0)
