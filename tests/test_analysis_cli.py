"""`repro lint` CLI behavior: exit codes, baseline workflow, output formats."""

import json
import pathlib

from repro.analysis.cli import build_lint_parser, main as lint_main
from repro.cli import main as repro_main

REPO = pathlib.Path(__file__).resolve().parents[1]

DIRTY = "import time\nSTAMP = time.time()\n"
CLEAN = "def stamp(clock):\n    return clock()\n"


def project(tmp_path, source=DIRTY):
    target = tmp_path / "mod.py"
    target.write_text(source)
    return target


class TestParser:
    def test_defaults(self):
        args = build_lint_parser().parse_args([])
        assert args.paths == []
        assert not args.strict
        assert args.rules is None
        assert args.format == "human"

    def test_rules_accumulate(self):
        args = build_lint_parser().parse_args(
            ["--rule", "DET001", "--rule", "LAY001"])
        assert args.rules == ["DET001", "LAY001"]


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = project(tmp_path, CLEAN)
        assert lint_main([str(target)]) == 0
        assert lint_main(["--strict", str(target)]) == 0

    def test_findings_without_strict_exit_zero(self, tmp_path, capsys):
        target = project(tmp_path)
        assert lint_main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_findings_with_strict_exit_one(self, tmp_path, capsys):
        target = project(tmp_path)
        assert lint_main(["--strict", str(target)]) == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = project(tmp_path, CLEAN)
        assert lint_main(["--rule", "NOPE999", str(target)]) == 2
        err = capsys.readouterr().err
        assert "NOPE999" in err and "known rules" in err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "ghost.py")]) == 2

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        target = project(tmp_path, CLEAN)
        assert lint_main(["--baseline", str(tmp_path / "nope.json"),
                          str(target)]) == 2

    def test_rule_selection_limits_findings(self, tmp_path, capsys):
        target = project(tmp_path)
        # DET003 alone does not see the wall-clock read.
        assert lint_main(["--strict", "--rule", "DET003", str(target)]) == 0

    def test_noqa_keeps_strict_green(self, tmp_path, capsys):
        target = project(
            tmp_path, "import time\nSTAMP = time.time()  # repro: noqa\n")
        assert lint_main(["--strict", str(target)]) == 0
        err = capsys.readouterr().err
        assert "1 noqa-suppressed" in err


class TestBaselineWorkflow:
    def test_write_then_strict_passes_on_old_findings_only(self, tmp_path,
                                                           capsys):
        target = project(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--baseline", str(baseline), "--write-baseline",
                          str(target)]) == 0
        assert baseline.exists()

        # Grandfathered finding: strict stays green.
        assert lint_main(["--strict", "--baseline", str(baseline),
                          str(target)]) == 0

        # A *new* finding still fails strict while the old one stays
        # baselined.
        target.write_text(DIRTY + "import random\nPICK = random.random()\n")
        assert lint_main(["--strict", "--baseline", str(baseline),
                          str(target)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "(baselined)" in out  # the DET001 line is labelled

    def test_stale_entries_are_reported(self, tmp_path, capsys):
        target = project(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main(["--baseline", str(baseline), "--write-baseline",
                          str(target)]) == 0
        target.write_text(CLEAN)
        assert lint_main(["--strict", "--baseline", str(baseline),
                          str(target)]) == 0
        err = capsys.readouterr().err
        assert "no longer matched" in err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        target = project(tmp_path, CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99, "entries": []}')
        assert lint_main(["--baseline", str(baseline), str(target)]) == 2


class TestOutputFormats:
    def test_json_report(self, tmp_path, capsys):
        target = project(tmp_path)
        assert lint_main(["--format", "json", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 1
        assert payload["counts"]["modules"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET001"
        assert finding["line"] == 2
        assert not finding["baselined"]

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "FLOW001", "FLOAT001", "EFFECT001",
                        "LAY001", "SALT001", "SCHEMA001"):
            assert rule_id in out

    def test_summary_reports_flow_cache_split(self, tmp_path, capsys):
        target = project(tmp_path, CLEAN)
        assert lint_main([str(target)]) == 0
        err = capsys.readouterr().err
        assert "flow summaries: 1 computed, 0 cached" in err


class TestExplain:
    def test_explain_prints_doc_and_example_trace(self, capsys):
        assert lint_main(["--explain", "FLOW001"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("FLOW001  [error/project]")
        # The long-form doc ships an example source→sink trace.
        assert "wall-clock read time.time()" in out
        assert "identity sink" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert lint_main(["--explain", "effect002"]) == 0
        out = capsys.readouterr().out
        assert "POLICY_CONTEXT_ACTUATORS" in out

    def test_explain_falls_back_to_summary_for_syntactic_rules(self, capsys):
        assert lint_main(["--explain", "DET001"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("DET001  [error/module]")

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--explain", "NOPE999"]) == 2
        err = capsys.readouterr().err
        assert "NOPE999" in err and "known rules" in err

    def test_every_rule_is_explainable(self, capsys):
        from repro.analysis.core import all_rules
        for rule_id in sorted(all_rules()):
            assert lint_main(["--explain", rule_id]) == 0
            assert rule_id in capsys.readouterr().out


class TestDocsCatalogSync:
    def test_docs_catalog_matches_the_registry(self):
        from repro.analysis.core import all_rules
        import re
        table = (REPO / "docs" / "static_analysis.md").read_text()
        documented = set(re.findall(r"^\| `([A-Z]+[0-9]+)` \|", table,
                                    flags=re.MULTILINE))
        assert documented == set(all_rules())


class TestReproCliDispatch:
    def test_lint_subcommand_routes_through_main_cli(self, tmp_path, capsys):
        target = project(tmp_path)
        assert repro_main(["lint", "--strict", str(target)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out


class TestSelfCheck:
    def test_strict_lint_is_clean_on_the_shipped_tree(self, capsys):
        # tests/ and benchmarks/ are linted too (as in CI) — the flow
        # rules must hold everywhere results or fixtures are produced.
        paths = [str(REPO / "src"), str(REPO / "examples"),
                 str(REPO / "tests"), str(REPO / "benchmarks")]
        code = repro_main(["lint", "--strict", "--baseline",
                           str(REPO / ".repro-lint-baseline.json"), *paths])
        output = capsys.readouterr()
        assert code == 0, output.out + output.err
