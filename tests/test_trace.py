"""Tests for instruction pattern generation and warp programs."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Opcode
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.kernels.trace import WarpProgram, build_pattern


def _spec(mix=None, body_length=100, **kwargs):
    return KernelSpec(name=kwargs.pop("name", "trace-test"),
                      mix=mix or InstructionMix(),
                      body_length=body_length, **kwargs)


class TestBuildPattern:
    def test_length_matches_body(self):
        spec = _spec(body_length=64)
        assert len(build_pattern(spec)) == 64

    def test_barrier_appended(self):
        mix = InstructionMix(barrier_per_iteration=True)
        spec = _spec(mix=mix, body_length=30)
        pattern = build_pattern(spec)
        assert len(pattern) == 31
        assert pattern[-1].opcode == Opcode.BAR
        assert all(inst.opcode != Opcode.BAR for inst in pattern[:-1])

    def test_mix_apportionment_exact(self):
        mix = InstructionMix(alu=0.5, sfu=0.1, ldg=0.2, stg=0.1, lds=0.1)
        pattern = build_pattern(_spec(mix=mix, body_length=100))
        counts = {}
        for inst in pattern:
            counts[inst.opcode] = counts.get(inst.opcode, 0) + 1
        assert counts[Opcode.ALU] == 50
        assert counts[Opcode.SFU] == 10
        assert counts[Opcode.LDG] == 20
        assert counts[Opcode.STG] == 10
        assert counts[Opcode.LDS] == 10

    def test_deterministic_per_name(self):
        assert build_pattern(_spec()) == build_pattern(_spec())

    def test_different_names_differ(self):
        first = build_pattern(_spec(name="alpha", ilp=0.5))
        second = build_pattern(_spec(name="beta", ilp=0.5))
        assert first != second

    def test_zero_divergence_all_lanes_active(self):
        pattern = build_pattern(_spec(divergence=0.0))
        assert all(inst.active_lanes == 32 for inst in pattern)

    def test_divergence_produces_partial_warps(self):
        pattern = build_pattern(_spec(divergence=0.9, body_length=200))
        assert any(inst.active_lanes < 32 for inst in pattern)

    def test_global_memory_always_dependent(self):
        pattern = build_pattern(_spec(ilp=1.0, body_length=200))
        for inst in pattern:
            if inst.opcode in (Opcode.LDG, Opcode.STG):
                assert inst.dependent

    def test_high_ilp_gives_independent_alu(self):
        pattern = build_pattern(_spec(ilp=1.0, body_length=200))
        alu = [inst for inst in pattern if inst.opcode == Opcode.ALU]
        assert alu and all(not inst.dependent for inst in alu)

    @given(fractions=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=5
    ).filter(lambda f: sum(f) > 0.1), body=st.integers(10, 300))
    def test_counts_always_sum_to_body_length(self, fractions, body):
        total = sum(fractions)
        normalised = [value / total for value in fractions]
        # Re-normalise exactly: put rounding residue into alu.
        alu, sfu, ldg, stg, lds = normalised
        alu = max(0.0, 1.0 - (sfu + ldg + stg + lds))
        mix = InstructionMix(alu=alu, sfu=sfu, ldg=ldg, stg=stg, lds=lds)
        pattern = build_pattern(_spec(mix=mix, body_length=body))
        assert len(pattern) == body


class TestWarpProgram:
    def test_length(self):
        program = WarpProgram.for_spec(_spec(body_length=10,
                                             iterations_per_tb=4))
        assert program.length == 40

    def test_instruction_wraps_pattern(self):
        spec = _spec(body_length=10, iterations_per_tb=3)
        program = WarpProgram.for_spec(spec)
        for index in range(program.length):
            assert program.instruction(index) is program.pattern[index % 10]

    @pytest.mark.parametrize("index", [-1, 1000])
    def test_out_of_range(self, index):
        program = WarpProgram.for_spec(_spec(body_length=10,
                                             iterations_per_tb=2))
        with pytest.raises(IndexError):
            program.instruction(index)

    def test_thread_instructions_counts_lanes(self):
        spec = _spec(divergence=0.0, body_length=10, iterations_per_tb=2)
        program = WarpProgram.for_spec(spec)
        assert program.thread_instructions() == 10 * 2 * 32

    def test_thread_instructions_with_divergence_below_full(self):
        spec = _spec(divergence=1.0, body_length=50, iterations_per_tb=1)
        program = WarpProgram.for_spec(spec)
        assert program.thread_instructions() < 50 * 32
