"""Tests for per-launch kernel runtime constants."""

import pytest

from repro.kernels.spec import KernelSpec, MemoryPattern
from repro.sim.kernel_runtime import KernelRuntime


def make_runtime(kernel_idx=0, footprint=4 * 1024 * 1024, reuse=0.2,
                 coalesced=0.8, degree=4):
    spec = KernelSpec(
        name="runtime-test",
        memory=MemoryPattern(footprint_bytes=footprint,
                             coalesced_fraction=coalesced,
                             uncoalesced_degree=degree,
                             reuse_fraction=reuse))
    return KernelRuntime(kernel_idx, spec, line_size=128)


class TestThresholds:
    def test_threshold_ordering(self):
        runtime = make_runtime(reuse=0.2, coalesced=0.8)
        assert 0 < runtime.reuse_threshold < runtime.coalesce_threshold <= 1 << 32

    def test_reuse_threshold_fraction(self):
        runtime = make_runtime(reuse=0.25)
        assert runtime.reuse_threshold == pytest.approx(0.25 * (1 << 32), rel=1e-9)

    def test_coalesce_threshold_conditional(self):
        """coalesce_threshold covers reuse + coalesced share of the rest."""
        runtime = make_runtime(reuse=0.5, coalesced=0.5)
        expected = (0.5 + 0.5 * 0.5) * (1 << 32)
        assert runtime.coalesce_threshold == pytest.approx(expected, rel=1e-9)

    def test_fully_coalesced_never_fans_out(self):
        runtime = make_runtime(reuse=0.0, coalesced=1.0)
        assert runtime.coalesce_threshold == 1 << 32


class TestGeometry:
    def test_footprint_lines(self):
        runtime = make_runtime(footprint=128 * 1000)
        assert runtime.footprint_lines == 1000

    def test_base_lines_disjoint_and_ordered(self):
        first = make_runtime(kernel_idx=0)
        second = make_runtime(kernel_idx=1)
        third = make_runtime(kernel_idx=2)
        assert first.base_line < second.base_line < third.base_line
        assert second.base_line - first.base_line == \
            third.base_line - second.base_line

    def test_program_cached(self):
        runtime = make_runtime()
        assert runtime.program_length == runtime.program.length
        assert runtime.warps_per_tb == runtime.spec.warps_per_tb


class TestStartCursors:
    def test_within_footprint(self):
        runtime = make_runtime(footprint=128 * 64)
        for tb_id in range(50):
            for warp_id in range(runtime.warps_per_tb):
                cursor = runtime.start_cursor(tb_id, warp_id)
                assert 0 <= cursor < runtime.footprint_lines

    def test_tbs_spread_over_footprint(self):
        runtime = make_runtime(footprint=64 * 1024 * 1024)
        cursors = {runtime.start_cursor(tb_id, 0) for tb_id in range(16)}
        assert len(cursors) == 16  # no trivial clustering

    def test_seed_nonzero_and_stable(self):
        runtime = make_runtime()
        seed = runtime.warp_seed(3, 2)
        assert seed == runtime.warp_seed(3, 2)
        assert seed != 0
        assert seed % 2 == 1  # odd-forced so the LCG cannot collapse
