"""Tests for the EXPERIMENTS.md generator."""

import pathlib

from repro.harness.expmd import generate


class TestGenerate:
    def test_subset_generation(self, tmp_path):
        path = tmp_path / "EXP.md"
        text = generate("smoke", experiments=("table1", "table2"), path=path)
        assert path.exists()
        assert path.read_text() == text
        assert "Shape-claim scorecard" in text
        assert "Table 1" in text
        assert "comparison with prior work" in text
        assert "preset **smoke**" in text

    def test_scorecard_counts_checks(self, tmp_path):
        text = generate("smoke", experiments=("table1",))
        # Tables carry no shape checks; scorecard must be 0/0.
        assert "0/0" in text

    def test_header_documents_deviations(self):
        text = generate("smoke", experiments=("table1",))
        assert "Known deviations" in text
        assert "DESIGN.md" in text
