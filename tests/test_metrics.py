"""Tests for QoSreach, throughput averages and the miss histogram."""

import pytest

from repro.harness.metrics import (
    MISS_BUCKETS,
    average_normalized_turnaround,
    fairness_index,
    improvement,
    mean_instructions_per_watt,
    mean_nonqos_throughput,
    mean_qos_overshoot,
    miss_histogram,
    qos_reach,
    system_throughput,
)
from repro.harness.runner import CaseRecord, KernelOutcome


def outcome(name="k", is_qos=False, ipc=50.0, iso=100.0, goal=None):
    return KernelOutcome(name=name, is_qos=is_qos,
                         goal_fraction=(goal / iso if goal else None),
                         ipc=ipc, isolated_ipc=iso, ipc_goal=goal,
                         intensity="C")


def case(qos_ipc, goal, nonqos_ipc=40.0, policy="rollover", ipw=1.0):
    kernels = (
        outcome("q", is_qos=True, ipc=qos_ipc, goal=goal),
        outcome("n", ipc=nonqos_ipc),
    )
    return CaseRecord(kernels=kernels, policy=policy, cycles=1000,
                      evictions=0, eviction_stall_cycles=0, power_w=10.0,
                      instructions_per_watt=ipw)


class TestQoSReach:
    def test_empty(self):
        assert qos_reach([]) == 0.0

    def test_counts_met_cases(self):
        cases = [case(100, 80), case(50, 80), case(81, 80), case(10, 80)]
        assert qos_reach(cases) == 0.5

    def test_tolerance_at_goal(self):
        assert qos_reach([case(80.0, 80.0)]) == 1.0


class TestThroughputMeans:
    def test_met_only_filter(self):
        met = case(100, 80, nonqos_ipc=40)     # non-QoS tput 0.4
        unmet = case(50, 80, nonqos_ipc=90)
        assert mean_nonqos_throughput([met, unmet]) == pytest.approx(0.4)
        assert mean_nonqos_throughput([met, unmet], met_only=False) == \
            pytest.approx((0.4 + 0.9) / 2)

    def test_none_when_nothing_met(self):
        assert mean_nonqos_throughput([case(10, 80)]) is None

    def test_overshoot(self):
        cases = [case(88, 80), case(96, 80)]
        assert mean_qos_overshoot(cases) == pytest.approx((1.1 + 1.2) / 2)

    def test_overshoot_none_when_unmet(self):
        assert mean_qos_overshoot([case(10, 80)]) is None


class TestMissHistogram:
    def test_buckets(self):
        cases = [
            case(79.5, 80),    # 0.6% below -> 0-1%
            case(77, 80),      # 3.75% -> 1-5%
            case(74, 80),      # 7.5% -> 5-10%
            case(66, 80),      # 17.5% -> 10-20%
            case(40, 80),      # 50% -> 20+%
            case(100, 80),     # met: not counted
        ]
        histogram = miss_histogram(cases)
        assert histogram == {"0-1%": 1, "1-5%": 1, "5-10%": 1,
                             "10-20%": 1, "20+%": 1}

    def test_bucket_order_matches_paper(self):
        assert MISS_BUCKETS == ("0-1%", "1-5%", "5-10%", "10-20%", "20+%")


class TestHelpers:
    def test_mean_ipw(self):
        cases = [case(100, 80, ipw=2.0), case(100, 80, ipw=4.0)]
        assert mean_instructions_per_watt(cases) == 3.0
        assert mean_instructions_per_watt([]) is None

    def test_improvement(self):
        assert improvement(1.2, 1.0) == pytest.approx(0.2)
        assert improvement(None, 1.0) is None
        assert improvement(1.0, None) is None
        assert improvement(1.0, 0.0) is None


class TestMultiprogrammingMetrics:
    def test_system_throughput_sums_normalised(self):
        record = case(50, 80, nonqos_ipc=40)  # q: 50/100, n: 40/100
        assert system_throughput(record) == pytest.approx(0.9)

    def test_antt_is_mean_slowdown(self):
        record = case(50, 80, nonqos_ipc=25)  # slowdowns 2.0 and 4.0
        assert average_normalized_turnaround(record) == pytest.approx(3.0)

    def test_antt_infinite_when_starved(self):
        record = case(50, 80, nonqos_ipc=0.0)
        assert average_normalized_turnaround(record) == float("inf")

    def test_fairness_index_bounds(self):
        equal = case(40, 80, nonqos_ipc=40)
        skewed = case(90, 80, nonqos_ipc=10)
        assert fairness_index(equal) == pytest.approx(1.0)
        assert fairness_index(skewed) < 0.2

    def test_fairness_of_dead_machine(self):
        record = case(0.0, 80, nonqos_ipc=0.0)
        assert fairness_index(record) == 1.0
