"""Tests for the GTO / LRR warp schedulers and the quota (EWS) filter."""

import pytest

from repro.kernels.spec import KernelSpec
from repro.sim.scheduler import (GTOScheduler, LRRScheduler,
                                 ScanGTOScheduler, ScanLRRScheduler,
                                 make_scheduler)
from repro.sim.tb import ThreadBlock
from repro.sim.warp import Warp, WarpState


def make_warp(kernel_idx=0, ready_at=0):
    tb = ThreadBlock(0, kernel_idx, KernelSpec(name="sched-test"), 0)
    warp = Warp(kernel_idx, tb, 0, seed=1, start_cursor=0)
    warp.ready_at = ready_at
    return warp


ALL_OK = [True, True, True]


class TestGTOSelection:
    def test_empty_returns_none(self):
        assert GTOScheduler().select(0, ALL_OK) is None

    def test_oldest_ready_first(self):
        scheduler = GTOScheduler()
        old, young = make_warp(), make_warp()
        scheduler.add_warp(old)
        scheduler.add_warp(young)
        assert scheduler.select(0, ALL_OK) is old

    def test_greedy_sticks_to_last_warp(self):
        scheduler = GTOScheduler()
        first, second = make_warp(), make_warp()
        scheduler.add_warp(first)
        scheduler.add_warp(second)
        assert scheduler.select(0, ALL_OK) is first
        assert scheduler.select(1, ALL_OK) is first  # greedy

    def test_falls_back_to_oldest_when_last_stalls(self):
        scheduler = GTOScheduler()
        first, second = make_warp(), make_warp()
        scheduler.add_warp(first)
        scheduler.add_warp(second)
        scheduler.select(0, ALL_OK)
        first.ready_at = 100  # stall the greedy warp
        assert scheduler.select(1, ALL_OK) is second

    def test_skips_non_running_states(self):
        scheduler = GTOScheduler()
        barrier, ready = make_warp(), make_warp()
        barrier.state = WarpState.AT_BARRIER
        scheduler.add_warp(barrier)
        scheduler.add_warp(ready)
        assert scheduler.select(0, ALL_OK) is ready

    def test_skips_future_ready(self):
        scheduler = GTOScheduler()
        warp = make_warp(ready_at=10)
        scheduler.add_warp(warp)
        assert scheduler.select(5, ALL_OK) is None
        assert scheduler.select(10, ALL_OK) is warp


class TestQuotaFilter:
    def test_throttled_kernel_invisible(self):
        scheduler = GTOScheduler()
        throttled = make_warp(kernel_idx=0)
        allowed = make_warp(kernel_idx=1)
        scheduler.add_warp(throttled)
        scheduler.add_warp(allowed)
        assert scheduler.select(0, [False, True, True]) is allowed

    def test_greedy_warp_respects_quota(self):
        scheduler = GTOScheduler()
        warp = make_warp(kernel_idx=0)
        scheduler.add_warp(warp)
        assert scheduler.select(0, ALL_OK) is warp
        assert scheduler.select(1, [False, True, True]) is None

    def test_all_throttled_returns_none(self):
        scheduler = GTOScheduler()
        scheduler.add_warp(make_warp(kernel_idx=0))
        assert scheduler.select(0, [False, True, True]) is None


class TestSleepUntil:
    def test_failed_scan_sets_wakeup(self):
        scheduler = GTOScheduler()
        scheduler.add_warp(make_warp(ready_at=50))
        scheduler.add_warp(make_warp(ready_at=30))
        assert scheduler.select(0, ALL_OK) is None
        assert scheduler.sleep_until == 30

    def test_sleeping_scheduler_skips_scan(self):
        scheduler = GTOScheduler()
        warp = make_warp(ready_at=30)
        scheduler.add_warp(warp)
        scheduler.select(0, ALL_OK)
        # Selection before the cached wake-up returns immediately.
        assert scheduler.select(10, ALL_OK) is None
        assert scheduler.select(30, ALL_OK) is warp

    def test_add_warp_wakes(self):
        scheduler = GTOScheduler()
        scheduler.add_warp(make_warp(ready_at=100))
        scheduler.select(0, ALL_OK)
        assert scheduler.sleep_until == 100
        ready = make_warp(ready_at=0)
        scheduler.add_warp(ready)
        assert scheduler.select(1, ALL_OK) is ready

    def test_throttled_warps_excluded_from_wakeup(self):
        scheduler = GTOScheduler()
        scheduler.add_warp(make_warp(kernel_idx=0, ready_at=10))
        scheduler.add_warp(make_warp(kernel_idx=1, ready_at=99))
        scheduler.select(0, [False, True, True])
        assert scheduler.sleep_until == 99


class TestRemoveWarp:
    def test_removed_warp_never_selected(self):
        scheduler = GTOScheduler()
        warp = make_warp()
        scheduler.add_warp(warp)
        scheduler.select(0, ALL_OK)
        scheduler.remove_warp(warp)
        assert scheduler.select(1, ALL_OK) is None
        assert scheduler.last is None

    def test_ready_count(self):
        scheduler = GTOScheduler()
        scheduler.add_warp(make_warp(ready_at=0))
        scheduler.add_warp(make_warp(ready_at=0))
        scheduler.add_warp(make_warp(ready_at=50))
        assert scheduler.ready_count(0, ALL_OK) == 2
        assert scheduler.ready_count(50, ALL_OK) == 3


class TestLRR:
    def test_rotates_between_ready_warps(self):
        scheduler = LRRScheduler()
        warps = [make_warp() for _ in range(3)]
        for warp in warps:
            scheduler.add_warp(warp)
        picks = [scheduler.select(cycle, ALL_OK) for cycle in range(3)]
        assert set(picks) == set(warps)

    def test_empty(self):
        assert LRRScheduler().select(0, ALL_OK) is None

    def test_skips_stalled(self):
        scheduler = LRRScheduler()
        stalled = make_warp(ready_at=100)
        ready = make_warp()
        scheduler.add_warp(stalled)
        scheduler.add_warp(ready)
        assert scheduler.select(0, ALL_OK) is ready


class TestFactory:
    def test_gto(self):
        assert isinstance(make_scheduler("gto"), GTOScheduler)

    def test_lrr(self):
        assert isinstance(make_scheduler("lrr"), LRRScheduler)

    def test_scan_core(self):
        assert isinstance(make_scheduler("gto", core="scan"), ScanGTOScheduler)
        assert isinstance(make_scheduler("lrr", core="scan"), ScanLRRScheduler)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("random")

    def test_unknown_core(self):
        with pytest.raises(ValueError):
            make_scheduler("gto", core="magic")


class TestBackReference:
    def test_add_sets_owner_and_remove_clears_it(self):
        scheduler = GTOScheduler()
        warp = make_warp()
        scheduler.add_warp(warp)
        assert warp.sched is scheduler
        scheduler.remove_warp(warp)
        assert warp.sched is None


class TestScanEquivalence:
    """The event-driven two-tier core must reproduce the reference scan
    core's selection sequence warp for warp under identical stimulus:
    issue-driven stalls of every length, quota throttling and refresh,
    warp retirement, and warp removal."""

    def _lockstep(self, policy, cycles=600, num_warps=12, seed=7):
        event = make_scheduler(policy, core="event")
        scan = make_scheduler(policy, core="scan")
        ev_warps, sc_warps = [], []
        for i in range(num_warps):
            ev, sc = make_warp(kernel_idx=i % 3), make_warp(kernel_idx=i % 3)
            event.add_warp(ev)
            scan.add_warp(sc)
            ev_warps.append(ev)
            sc_warps.append(sc)
        quota = [True, True, True]
        state = seed
        for cycle in range(cycles):
            state = (state * 1103515245 + 12345) % (1 << 31)
            if state % 71 == 0:  # flip a kernel's quota eligibility
                kernel = state % 3
                quota[kernel] = not quota[kernel]
                if quota[kernel]:  # a refresh wakes (SM.set_quota does)
                    event.wake()
                    scan.wake()
            if state % 233 == 0 and len(sc_warps) > 4:  # evict a warp
                victim = state % len(sc_warps)
                event.remove_warp(ev_warps.pop(victim))
                scan.remove_warp(sc_warps.pop(victim))
            pick_scan = scan.select(cycle, quota)
            pick_event = event.select(cycle, quota)
            assert event.sleep_until == scan.sleep_until
            if pick_scan is None:
                assert pick_event is None
                continue
            index = sc_warps.index(pick_scan)
            assert pick_event is ev_warps[index]
            if state % 41 == 0:  # retire
                pick_event.state = pick_scan.state = WarpState.DONE
                continue
            # Issue: stall both copies identically — pipeline-short,
            # L2-medium, or DRAM-long.
            stall = (1, 4, 24, 130, 400)[state % 5]
            pick_event.ready_at = pick_scan.ready_at = cycle + stall
        # The run must actually exercise selection, not sleep through it.
        assert any(w.state == WarpState.DONE for w in sc_warps)

    def test_gto_lockstep(self):
        self._lockstep("gto")

    def test_lrr_lockstep(self):
        self._lockstep("lrr")

    def test_sample_ready_matches_scan(self):
        event = make_scheduler("gto", core="event")
        scan = make_scheduler("gto", core="scan")
        for i in range(8):
            ready_at = (0, 3, 90, 500)[i % 4]
            event.add_warp(make_warp(kernel_idx=i % 2, ready_at=ready_at))
            scan.add_warp(make_warp(kernel_idx=i % 2, ready_at=ready_at))
        for cycle in (0, 5, 100, 600):
            ev_sum, sc_sum = [0, 0, 0], [0, 0, 0]
            event.sample_ready(cycle, ev_sum)
            scan.sample_ready(cycle, sc_sum)
            assert ev_sum == sc_sum
