"""Tests for the serial and fairness sharing regimes."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.sharing import FairSMKPolicy, SerialPolicy
from repro.sim import GPUSimulator, LaunchedKernel


def spec(name, ilp=0.8):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.85, sfu=0.0, ldg=0.1, stg=0.05, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 22),
        ilp=ilp, body_length=16, iterations_per_tb=3)


def make_gpu():
    return GPUConfig(num_sms=2, num_mcs=1, epoch_length=400,
                     idle_warp_samples=8, sm=SMConfig(warp_schedulers=2))


def isolated_ipc(kernel_spec, cycles=6000):
    sim = GPUSimulator(make_gpu(), [LaunchedKernel(kernel_spec)])
    sim.run(cycles)
    return sim.result().kernels[0].ipc


class TestSerialPolicy:
    def test_rejects_bad_slice(self):
        with pytest.raises(ValueError):
            SerialPolicy(slice_epochs=0)

    def test_single_owner_at_any_time(self):
        policy = SerialPolicy(slice_epochs=2)
        sim = GPUSimulator(make_gpu(),
                           [LaunchedKernel(spec("a")), LaunchedKernel(spec("b"))],
                           policy)
        sim.setup()
        for sm in sim.sms:
            resident = [k for k in range(2) if sm.tb_count[k] > 0]
            assert resident == [0]

    def test_ownership_rotates(self):
        policy = SerialPolicy(slice_epochs=1)
        sim = GPUSimulator(make_gpu(),
                           [LaunchedKernel(spec("a")), LaunchedKernel(spec("b"))],
                           policy)
        sim.run(4000)
        assert policy.switches >= 2
        result = sim.result()
        # Both kernels made progress across their slices.
        assert all(k.retired_thread_insts > 0 for k in result.kernels)

    def test_switches_pay_preemption(self):
        policy = SerialPolicy(slice_epochs=1)
        sim = GPUSimulator(make_gpu(),
                           [LaunchedKernel(spec("a")), LaunchedKernel(spec("b"))],
                           policy)
        sim.run(3000)
        assert sim.result().evictions > 0

    def test_single_kernel_never_switches(self):
        policy = SerialPolicy(slice_epochs=1)
        sim = GPUSimulator(make_gpu(), [LaunchedKernel(spec("a"))], policy)
        sim.run(2000)
        assert policy.switches == 0


class TestFairSMKPolicy:
    def test_requires_isolated_ipcs(self):
        with pytest.raises(ValueError):
            FairSMKPolicy({})
        with pytest.raises(ValueError):
            FairSMKPolicy({"a": 0.0})

    def test_missing_kernel_rejected_at_setup(self):
        policy = FairSMKPolicy({"a": 10.0})
        sim = GPUSimulator(make_gpu(),
                           [LaunchedKernel(spec("a")), LaunchedKernel(spec("b"))],
                           policy)
        with pytest.raises(ValueError, match="no isolated IPC"):
            sim.setup()

    def test_slowdowns_tracked(self):
        fast, slow = spec("fast", ilp=0.9), spec("slow", ilp=0.9)
        iso = {"fast": isolated_ipc(fast), "slow": isolated_ipc(slow)}
        policy = FairSMKPolicy(iso)
        sim = GPUSimulator(make_gpu(),
                           [LaunchedKernel(fast), LaunchedKernel(slow)],
                           policy)
        sim.run(4000)
        assert set(policy.slowdowns) == {0, 1}
        assert all(0 <= value <= 1.5 for value in policy.slowdowns.values())

    def test_fairness_better_than_unmanaged(self):
        """Fairness management must narrow the slowdown gap vs no management
        for an asymmetric pair (one kernel naturally dominates)."""
        import repro.sim as sim_module
        big = spec("dominant", ilp=0.95)
        small = KernelSpec(
            name="meek", threads_per_tb=64, regs_per_thread=16,
            mix=InstructionMix(alu=0.4, sfu=0.0, ldg=0.45, stg=0.15, lds=0.0),
            memory=MemoryPattern(footprint_bytes=1 << 26, reuse_fraction=0.0),
            ilp=0.2, body_length=16, iterations_per_tb=3, intensity="memory")
        iso = {"dominant": isolated_ipc(big), "meek": isolated_ipc(small)}

        def run(policy):
            sim = GPUSimulator(make_gpu(),
                               [LaunchedKernel(big), LaunchedKernel(small)],
                               policy)
            sim.run(8000)
            result = sim.result()
            shares = [result.kernels[0].ipc / iso["dominant"],
                      result.kernels[1].ipc / iso["meek"]]
            return min(shares) / max(shares)

        unmanaged = run(sim_module.SharingPolicy())
        fair = run(FairSMKPolicy(iso))
        assert fair >= unmanaged - 0.05

    def test_fairness_index_defaults_to_one(self):
        assert FairSMKPolicy({"a": 1.0}).fairness_index() == 1.0
