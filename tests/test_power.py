"""Tests for the GPUWattch-style power model."""

import pytest

from repro.config import FAST_GPU, GPUConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.power import PowerModel, instructions_per_watt
from repro.sim import GPUSimulator, LaunchedKernel


def run(spec, cycles=3000, gpu=None):
    gpu = gpu or GPUConfig(num_sms=2, num_mcs=1, epoch_length=500)
    sim = GPUSimulator(gpu, [LaunchedKernel(spec)])
    sim.run(cycles)
    return gpu, sim.result()


def compute_spec():
    return KernelSpec(
        name="pw-compute", threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.95, sfu=0.0, ldg=0.03, stg=0.02, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 20), ilp=0.9,
        body_length=16, iterations_per_tb=4)


def memory_spec():
    return KernelSpec(
        name="pw-memory", threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.3, sfu=0.0, ldg=0.55, stg=0.15, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 26, reuse_fraction=0.0),
        ilp=0.2, body_length=16, iterations_per_tb=4, intensity="memory")


class TestEnergyBreakdown:
    def test_all_components_nonnegative(self):
        gpu, result = run(compute_spec())
        energy = PowerModel(gpu).energy(result)
        for value in energy.as_dict().values():
            assert value >= 0

    def test_total_is_sum(self):
        gpu, result = run(compute_spec())
        energy = PowerModel(gpu).energy(result)
        parts = (energy.core_dynamic + energy.l1 + energy.l2
                 + energy.dram + energy.noc + energy.static)
        assert energy.total == pytest.approx(parts)

    def test_memory_kernel_spends_more_on_dram(self):
        gpu, compute_result = run(compute_spec())
        _gpu, memory_result = run(memory_spec(), gpu=gpu)
        model = PowerModel(gpu)
        compute_energy = model.energy(compute_result)
        memory_energy = model.energy(memory_result)
        assert (memory_energy.dram / memory_energy.total
                > compute_energy.dram / compute_energy.total)

    def test_static_energy_scales_with_time(self):
        gpu, short = run(compute_spec(), cycles=1000)
        _gpu, long = run(compute_spec(), cycles=4000, gpu=gpu)
        # Pin SM activity so only the time term varies (gating is tested
        # separately below).
        short.extra["mean_sm_activity"] = 0.5
        long.extra["mean_sm_activity"] = 0.5
        model = PowerModel(gpu)
        assert model.energy(long).static == pytest.approx(
            4 * model.energy(short).static)

    def test_idle_sms_are_clock_gated(self):
        gpu, result = run(compute_spec())
        model = PowerModel(gpu)
        result.extra["mean_sm_activity"] = 1.0
        busy_static = model.energy(result).static
        result.extra["mean_sm_activity"] = 0.0
        idle_static = model.energy(result).static
        assert idle_static < busy_static
        assert idle_static > 0  # leakage cannot be gated away


class TestPowerAndEfficiency:
    def test_average_power_positive(self):
        gpu, result = run(compute_spec())
        assert PowerModel(gpu).average_power_w(result) > 0

    def test_busy_machine_more_efficient_than_idle(self):
        """A machine retiring more instructions amortises leakage better."""
        gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=500)
        _g, busy = run(compute_spec(), gpu=gpu)
        _g, starved = run(memory_spec(), gpu=gpu)
        model = PowerModel(gpu)
        assert (model.instructions_per_watt(busy)
                > model.instructions_per_watt(starved))

    def test_instructions_per_watt_rejects_bad_power(self):
        gpu, result = run(compute_spec())
        with pytest.raises(ValueError):
            instructions_per_watt(result, 0.0)

    def test_more_sms_burn_more_static_power(self):
        small_gpu, result = run(compute_spec())
        big_gpu = GPUConfig(num_sms=8, num_mcs=2, epoch_length=500)
        small = PowerModel(small_gpu).energy(result).static
        big = PowerModel(big_gpu).energy(result).static
        assert big > small
