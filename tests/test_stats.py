"""Tests for statistics containers and result objects."""

import pytest

from repro.sim.stats import KernelResult, KernelStats, SimulationResult


def kernel_result(name="k", ipc=10.0, goal=None, is_qos=False, retired=1000):
    return KernelResult(name=name, retired_thread_insts=retired, cycles=100,
                        completed_tbs=2, ipc=ipc, memory={"requests": 5},
                        ipc_goal=goal, is_qos=is_qos)


class TestKernelStats:
    def test_initial_zero(self):
        stats = KernelStats()
        assert stats.retired_thread_insts == 0
        assert stats.mean_idle_warps == 0.0

    def test_mean_idle_warps(self):
        stats = KernelStats()
        stats.idle_warp_sum = 30
        stats.idle_warp_samples = 10
        assert stats.mean_idle_warps == 3.0

    def test_reset_idle_sampling(self):
        stats = KernelStats()
        stats.idle_warp_sum = 30
        stats.idle_warp_samples = 10
        stats.reset_idle_sampling()
        assert stats.mean_idle_warps == 0.0


class TestKernelResult:
    def test_reached_none_for_nonqos(self):
        assert kernel_result().reached_goal is None

    def test_reached_true_at_goal(self):
        result = kernel_result(ipc=10.0, goal=10.0, is_qos=True)
        assert result.reached_goal is True

    def test_reached_tolerance(self):
        result = kernel_result(ipc=9.995, goal=10.0, is_qos=True)
        assert result.reached_goal is True
        result = kernel_result(ipc=9.9, goal=10.0, is_qos=True)
        assert result.reached_goal is False


class TestSimulationResult:
    def _result(self):
        return SimulationResult(
            cycles=100,
            kernels=[kernel_result("a", ipc=5.0), kernel_result("b", ipc=7.0)],
            memory_aggregate={"l1_hits": 1},
            epochs=3, evictions=0, eviction_stall_cycles=0)

    def test_kernel_lookup(self):
        result = self._result()
        assert result.kernel("b").ipc == 7.0

    def test_kernel_lookup_missing(self):
        with pytest.raises(KeyError):
            self._result().kernel("zzz")

    def test_total_ipc(self):
        assert self._result().total_ipc == pytest.approx(12.0)

    def test_extra_defaults_empty(self):
        assert self._result().extra == {}
