"""Tests for the Spart spatial-partitioning baseline."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.baselines import SpartPolicy
from repro.sim import GPUSimulator, LaunchedKernel


def spec(name):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.85, sfu=0.0, ldg=0.1, stg=0.05, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 22),
        ilp=0.8, body_length=16, iterations_per_tb=3)


def make_sim(goal, num_sms=4, policy=None, kernels=2):
    gpu = GPUConfig(num_sms=num_sms, num_mcs=1, epoch_length=500,
                    idle_warp_samples=10, sm=SMConfig(warp_schedulers=2))
    launches = [LaunchedKernel(spec("qos-a"), is_qos=True, ipc_goal=goal)]
    launches.append(LaunchedKernel(spec("plain-b")))
    if kernels == 3:
        launches.append(LaunchedKernel(spec("plain-c")))
    return GPUSimulator(gpu, launches, policy or SpartPolicy())


class TestInitialPartition:
    def test_sms_split_evenly(self):
        policy = SpartPolicy()
        sim = make_sim(goal=10.0, num_sms=4, policy=policy)
        sim.setup()
        assert policy.sm_count(0) == 2
        assert policy.sm_count(1) == 2

    def test_leftover_sms_go_to_qos(self):
        policy = SpartPolicy()
        sim = make_sim(goal=10.0, num_sms=5, policy=policy)
        sim.setup()
        assert policy.sm_count(0) == 3
        assert policy.sm_count(1) == 2

    def test_partitions_are_exclusive(self):
        policy = SpartPolicy()
        sim = make_sim(goal=10.0, num_sms=4, policy=policy)
        sim.setup()
        for sm in sim.sms:
            resident = [k for k in range(sim.num_kernels)
                        if sm.tb_count[k] > 0]
            assert len(resident) == 1
            assert resident[0] == policy.owner[sm.sm_id]

    def test_more_kernels_than_sms_rejected(self):
        gpu = GPUConfig(num_sms=1, num_mcs=1)
        launches = [LaunchedKernel(spec("a"), is_qos=True, ipc_goal=1.0),
                    LaunchedKernel(spec("b"))]
        sim = GPUSimulator(gpu, launches, SpartPolicy())
        with pytest.raises(ValueError):
            sim.setup()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SpartPolicy(adjust_interval=0)

    def test_no_quotas(self):
        policy = SpartPolicy()
        sim = make_sim(goal=10.0, policy=policy)
        sim.setup()
        assert all(not sm.quota_enabled for sm in sim.sms)


class TestHillClimbing:
    def test_lagging_qos_kernel_steals_sms(self):
        policy = SpartPolicy()
        sim = make_sim(goal=1e6, policy=policy)  # unreachable goal
        sim.run(4000)
        # Non-QoS partition is drained toward the QoS kernel.
        assert policy.sm_count(0) > policy.sm_count(1)
        assert policy.moves > 0

    def test_overachieving_qos_kernel_gives_back(self):
        policy = SpartPolicy()
        sim = make_sim(goal=0.5, policy=policy)  # trivially easy goal
        sim.run(6000)
        assert policy.sm_count(1) > policy.sm_count(0)

    def test_partition_always_covers_all_sms(self):
        policy = SpartPolicy()
        sim = make_sim(goal=100.0, policy=policy)
        sim.run(5000)
        assert len(policy.owner) == sim.config.num_sms
        assert policy.sm_count(0) + policy.sm_count(1) == sim.config.num_sms

    def test_transfer_repartitions_residency(self):
        policy = SpartPolicy()
        sim = make_sim(goal=1e6, policy=policy)
        sim.run(6000)
        # After stabilising, residency must agree with ownership.
        for sm in sim.sms:
            owner = policy.owner[sm.sm_id]
            for kernel_idx in range(sim.num_kernels):
                live = [tb for tb in sm.tbs
                        if tb.kernel_idx == kernel_idx and not tb.evicting]
                if kernel_idx != owner:
                    # Losers may still be draining, but get no fresh TBs.
                    assert sim.tb_targets[sm.sm_id][kernel_idx] == 0
                else:
                    assert live or sim.preemption.has_pending

    def test_moves_cost_preemptions(self):
        policy = SpartPolicy()
        sim = make_sim(goal=1e6, policy=policy)
        sim.run(4000)
        assert sim.result().evictions > 0


class TestTrioPartition:
    def test_three_kernels_on_six_sms(self):
        policy = SpartPolicy()
        gpu = GPUConfig(num_sms=6, num_mcs=1, epoch_length=500)
        launches = [
            LaunchedKernel(spec("q1"), is_qos=True, ipc_goal=10.0),
            LaunchedKernel(spec("n1")),
            LaunchedKernel(spec("n2")),
        ]
        sim = GPUSimulator(gpu, launches, policy)
        sim.setup()
        assert [policy.sm_count(i) for i in range(3)] == [2, 2, 2]
