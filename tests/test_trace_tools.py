"""Tests for the epoch trace recorder and ASCII rendering."""

import pytest

from repro.config import GPUConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy
from repro.trace import TraceRecorder, render_timeline, sparkline


def spec(name):
    return KernelSpec(
        name=name, threads_per_tb=64, regs_per_thread=16,
        mix=InstructionMix(alu=0.85, sfu=0.0, ldg=0.1, stg=0.05, lds=0.0),
        memory=MemoryPattern(footprint_bytes=1 << 22),
        ilp=0.8, body_length=16, iterations_per_tb=3)


def traced_run(policy, cycles=3000):
    gpu = GPUConfig(num_sms=2, num_mcs=1, epoch_length=400,
                    idle_warp_samples=8, sm=SMConfig(warp_schedulers=2))
    recorder = TraceRecorder(policy)
    sim = GPUSimulator(gpu, [
        LaunchedKernel(spec("traced-qos"), is_qos=True, ipc_goal=20.0),
        LaunchedKernel(spec("traced-be")),
    ], recorder)
    sim.run(cycles)
    return recorder, sim


class TestRecorder:
    def test_one_sample_per_completed_epoch(self):
        recorder, sim = traced_run(QoSPolicy("rollover"))
        assert len(recorder.samples) == sim.epoch_index

    def test_samples_monotone_in_cycle(self):
        recorder, _sim = traced_run(QoSPolicy("rollover"))
        cycles = [sample.cycle for sample in recorder.samples]
        assert cycles == sorted(cycles)

    def test_ipc_series_positive_for_running_kernel(self):
        recorder, _sim = traced_run(QoSPolicy("rollover"))
        assert any(value > 0 for value in recorder.ipc_series(0))

    def test_records_alphas_for_qos_policy(self):
        recorder, _sim = traced_run(QoSPolicy("rollover"))
        assert 0 in recorder.samples[-1].alphas
        assert recorder.samples[-1].nonqos_goals.get(1) is not None

    def test_plain_policy_has_no_alpha(self):
        recorder, _sim = traced_run(SharingPolicy())
        assert recorder.samples[-1].alphas == {}

    def test_delegates_uses_quotas(self):
        assert TraceRecorder(QoSPolicy()).uses_quotas is True
        assert TraceRecorder(SharingPolicy()).uses_quotas is False

    def test_name_wraps_inner(self):
        assert "qos-rollover" in TraceRecorder(QoSPolicy("rollover")).name

    def test_quota_remaining_recorded(self):
        recorder, _sim = traced_run(QoSPolicy("rollover"))
        assert len(recorder.samples[-1].quota_remaining) == 2


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_resampling(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_monotone_values_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert list(line) == sorted(line)

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_ceiling_pins_scale(self):
        half = sparkline([5.0], ceiling=10.0)
        full = sparkline([5.0], ceiling=5.0)
        assert half != full


class TestRenderTimeline:
    def test_renders_all_kernels(self):
        recorder, _sim = traced_run(QoSPolicy("rollover"))
        text = render_timeline(recorder, ["alpha-kernel", "beta-kernel"],
                               goals=[20.0, None])
        assert "alpha-kernel" in text
        assert "beta-kernel" in text
        assert "goal=20.0" in text
        assert "tbs" in text

    def test_empty_trace(self):
        recorder = TraceRecorder(SharingPolicy())
        assert render_timeline(recorder, []) == "(empty trace)"
