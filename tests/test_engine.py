"""Tests for the top-level simulator engine."""

import pytest

from repro.config import GPUConfig, MemoryConfig, SMConfig
from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy


def spec(name, regs=16, **kwargs):
    defaults = dict(threads_per_tb=64, regs_per_thread=regs,
                    body_length=16, iterations_per_tb=2,
                    memory=MemoryPattern(footprint_bytes=1 << 22))
    defaults.update(kwargs)
    return KernelSpec(name=name, **defaults)


@pytest.fixture
def gpu():
    return GPUConfig(num_sms=2, num_mcs=1, epoch_length=500,
                     idle_warp_samples=10, sm=SMConfig(warp_schedulers=2))


class TestConstruction:
    def test_requires_kernels(self, gpu):
        with pytest.raises(ValueError):
            GPUSimulator(gpu, [])

    def test_requires_unique_names(self, gpu):
        launches = [LaunchedKernel(spec("dup")), LaunchedKernel(spec("dup"))]
        with pytest.raises(ValueError, match="unique"):
            GPUSimulator(gpu, launches)

    def test_qos_kernel_needs_goal(self):
        with pytest.raises(ValueError, match="ipc_goal"):
            LaunchedKernel(spec("k"), is_qos=True)

    def test_qos_goal_must_be_positive(self):
        with pytest.raises(ValueError):
            LaunchedKernel(spec("k"), is_qos=True, ipc_goal=-1.0)


class TestIsolatedRun:
    def test_progress_and_result(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("solo"))])
        sim.run(6000)
        result = sim.result()
        assert result.cycles == 6000
        kernel = result.kernels[0]
        assert kernel.name == "solo"
        assert kernel.retired_thread_insts > 0
        assert kernel.ipc == kernel.retired_thread_insts / 6000
        assert kernel.completed_tbs > 0

    def test_determinism(self, gpu):
        outcomes = []
        for _ in range(2):
            sim = GPUSimulator(gpu, [LaunchedKernel(spec("solo"))])
            sim.run(1500)
            result = sim.result()
            outcomes.append((result.kernels[0].retired_thread_insts,
                             result.kernels[0].completed_tbs,
                             result.memory_aggregate["mc_serviced"]))
        assert outcomes[0] == outcomes[1]

    def test_run_is_resumable(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("solo"))])
        sim.run(500)
        mid = sim.result().kernels[0].retired_thread_insts
        sim.run(500)
        assert sim.cycle == 1000
        assert sim.result().kernels[0].retired_thread_insts > mid

    def test_default_policy_fills_sm(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("solo"))])
        sim.setup()
        expected = spec("solo").max_tbs_per_sm(gpu.sm)
        assert sim.sms[0].tb_count[0] == expected


class TestInstructionConservation:
    def test_memory_requests_attributed(self, gpu):
        launches = [LaunchedKernel(spec("a")), LaunchedKernel(spec("b"))]
        sim = GPUSimulator(gpu, launches)
        sim.run(2000)
        result = sim.result()
        per_kernel = sum(k.memory["requests"] for k in result.kernels)
        writes = sum(k.memory["write_requests"] for k in result.kernels)
        l1_accesses = (result.memory_aggregate["l1_hits"]
                       + result.memory_aggregate["l1_misses"])
        assert per_kernel == l1_accesses + writes

    def test_total_ipc_is_sum(self, gpu):
        launches = [LaunchedKernel(spec("a")), LaunchedKernel(spec("b"))]
        sim = GPUSimulator(gpu, launches)
        sim.run(1000)
        result = sim.result()
        assert result.total_ipc == pytest.approx(
            sum(k.ipc for k in result.kernels))


class TestResidencyControl:
    def test_set_target_dispatches(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))],
                           policy=_ZeroPolicy())
        sim.setup()
        assert sim.sms[0].tb_count[0] == 0
        sim.set_tb_target(0, 0, 2)
        assert sim.sms[0].tb_count[0] == 2
        assert sim.total_tbs(0) == 2

    def test_lowering_target_evicts(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))],
                           policy=_ZeroPolicy())
        sim.setup()
        sim.set_tb_target(0, 0, 3)
        sim.set_tb_target(0, 0, 1)
        live = [tb for tb in sim.sms[0].tbs if not tb.evicting]
        assert len(live) == 1
        assert sim.preemption.has_pending

    def test_eviction_completes_and_frees(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))],
                           policy=_ZeroPolicy())
        sim.setup()
        sim.set_tb_target(0, 0, 3)
        sim.set_tb_target(0, 0, 1)
        sim.run(5000)
        assert not sim.preemption.has_pending
        assert sim.sms[0].tb_count[0] >= 1
        assert sim.result().evictions == 2

    def test_deficit_fill_balances_infeasible_targets(self, gpu):
        heavy = spec("heavy", regs=120)
        light = spec("light", regs=120)
        sim = GPUSimulator(
            gpu, [LaunchedKernel(heavy), LaunchedKernel(light)],
            policy=_ZeroPolicy())
        sim.setup()
        sim.tb_targets[0][0] = 32
        sim.tb_targets[0][1] = 32
        sim._dispatch_sm(sim.sms[0], 0)
        counts = sim.sms[0].tb_count
        assert abs(counts[0] - counts[1]) <= 1  # balanced, not first-wins

    def test_negative_target_rejected(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))])
        with pytest.raises(ValueError):
            sim.set_tb_target(0, 0, -1)


class TestEpochs:
    def test_epoch_hook_cadence(self, gpu):
        events = []

        class Recorder(SharingPolicy):
            def on_epoch_start(self, ctx, cycle, epoch_index):
                events.append((epoch_index, cycle))

        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))], Recorder())
        sim.run(2100)
        indices = [index for index, _cycle in events]
        assert indices == [0, 1, 2, 3, 4]
        assert events[1][1] == 500
        assert events[4][1] == 2000

    def test_policy_can_pull_epoch_forward(self, gpu):
        events = []

        class Early(SharingPolicy):
            def on_epoch_start(self, ctx, cycle, epoch_index):
                events.append(cycle)
                if epoch_index == 1:
                    ctx.request_epoch_at(cycle + 50)

        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))], Early())
        sim.run(1200)
        assert 550 in events

    def test_epoch_count_in_result(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a"))])
        sim.run(1600)
        assert sim.result().epochs == 3


class TestIdleSkip:
    def test_skip_matches_dense_simulation(self):
        """The idle-skip fast path must not change simulation outcomes: a
        memory-bound kernel (long idle gaps) retires the same instruction
        count as with skipping disabled via a huge always-busy co-check."""
        gpu = GPUConfig(num_sms=1, num_mcs=1, epoch_length=500,
                        sm=SMConfig(warp_schedulers=1))
        mem_spec = spec("m", mix=InstructionMix(
            alu=0.1, sfu=0.0, ldg=0.9, stg=0.0, lds=0.0), ilp=0.0)
        sim = GPUSimulator(gpu, [LaunchedKernel(mem_spec)], _OneTBPolicy())
        sim.run(3000)
        baseline = sim.result().kernels[0].retired_thread_insts

        sim2 = GPUSimulator(gpu, [LaunchedKernel(mem_spec)], _OneTBPolicy())
        for _ in range(3000):  # cycle-by-cycle, skip never engages across runs
            sim2.run(1)
        assert sim2.result().kernels[0].retired_thread_insts == baseline


class TestLiveTbAccounting:
    """The incrementally-maintained live-TB counters must always equal a
    recount over the resident TB lists."""

    @staticmethod
    def _assert_counters_match(sim):
        for sm in sim.sms:
            for kernel_idx in range(sim.num_kernels):
                recount = sum(1 for tb in sm.tbs
                              if tb.kernel_idx == kernel_idx
                              and not tb.evicting)
                assert sm.live_tb_count[kernel_idx] == recount
                assert sm.tb_count[kernel_idx] == sum(
                    1 for tb in sm.tbs if tb.kernel_idx == kernel_idx)
        for kernel_idx in range(sim.num_kernels):
            assert sim.total_tbs(kernel_idx) == sum(
                sm.live_tb_count[kernel_idx] for sm in sim.sms)

    def test_counters_after_preemption_heavy_run(self, gpu):
        from repro.kernels import get_kernel
        from repro.qos import QoSPolicy

        launches = [
            LaunchedKernel(get_kernel("sgemm"), is_qos=True, ipc_goal=120.0),
            LaunchedKernel(get_kernel("lbm")),
        ]
        sim = GPUSimulator(gpu, launches, QoSPolicy("rollover"))
        for _ in range(6):
            sim.run(1000)
            self._assert_counters_match(sim)
        assert sim.result().evictions > 0  # the run actually preempted

    def test_counters_through_explicit_target_swings(self, gpu):
        sim = GPUSimulator(gpu, [LaunchedKernel(spec("a")),
                                 LaunchedKernel(spec("b"))],
                           policy=_ZeroPolicy())
        sim.setup()
        for target in (4, 1, 6, 0, 3):
            sim.set_tb_target(0, 0, target)
            sim.set_tb_target(1, 1, target)
            sim.run(300)
            self._assert_counters_match(sim)


class TestSamplingGrid:
    def test_samples_anchor_to_epoch_grid_under_idle_skips(self):
        """Idle skips must not drift the idle-warp sampling grid: every full
        epoch observes exactly ``idle_warp_samples`` samples (the epoch
        boundary itself plus the interior grid points)."""
        gpu = GPUConfig(num_sms=1, num_mcs=1, epoch_length=500,
                        idle_warp_samples=10, sm=SMConfig(warp_schedulers=1))
        # Dependent-load-heavy single TB: long idle gaps engage the skip
        # path, which is what used to re-base the grid off-schedule.
        mem_spec = spec("m", mix=InstructionMix(
            alu=0.1, sfu=0.0, ldg=0.9, stg=0.0, lds=0.0), ilp=0.0)
        counts = []

        class Recorder(SharingPolicy):
            def setup(self, ctx):
                ctx.set_tb_target(0, 0, 1)

            def on_epoch_start(self, ctx, cycle, epoch_index):
                if epoch_index > 0:
                    counts.append(ctx.idle_samples(0))

        sim = GPUSimulator(gpu, [LaunchedKernel(mem_spec)], Recorder())
        sim.run(5000)
        assert len(counts) >= 8
        # Epoch 0 misses the boundary sample (its grid starts one interval
        # into the run); every later epoch sees the full idle_warp_samples.
        assert counts[0] == 9
        assert all(count == 10 for count in counts[1:])

    def test_skip_and_dense_runs_sample_identically(self):
        """Cycle-by-cycle stepping (skip never engages across run() calls)
        must land on the same sample grid as one long skipping run."""
        gpu = GPUConfig(num_sms=1, num_mcs=1, epoch_length=400,
                        idle_warp_samples=8, sm=SMConfig(warp_schedulers=1))
        mem_spec = spec("m", mix=InstructionMix(
            alu=0.1, sfu=0.0, ldg=0.9, stg=0.0, lds=0.0), ilp=0.0)

        def sample_counts(step):
            counts = []

            class Recorder(SharingPolicy):
                def setup(self, ctx):
                    ctx.set_tb_target(0, 0, 1)

                def on_epoch_start(self, ctx, cycle, epoch_index):
                    if epoch_index > 0:
                        counts.append(ctx.idle_samples(0))

            sim = GPUSimulator(gpu, [LaunchedKernel(mem_spec)], Recorder())
            for _ in range(0, 4000, step):
                sim.run(step)
            return counts

        assert sample_counts(4000) == sample_counts(1)


class _ZeroPolicy(SharingPolicy):
    """Start with no TBs anywhere; tests drive targets explicitly."""

    def setup(self, ctx):
        pass


class _OneTBPolicy(SharingPolicy):
    def setup(self, ctx):
        ctx.set_tb_target(0, 0, 1)
