#!/usr/bin/env python3
"""Model your own kernel and study how sharing treats it.

Shows the workload-modelling API: build a ``KernelSpec`` from first
principles (TB geometry, static resources, instruction mix, memory
behaviour), measure its isolated IPC and TLP scaling, then co-run it as a
QoS kernel against a noisy neighbour under every quota scheme.

Run:  python examples/custom_kernel.py
"""

from repro import (
    FAST_GPU,
    GPUSimulator,
    InstructionMix,
    KernelSpec,
    LaunchedKernel,
    MemoryPattern,
    QoSPolicy,
    get_kernel,
)
from repro.sim import SharingPolicy

CYCLES = 24_000

# An image-filter-style kernel: medium TBs, streaming reads with good
# coalescing and some register pressure, one barrier per tile.
my_kernel = KernelSpec(
    name="my-filter",
    threads_per_tb=128,
    regs_per_thread=40,
    smem_per_tb_bytes=6 * 1024,
    mix=InstructionMix(alu=0.62, sfu=0.04, ldg=0.18, stg=0.06, lds=0.10,
                       barrier_per_iteration=True),
    memory=MemoryPattern(footprint_bytes=48 * 1024 * 1024,
                         coalesced_fraction=0.9, reuse_fraction=0.35),
    ilp=0.55,
    divergence=0.05,
    body_length=96,
    iterations_per_tb=4,
    intensity="compute",
)


class _CappedFill(SharingPolicy):
    """Host at most ``cap`` TBs of the kernel per SM (for TLP scaling)."""

    def __init__(self, cap):
        self.cap = cap

    def setup(self, ctx):
        for sm_id in range(ctx.num_sms):
            ctx.set_tb_target(sm_id, 0, self.cap)


def isolated_ipc(spec, cap=None):
    policy = _CappedFill(cap) if cap else None
    sim = GPUSimulator(FAST_GPU, [LaunchedKernel(spec)], policy)
    sim.run(CYCLES)
    return sim.result().kernels[0].ipc


def main() -> None:
    print(f"kernel '{my_kernel.name}': {my_kernel.warps_per_tb} warps/TB, "
          f"{my_kernel.context_bytes // 1024} KB context/TB, "
          f"max {my_kernel.max_tbs_per_sm(FAST_GPU.sm)} TBs/SM\n")

    print("TLP scaling (TBs per SM -> isolated IPC):")
    for cap in (1, 2, 4, 8, my_kernel.max_tbs_per_sm(FAST_GPU.sm)):
        print(f"  {cap:2d} TBs/SM -> IPC {isolated_ipc(my_kernel, cap):7.1f}")

    iso = isolated_ipc(my_kernel)
    goal = 0.75 * iso
    print(f"\nco-run vs 'lbm' with QoS goal {goal:.1f} (75% of isolated):")
    for scheme in ("naive", "history", "elastic", "rollover"):
        sim = GPUSimulator(FAST_GPU, [
            LaunchedKernel(my_kernel, is_qos=True, ipc_goal=goal),
            LaunchedKernel(get_kernel("lbm")),
        ], QoSPolicy(scheme))
        sim.run(CYCLES)
        qos, nonqos = sim.result().kernels
        print(f"  {scheme:<10} goal {'MET ' if qos.reached_goal else 'MISS'}"
              f" ({qos.ipc / goal:5.2f}x), neighbour IPC {nonqos.ipc:6.1f}")


if __name__ == "__main__":
    main()
