#!/usr/bin/env python3
"""Quickstart: share a GPU between a QoS kernel and a best-effort kernel.

Runs ``sgemm`` (compute-intensive, QoS goal = 70 % of its isolated IPC)
together with ``lbm`` (memory-intensive, best-effort) under the paper's
Rollover quota scheme, and shows the three numbers the paper's evaluation
revolves around: whether the goal was reached, how little it was overshot
by, and how much throughput the best-effort kernel extracted from the
leftover resources.

Run:  python examples/quickstart.py
"""

from repro import FAST_GPU, GPUSimulator, LaunchedKernel, QoSPolicy, get_kernel

CYCLES = 30_000
GOAL_FRACTION = 0.70


def isolated_ipc(name: str) -> float:
    """IPC of a kernel running the GPU alone (the paper's IPC_isolated)."""
    sim = GPUSimulator(FAST_GPU, [LaunchedKernel(get_kernel(name))])
    sim.run(CYCLES)
    return sim.result().kernels[0].ipc


def main() -> None:
    print(f"machine: {FAST_GPU.num_sms} SMs, "
          f"{FAST_GPU.sm.warp_schedulers} warp schedulers/SM, "
          f"epoch = {FAST_GPU.epoch_length} cycles")

    iso_sgemm = isolated_ipc("sgemm")
    iso_lbm = isolated_ipc("lbm")
    goal = GOAL_FRACTION * iso_sgemm
    print(f"isolated IPC: sgemm {iso_sgemm:.1f}, lbm {iso_lbm:.1f}")
    print(f"QoS goal for sgemm: {goal:.1f} ({GOAL_FRACTION:.0%} of isolated)\n")

    sim = GPUSimulator(FAST_GPU, [
        LaunchedKernel(get_kernel("sgemm"), is_qos=True, ipc_goal=goal),
        LaunchedKernel(get_kernel("lbm")),
    ], QoSPolicy("rollover"))
    sim.run(CYCLES)
    result = sim.result()

    qos, nonqos = result.kernels
    print(f"co-run under Rollover QoS for {CYCLES} cycles "
          f"({result.epochs} epochs, {result.evictions} TB context switches)")
    print(f"  sgemm (QoS):  IPC {qos.ipc:7.1f}  -> goal "
          f"{'REACHED' if qos.reached_goal else 'MISSED'} "
          f"({qos.ipc / goal:.2%} of goal)")
    print(f"  lbm (non-QoS): IPC {nonqos.ipc:7.1f}  -> "
          f"{nonqos.ipc / iso_lbm:.1%} of its isolated throughput "
          f"from leftover resources")


if __name__ == "__main__":
    main()
