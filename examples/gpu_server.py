#!/usr/bin/env python3
"""A shared GPU server: three tenants, two SLOs, one GPU.

Uses the OS-level dispatcher (``repro.osched``) over the QoS-managed GPU:
an interactive inference service and a video pipeline each have periodic
deadlines; an analytics batch job is best-effort.  The server translates
each deadline into an IPC goal (Section 3.2), co-schedules everything under
Rollover, and reports per-tenant deadline attainment — the datacenter
scenario the paper's introduction motivates.

Run:  python examples/gpu_server.py
"""

from repro import FAST_GPU, get_kernel
from repro.osched import Application, GPUServer
from repro.qos import TransferModel

# Simulated wall-clock window.  At 1216 MHz this is ~40K cycles — seconds of
# pure-Python simulation; a real study would run much longer windows.
WINDOW_S = 33e-6
PERIOD_S = WINDOW_S / 8


def cycles(seconds: float) -> float:
    return seconds * FAST_GPU.core_freq_mhz * 1e6


def main() -> None:
    server = GPUServer(FAST_GPU, transfers=TransferModel.unified(),
                       scheme="rollover")

    # Tenant 1: interactive inference; each job needs ~35% of mri-q's
    # isolated rate (~500 IPC on the fast machine) sustained per period.
    server.submit(Application(
        name="inference", kernel="mri-q", period_s=PERIOD_S,
        instructions_per_job=int(0.35 * 500 * cycles(PERIOD_S))))
    # Tenant 2: video analytics on a streaming kernel, ~30% of its ~23 IPC.
    server.submit(Application(
        name="video", kernel="stencil", period_s=PERIOD_S,
        instructions_per_job=int(0.30 * 23 * cycles(PERIOD_S))))
    # Tenant 3: best-effort batch analytics.
    server.submit(Application(
        name="analytics", kernel="sgemm", period_s=PERIOD_S,
        instructions_per_job=10_000, qos=False))

    report = server.run(WINDOW_S)

    print(f"simulated {report.simulated_seconds * 1e6:.1f} us "
          f"({cycles(report.simulated_seconds):.0f} cycles) on "
          f"{FAST_GPU.num_sms} SMs\n")
    header = (f"{'tenant':<12}{'QoS':>5}{'IPC goal':>10}{'achieved':>10}"
              f"{'jobs':>6}{'dropped':>9}{'drop rate':>11}")
    print(header)
    print("-" * len(header))
    for app in report.applications:
        goal = f"{app.ipc_goal:.1f}" if app.ipc_goal else "-"
        print(f"{app.name:<12}{'yes' if app.qos else 'no':>5}{goal:>10}"
              f"{app.achieved_ipc:>10.1f}{app.jobs_due:>6}"
              f"{app.jobs_dropped:>9}{app.drop_rate:>11.1%}")


if __name__ == "__main__":
    main()
