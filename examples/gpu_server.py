#!/usr/bin/env python3
"""A shared GPU server: three tenants, two SLOs, one GPU.

Three tenants share one simulated GPU through the online serving layer
(:mod:`repro.serve`): an interactive inference service and a video pipeline
submit a job every period and must finish each job before the next one
lands; an analytics batch job is best-effort.  Periodic deadlines map onto
serving concepts directly — the period becomes a
:class:`~repro.serve.arrivals.PeriodicArrivals` stream and the deadline an
SLO in cycles — and per-tenant deadline attainment falls out of the
request records.

Migration note: earlier revisions of this example drove the OS-level
dispatcher (``repro.osched.GPUServer``), which translates each deadline
into an IPC goal and co-schedules *infinite* kernel streams under
Rollover.  The serving layer supersedes that model for request-shaped
work: each job is a finite grid launched mid-simulation
(``GPUSimulator.launch_at``) and retired when it drains, so "did the job
make its deadline" is measured directly instead of being inferred from a
sustained IPC.  ``repro.osched`` remains the right tool when tenants are
continuous kernels with throughput contracts rather than discrete jobs;
its demand predictor also powers the serving layer's SLO-feasibility
admission policy.

Run:  python examples/gpu_server.py
"""

from repro import FAST_GPU
from repro.serve import Dispatcher, PeriodicArrivals, RequestClass

# One job per tenant per period; at the fast machine's scale this keeps the
# whole window seconds of pure-Python simulation.  A real study would run
# much longer windows.
PERIOD_CYCLES = 12_000
WINDOW_CYCLES = 8 * PERIOD_CYCLES


def main() -> None:
    # Tenant 1: interactive inference — each job must complete within its
    # period.  Tenant 2: video analytics on a streaming kernel; the
    # pipeline buffers one frame, so a job may take up to two periods.
    # Tenant 3: best-effort batch analytics; its "SLO" is the whole
    # window, so attainment measures completion.
    tenants = (
        RequestClass(name="inference", kernel="mri-q",
                     slo_cycles=PERIOD_CYCLES, grid_tbs=4),
        RequestClass(name="video", kernel="stencil",
                     slo_cycles=2 * PERIOD_CYCLES, grid_tbs=1),
        RequestClass(name="analytics", kernel="sgemm",
                     slo_cycles=WINDOW_CYCLES, grid_tbs=2),
    )
    arrivals = PeriodicArrivals(tenants, PERIOD_CYCLES)

    # Deadline tenants get priority over best-effort work; the dispatcher
    # serves lower priority values first.
    dispatcher = Dispatcher(FAST_GPU, class_priority={"inference": 0,
                                                      "video": 0,
                                                      "analytics": 1})
    result = dispatcher.serve(arrivals.generate(WINDOW_CYCLES),
                              WINDOW_CYCLES)

    print(f"served {result.generated} jobs over {result.horizon_cycles} "
          f"cycles on {FAST_GPU.num_sms} SMs "
          f"({result.completed} completed, {result.unfinished} still "
          f"queued or running at the horizon)\n")
    header = (f"{'tenant':<12}{'jobs':>6}{'done':>6}{'p50 lat':>9}"
              f"{'p99 lat':>9}{'deadline met':>14}")
    print(header)
    print("-" * len(header))
    for name, row in result.summary().items():
        p50 = row["p50_latency"] if row["p50_latency"] is not None else "-"
        p99 = row["p99_latency"] if row["p99_latency"] is not None else "-"
        print(f"{name:<12}{row['requests']:>6}{row['completed']:>6}"
              f"{p50:>9}{p99:>9}{row['slo_attainment']:>14.1%}")


if __name__ == "__main__":
    main()
