#!/usr/bin/env python3
"""Watch the QoS manager converge: an epoch-by-epoch timeline.

Wraps the Rollover policy in a :class:`repro.trace.TraceRecorder` and
renders per-kernel IPC and TB-residency sparklines.  You can see the three
mechanisms of the paper acting in sequence: the quota throttle pinning the
QoS kernel's IPC to its goal, alpha briefly rising while the warm-up deficit
is repaid, and the static allocator shifting TBs until the best-effort
kernel owns the leftover TLP.

Run:  python examples/qos_timeline.py
"""

from repro import FAST_GPU, GPUSimulator, LaunchedKernel, QoSPolicy, get_kernel
from repro.trace import TraceRecorder, render_timeline

CYCLES = 30_000
QOS, NONQOS = "mri-q", "stencil"
GOAL_FRACTION = 0.60


def isolated_ipc(name: str) -> float:
    sim = GPUSimulator(FAST_GPU, [LaunchedKernel(get_kernel(name))])
    sim.run(CYCLES)
    return sim.result().kernels[0].ipc


def main() -> None:
    goal = GOAL_FRACTION * isolated_ipc(QOS)
    recorder = TraceRecorder(QoSPolicy("rollover"))
    sim = GPUSimulator(FAST_GPU, [
        LaunchedKernel(get_kernel(QOS), is_qos=True, ipc_goal=goal),
        LaunchedKernel(get_kernel(NONQOS)),
    ], recorder)
    sim.run(CYCLES)

    print(render_timeline(recorder, [QOS, NONQOS], goals=[goal, None]))
    print()
    last = recorder.samples[-1]
    result = sim.result()
    print(f"final: {QOS} IPC {result.kernels[0].ipc:.1f} "
          f"(goal {goal:.1f}, alpha {last.alphas.get(0, 1.0):.2f}), "
          f"{NONQOS} IPC {result.kernels[1].ipc:.1f} "
          f"(artificial goal {last.nonqos_goals.get(1, 0.0):.1f})")
    print(f"TB context switches: {result.evictions}")


if __name__ == "__main__":
    main()
