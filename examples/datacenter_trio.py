#!/usr/bin/env python3
"""Three-way sharing with two QoS kernels: fine-grained QoS vs Spart.

Reproduces the paper's hardest configuration (Figure 6c / 8c) on one
concrete trio: two QoS kernels, each asked for 40 % of its isolated IPC,
plus one best-effort kernel.  Spatial partitioning must carve 4 SMs three
ways and steer two goals with one coarse knob; the fine-grained manager
steers per-cycle quotas inside every SM.

Run:  python examples/datacenter_trio.py
"""

from repro import (
    FAST_GPU,
    GPUSimulator,
    LaunchedKernel,
    QoSPolicy,
    SpartPolicy,
    get_kernel,
)

CYCLES = 30_000
GOAL_FRACTION = 0.40
TRIO = ("mri-q", "spmv", "sgemm")  # QoS, QoS, best-effort


def isolated(name: str) -> float:
    sim = GPUSimulator(FAST_GPU, [LaunchedKernel(get_kernel(name))])
    sim.run(CYCLES)
    return sim.result().kernels[0].ipc


def run_policy(policy, goals):
    launches = [
        LaunchedKernel(get_kernel(TRIO[0]), is_qos=True, ipc_goal=goals[0]),
        LaunchedKernel(get_kernel(TRIO[1]), is_qos=True, ipc_goal=goals[1]),
        LaunchedKernel(get_kernel(TRIO[2])),
    ]
    sim = GPUSimulator(FAST_GPU, launches, policy)
    sim.run(CYCLES)
    return sim.result()


def main() -> None:
    iso = {name: isolated(name) for name in TRIO}
    goals = [GOAL_FRACTION * iso[TRIO[0]], GOAL_FRACTION * iso[TRIO[1]]]
    print(f"trio: {TRIO[0]}, {TRIO[1]} (QoS @ {GOAL_FRACTION:.0%} each) "
          f"+ {TRIO[2]} (best effort)\n")

    header = f"{'policy':<22}{TRIO[0]:>12}{TRIO[1]:>12}{TRIO[2] + ' tput':>16}"
    print(header)
    print("-" * len(header))
    for label, policy in (("Spart (baseline)", SpartPolicy()),
                          ("Rollover (paper)", QoSPolicy("rollover"))):
        result = run_policy(policy, goals)
        q1, q2, best_effort = result.kernels
        flags = ["MET" if k.reached_goal else "miss" for k in (q1, q2)]
        tput = best_effort.ipc / iso[TRIO[2]]
        print(f"{label:<22}"
              f"{q1.ipc / goals[0]:>8.2f} {flags[0]:<4}"
              f"{q2.ipc / goals[1]:>7.2f} {flags[1]:<4}"
              f"{tput:>12.1%}")
    print("\ncolumns 2-3: achieved IPC / goal; column 4: best-effort "
          "throughput vs isolated")


if __name__ == "__main__":
    main()
