#!/usr/bin/env python3
"""Walkthrough: online serving on the simulated GPU, end to end.

The paper's evaluation shares the GPU between kernels pinned at cycle 0;
this example runs the datacenter counterpart — an *open-loop* request
stream against one machine — and shows each stage of the serving stack
(:mod:`repro.serve`):

1. **Arrivals**: a seeded Poisson process over two service classes.  The
   stream is a plain tuple of requests — same seed, same stream, on every
   machine and engine core.
2. **Dispatch**: per-class FIFO queues in front of the simulator.  Each
   admitted request becomes a finite-grid kernel launched mid-simulation;
   when its last thread block drains, the engine retires it and the freed
   slot is refilled from the queues.
3. **Admission control**: the same stream replayed under no shedding, a
   queue cap, and SLO-feasibility admission (which learns service times
   online and rejects requests that would blow their SLO anyway).
4. **Metrics**: per-request records reduced to per-class latency
   percentiles and SLO attainment, then round-tripped through the JSONL
   trace format the ``repro serve`` CLI emits.

Run:  python examples/online_serving.py
"""

import io

from repro import FAST_GPU
from repro.serve import (Dispatcher, PoissonArrivals, QueueCap, RequestClass,
                         SLOFeasibility, read_request_trace,
                         write_request_trace)

HORIZON_CYCLES = 96_000


def main() -> None:
    # --- 1. a seeded arrival stream over two service classes ------------
    classes = (
        RequestClass(name="interactive", kernel="mri-q",
                     slo_cycles=20_000, grid_tbs=4),
        RequestClass(name="batch", kernel="lbm",
                     slo_cycles=80_000, grid_tbs=4, weight=0.5),
    )
    arrivals = PoissonArrivals(classes, mean_interarrival_cycles=4_000,
                               seed=11)
    requests = arrivals.generate(HORIZON_CYCLES)
    print(f"generated {len(requests)} requests over {HORIZON_CYCLES} "
          f"cycles (seed {arrivals.seed}; rerunning reproduces them "
          f"byte for byte)\n")

    # --- 2 + 3. the same stream under three admission policies ----------
    policies = (("always admit", None),
                ("queue cap 2", QueueCap(2)),
                ("SLO feasibility", SLOFeasibility()))
    header = (f"{'admission':<16}{'admitted':>9}{'rejected':>9}"
              f"{'completed':>10}{'int p99':>9}{'int SLO':>9}")
    print(header)
    print("-" * len(header))
    results = {}
    for label, admission in policies:
        dispatcher = Dispatcher(FAST_GPU, admission=admission,
                                max_concurrent=2)
        result = dispatcher.serve(requests, HORIZON_CYCLES)
        results[label] = result
        row = result.summary()["interactive"]
        p99 = row["p99_latency"] if row["p99_latency"] is not None else "-"
        print(f"{label:<16}{result.admitted:>9}{result.rejected:>9}"
              f"{result.completed:>10}{p99:>9}"
              f"{row['slo_attainment']:>9.1%}")
    print("\nshedding load does not change what the admitted requests "
          "experience by luck: the\nsimulator is deterministic, so any "
          "difference above is the admission policy's doing")

    # --- 4. the JSONL request trace ------------------------------------
    stream = io.StringIO()
    write_request_trace(stream, results["always admit"].records,
                        meta={"example": "online_serving"})
    stream.seek(0)
    meta, records = read_request_trace(stream)
    print(f"\nround-tripped {len(records)} request records through JSONL "
          f"(schema v{meta['request_schema_version']})")


if __name__ == "__main__":
    main()
