#!/usr/bin/env python3
"""Datacenter scenario: a latency-critical video kernel + batch training.

This example exercises the full Section 3.2 pipeline: an *application-level*
QoS requirement (a frame rate) is translated into an architecture-level IPC
goal — accounting for PCIe transfer time of each frame — and handed to the
GPU's QoS manager, while a best-effort DNN-style kernel (modelled by
``sgemm``) soaks up the remaining resources.

The paper's motivating claim is that this is better than both
time-multiplexing (the video kernel would wait behind long training kernels)
and spatial partitioning (an integer number of SMs is too coarse).

Run:  python examples/video_analytics.py
"""

from repro import (
    FAST_GPU,
    GPUSimulator,
    LaunchedKernel,
    QoSPolicy,
    QoSRequirement,
    TransferModel,
    get_kernel,
    translate_qos_goal,
)

CYCLES = 30_000

# The video pipeline processes one 1080p frame per kernel launch at 30 FPS.
# One frame of packed RGB is ~6.2 MB over PCIe each way.
FRAME_BYTES = 1920 * 1080 * 3
FPS = 30.0

# The per-frame kernel length is known from profiling (Section 3.2 notes
# datacenter workloads are stable enough to predict).  We pick a length that
# puts the required IPC in the achievable range of the fast machine.
INSTRUCTIONS_PER_FRAME = 20_000_000


def main() -> None:
    requirement = QoSRequirement.from_frame_rate(
        FPS, instructions=INSTRUCTIONS_PER_FRAME,
        input_bytes=FRAME_BYTES, output_bytes=FRAME_BYTES // 4)
    transfers = TransferModel()  # discrete GPU: PCIe 3.0 x16

    ipc_goal = translate_qos_goal(requirement, FAST_GPU.core_freq_mhz,
                                  transfers)
    budget_ms = requirement.deadline_s * 1e3
    copy_ms = (transfers.transfer_time_s(requirement.input_bytes)
               + transfers.transfer_time_s(requirement.output_bytes)) * 1e3
    print(f"frame budget {budget_ms:.2f} ms, PCIe copies {copy_ms:.2f} ms")
    print(f"=> required GPU-side IPC: {ipc_goal:.1f}\n")

    # 'stencil' stands in for the per-frame video kernel (streaming,
    # memory-heavy); 'sgemm' for the co-located training job.
    video = LaunchedKernel(get_kernel("stencil"), is_qos=True,
                           ipc_goal=ipc_goal)
    training = LaunchedKernel(get_kernel("sgemm"))

    sim = GPUSimulator(FAST_GPU, [video, training], QoSPolicy("rollover"))
    sim.run(CYCLES)
    result = sim.result()

    video_result, training_result = result.kernels
    achieved_fps = FPS * video_result.ipc / ipc_goal
    print(f"video kernel:    IPC {video_result.ipc:6.1f} "
          f"(goal {ipc_goal:.1f}) -> sustainable rate ~{achieved_fps:.1f} FPS "
          f"[{'OK' if video_result.reached_goal else 'FRAME DROPS'}]")
    print(f"training kernel: IPC {training_result.ipc:6.1f} on leftover "
          f"resources")
    print(f"TB context switches paid: {result.evictions} "
          f"({result.eviction_stall_cycles} stall cycles)")


if __name__ == "__main__":
    main()
