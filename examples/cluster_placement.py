#!/usr/bin/env python3
"""Fleet-level scheduling on top of per-GPU QoS (the Baymax/Mystic layer).

Six tenants, two GPUs: the cluster scheduler places applications with an
interference-aware score (never stack two bandwidth-saturating tenants;
spread QoS demand), then validates every placement by actually simulating
each GPU under the paper's Rollover policy and reporting deadline drops.
An online demand predictor shows how job sizes would be learned rather
than declared (Section 3.2's prediction assumption).

Run:  python examples/cluster_placement.py
"""

from repro import FAST_GPU, get_kernel
from repro.osched import Application, ClusterScheduler, OnlineDemandPredictor
from repro.qos import TransferModel

WINDOW_S = 25e-6
PERIOD_S = WINDOW_S / 6


def cycles(seconds: float) -> float:
    return seconds * FAST_GPU.core_freq_mhz * 1e6


def qos_app(name: str, kernel: str, share: float, peak_ipc: float):
    return Application(name, kernel, period_s=PERIOD_S,
                       instructions_per_job=int(share * peak_ipc
                                                * cycles(PERIOD_S)))


def main() -> None:
    # Demand prediction: the runtime learns per-job sizes from history.
    predictor = OnlineDemandPredictor()
    for observed in (19.8e5, 21.2e5, 20.4e5, 19.9e5):
        predictor.observe("video-svc", observed)
    estimate = predictor.estimate("video-svc")
    print(f"predictor: video-svc needs ~{estimate.mean / 1e5:.1f}e5 "
          f"insts/job (+{estimate.with_margin() - estimate.mean:.0f} margin "
          f"after {estimate.samples} jobs)\n")

    tenants = [
        qos_app("infer-a", "mri-q", 0.30, 500),
        qos_app("infer-b", "sgemm", 0.30, 400),
        qos_app("video-a", "stencil", 0.30, 23),
        qos_app("video-b", "lbm", 0.30, 17),
        Application("batch-a", "tpacf", PERIOD_S, 10_000, qos=False),
        Application("batch-b", "spmv", PERIOD_S, 10_000, qos=False),
    ]

    scheduler = ClusterScheduler([FAST_GPU, FAST_GPU],
                                 transfers=TransferModel.unified())
    report = scheduler.run(tenants, seconds=WINDOW_S)

    print(f"placement over 2 GPUs ({FAST_GPU.num_sms} SMs each):")
    for gpu_index, gpu_report in enumerate(report.gpu_reports):
        if gpu_report is None:
            print(f"  GPU{gpu_index}: idle")
            continue
        print(f"  GPU{gpu_index}:")
        for app in gpu_report.applications:
            flavour = "QoS " if app.qos else "best"
            print(f"    {app.name:<10} [{flavour}] IPC {app.achieved_ipc:7.1f}"
                  f"  drops {app.jobs_dropped}/{app.jobs_due}")
    print(f"\nSLO violations (QoS drops): {report.qos_drops}; "
          f"best-effort jobs missed: "
          f"{report.total_drops - report.qos_drops}")


if __name__ == "__main__":
    main()
