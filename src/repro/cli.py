"""Command-line interface: regenerate any paper figure/table.

Examples::

    repro-gpu-qos list
    repro-gpu-qos fig06a
    repro-gpu-qos fig09 --preset fast
    repro-gpu-qos all --preset fast -o results/
    repro-gpu-qos fig06a --workers 8          # sweep fan-out width
    repro-gpu-qos fig06a --no-cache           # skip the persistent store
    repro-gpu-qos cache stats                 # inspect the persistent store
    repro-gpu-qos cache clear
    repro-gpu-qos exp list                    # registered sweep experiments
    repro-gpu-qos exp resume exp-0123abcd4567 # finish an interrupted sweep
    repro-gpu-qos trace mri-q lbm -o case.jsonl   # per-epoch telemetry
    repro-gpu-qos serve --load 2000 -o run.jsonl  # online serving case
    repro-gpu-qos lint --strict               # static invariant checks
    repro-gpu-qos controllers compare         # SLO controller evaluation
    repro-gpu-qos controllers bench --quick   # CI smoke for controllers
    python -m repro fig14

Environment knobs: ``REPRO_WORKERS`` sets the default process-pool width,
``REPRO_CACHE`` relocates (path) or disables (``0``) the persistent case
cache, ``REPRO_EXPDB`` does the same for the SQLite experiment store.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.config import ENGINE_CORES
from repro.harness.experiments import ExperimentSuite
from repro.harness.presets import experiment_preset


def _apply_engine_core(preset, engine_core: Optional[str]):
    """Return the preset with its GPU's simulation core overridden.

    The choices come from :data:`repro.config.ENGINE_CORES` — the same
    registry ``GPUConfig`` validates against — so the CLI and the config
    layer cannot drift apart.
    """
    if engine_core is None or engine_core == preset.gpu.engine_core:
        return preset
    import dataclasses
    return dataclasses.replace(preset,
                               gpu=preset.gpu.scaled(engine_core=engine_core))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos",
        description="Regenerate the evaluation of 'Quality of Service Support "
                    "for Fine-Grained Sharing on GPUs' (ISCA 2017)")
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig06a, table1, sec48_history), "
             "'all', 'list', 'cache', 'exp', 'trace', 'serve', 'lint', "
             "or 'controllers'")
    parser.add_argument(
        "action", nargs="?", default=None,
        help="subcommand for 'cache': stats or clear")
    parser.add_argument("--preset", default="fast",
                        choices=("fast", "paper", "smoke"),
                        help="experiment scale (default: fast)")
    parser.add_argument("--engine-core", default=None, choices=ENGINE_CORES,
                        help="override the preset's simulation core "
                             "(default: the preset's engine_core)")
    parser.add_argument("-o", "--output-dir", default=None,
                        help="also write each result table to this directory")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for case sweeps "
                             "(default: REPRO_WORKERS or cpu_count-1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent case cache")
    return parser


def _cache_command(action: Optional[str]) -> int:
    from repro.harness.cache import CaseCache, cache_disabled_by_env

    if action not in ("stats", "clear"):
        print("usage: repro-gpu-qos cache {stats|clear}", file=sys.stderr)
        return 2
    if cache_disabled_by_env():
        print("persistent cache disabled by REPRO_CACHE", file=sys.stderr)
        return 0
    cache = CaseCache()
    if action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.path}")
        return 0
    for key, value in cache.stats().items():
        print(f"{key}: {value}")
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    from repro.harness.runner import POLICY_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos trace",
        description="Run one co-run case with engine telemetry enabled and "
                    "write the per-epoch record stream as JSONL")
    parser.add_argument(
        "kernels", nargs="+",
        help="kernel names, QoS kernels first (e.g. 'mri-q lbm')")
    parser.add_argument("--qos", type=int, default=1, metavar="N",
                        help="how many leading kernels are QoS kernels "
                             "(default: 1)")
    parser.add_argument("--goal", type=float, default=0.5, metavar="FRAC",
                        help="QoS goal as a fraction of isolated IPC "
                             "(default: 0.5)")
    parser.add_argument("--policy", default="rollover", choices=POLICY_NAMES,
                        help="sharing scheme (default: rollover)")
    parser.add_argument("--preset", default="fast",
                        choices=("fast", "paper", "smoke"),
                        help="machine/scale preset (default: fast)")
    parser.add_argument("--engine-core", default=None, choices=ENGINE_CORES,
                        help="override the preset's simulation core "
                             "(default: the preset's engine_core)")
    parser.add_argument("-o", "--output", default=None,
                        help="trace file path (default: stdout)")
    return parser


def _trace_command(argv: Sequence[str]) -> int:
    from repro.harness.runner import CaseRunner
    from repro.trace.jsonl import write_trace

    args = build_trace_parser().parse_args(argv)
    if not 1 <= args.qos <= len(args.kernels):
        print("error: --qos must be between 1 and the kernel count",
              file=sys.stderr)
        return 2
    if len(args.kernels) < 2 and args.qos >= len(args.kernels):
        print("error: need at least one non-QoS kernel to share with",
              file=sys.stderr)
        return 2
    preset = _apply_engine_core(experiment_preset(args.preset),
                                args.engine_core)
    qos_flags = tuple(i < args.qos for i in range(len(args.kernels)))
    goal_fractions = tuple(args.goal if flag else None for flag in qos_flags)

    runner = CaseRunner(preset.gpu, preset.cycles, telemetry=True)
    record = runner.run_case(tuple(args.kernels), qos_flags, goal_fractions,
                             args.policy)
    meta = {
        "kernels": list(args.kernels),
        "qos": list(qos_flags),
        "goal_fraction": args.goal,
        "policy": args.policy,
        "preset": args.preset,
        "cycles": preset.cycles,
        "warmup_cycles": runner.warmup_cycles,
    }
    if args.output:
        with open(args.output, "w") as stream:
            count = write_trace(stream, record.telemetry, meta=meta)
        print(f"wrote {count} epoch records to {args.output}",
              file=sys.stderr)
    else:
        count = write_trace(sys.stdout, record.telemetry, meta=meta)
    for outcome in record.kernels:
        role = "QoS" if outcome.is_qos else "non-QoS"
        goal = (f", goal {'MET' if outcome.reached else 'MISSED'}"
                if outcome.is_qos else "")
        print(f"[{outcome.name}: {role}, IPC {outcome.ipc:.1f}{goal}]",
              file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # e.g. `repro-gpu-qos cache stats | head -1`
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # 'trace', 'exp', 'lint', 'controllers' and 'serve' have their own
    # option grammars; dispatch before the main parse.
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "exp":
        from repro.harness.expcli import main as exp_main
        return exp_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "controllers":
        from repro.controllers.cli import main as controllers_main
        return controllers_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in ExperimentSuite.EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.experiment == "cache":
        return _cache_command(args.action)

    preset = _apply_engine_core(experiment_preset(args.preset),
                                args.engine_core)
    suite = ExperimentSuite(preset, workers=args.workers,
                            cache=None if args.no_cache else "default")
    print(suite.preset.describe(), file=sys.stderr)
    if args.experiment == "all":
        experiment_ids = list(ExperimentSuite.EXPERIMENTS)
    else:
        experiment_ids = [args.experiment]

    output_dir = pathlib.Path(args.output_dir) if args.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in experiment_ids:
        # Elapsed-time display only; never feeds a result.
        started = time.time()  # repro: noqa=DET001
        result = suite.run(experiment_id)
        elapsed = time.time() - started  # repro: noqa=DET001
        print()
        print(result.table)
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]",
              file=sys.stderr)
        if output_dir:
            path = output_dir / f"{result.experiment_id}.txt"
            path.write_text(result.table + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
