"""Command-line interface: regenerate any paper figure/table.

Examples::

    repro-gpu-qos list
    repro-gpu-qos fig06a
    repro-gpu-qos fig09 --preset fast
    repro-gpu-qos all --preset fast -o results/
    repro-gpu-qos fig06a --workers 8          # sweep fan-out width
    repro-gpu-qos fig06a --no-cache           # skip the persistent store
    repro-gpu-qos cache stats                 # inspect the persistent store
    repro-gpu-qos cache clear
    python -m repro fig14

Environment knobs: ``REPRO_WORKERS`` sets the default process-pool width,
``REPRO_CACHE`` relocates (path) or disables (``0``) the persistent case
cache.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.harness.experiments import ExperimentSuite
from repro.harness.presets import experiment_preset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos",
        description="Regenerate the evaluation of 'Quality of Service Support "
                    "for Fine-Grained Sharing on GPUs' (ISCA 2017)")
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig06a, table1, sec48_history), "
             "'all', 'list', or 'cache'")
    parser.add_argument(
        "action", nargs="?", default=None,
        help="subcommand for 'cache': stats or clear")
    parser.add_argument("--preset", default="fast",
                        choices=("fast", "paper", "smoke"),
                        help="experiment scale (default: fast)")
    parser.add_argument("-o", "--output-dir", default=None,
                        help="also write each result table to this directory")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for case sweeps "
                             "(default: REPRO_WORKERS or cpu_count-1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent case cache")
    return parser


def _cache_command(action: Optional[str]) -> int:
    from repro.harness.cache import CaseCache, cache_disabled_by_env

    if action not in ("stats", "clear"):
        print("usage: repro-gpu-qos cache {stats|clear}", file=sys.stderr)
        return 2
    if cache_disabled_by_env():
        print("persistent cache disabled by REPRO_CACHE", file=sys.stderr)
        return 0
    cache = CaseCache()
    if action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {cache.path}")
        return 0
    for key, value in cache.stats().items():
        print(f"{key}: {value}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # e.g. `repro-gpu-qos cache stats | head -1`
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in ExperimentSuite.EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.experiment == "cache":
        return _cache_command(args.action)

    suite = ExperimentSuite(experiment_preset(args.preset),
                            workers=args.workers,
                            cache=None if args.no_cache else "default")
    print(suite.preset.describe(), file=sys.stderr)
    if args.experiment == "all":
        experiment_ids = list(ExperimentSuite.EXPERIMENTS)
    else:
        experiment_ids = [args.experiment]

    output_dir = pathlib.Path(args.output_dir) if args.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in experiment_ids:
        started = time.time()
        result = suite.run(experiment_id)
        elapsed = time.time() - started
        print()
        print(result.table)
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]",
              file=sys.stderr)
        if output_dir:
            path = output_dir / f"{result.experiment_id}.txt"
            path.write_text(result.table + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
