"""Command-line interface: regenerate any paper figure/table.

Examples::

    repro-gpu-qos list
    repro-gpu-qos fig06a
    repro-gpu-qos fig09 --preset fast
    repro-gpu-qos all --preset fast -o results/
    python -m repro fig14
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.harness.experiments import ExperimentSuite
from repro.harness.presets import experiment_preset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos",
        description="Regenerate the evaluation of 'Quality of Service Support "
                    "for Fine-Grained Sharing on GPUs' (ISCA 2017)")
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig06a, table1, sec48_history), "
             "'all', or 'list'")
    parser.add_argument("--preset", default="fast",
                        choices=("fast", "paper", "smoke"),
                        help="experiment scale (default: fast)")
    parser.add_argument("-o", "--output-dir", default=None,
                        help="also write each result table to this directory")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in ExperimentSuite.EXPERIMENTS:
            print(experiment_id)
        return 0

    suite = ExperimentSuite(experiment_preset(args.preset))
    print(suite.preset.describe(), file=sys.stderr)
    if args.experiment == "all":
        experiment_ids = list(ExperimentSuite.EXPERIMENTS)
    else:
        experiment_ids = [args.experiment]

    output_dir = pathlib.Path(args.output_dir) if args.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in experiment_ids:
        started = time.time()
        result = suite.run(experiment_id)
        elapsed = time.time() - started
        print()
        print(result.table)
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]",
              file=sys.stderr)
        if output_dir:
            path = output_dir / f"{result.experiment_id}.txt"
            path.write_text(result.table + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
