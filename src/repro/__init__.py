"""repro — reproduction of *Quality of Service Support for Fine-Grained
Sharing on GPUs* (Wang et al., ISCA 2017).

A pure-Python cycle-level simulator of a multitasking GPU with the paper's
fine-grained QoS mechanisms (quota-based dynamic management + static TB
allocation over Simultaneous-Multikernel sharing), the Spart spatial
partitioning baseline, synthetic Parboil workload models, a GPUWattch-style
power model, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (FAST_GPU, GPUSimulator, LaunchedKernel, QoSPolicy,
                       get_kernel)

    kernels = [
        LaunchedKernel(get_kernel("sgemm"), is_qos=True, ipc_goal=120.0),
        LaunchedKernel(get_kernel("lbm")),
    ]
    sim = GPUSimulator(FAST_GPU, kernels, QoSPolicy("rollover"))
    sim.run(50_000)
    for kernel in sim.result().kernels:
        print(kernel.name, kernel.ipc, kernel.reached_goal)
"""

from repro.config import (
    FAST_GPU,
    GPUConfig,
    LatencyConfig,
    MemoryConfig,
    PAPER_GPU,
    PASCAL56_GPU,
    PreemptionConfig,
    SMConfig,
    preset,
)
from repro.kernels import (
    InstructionMix,
    KernelSpec,
    MemoryPattern,
    PARBOIL,
    PARBOIL_NAMES,
    get_kernel,
)
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy, SimulationResult
from repro.qos import (
    QoSPolicy,
    QoSRequirement,
    TransferModel,
    translate_qos_goal,
    scheme_by_name,
)
from repro.baselines import SpartPolicy
from repro.power import PowerModel

__version__ = "1.0.0"

__all__ = [
    "FAST_GPU",
    "PAPER_GPU",
    "PASCAL56_GPU",
    "GPUConfig",
    "SMConfig",
    "MemoryConfig",
    "LatencyConfig",
    "PreemptionConfig",
    "preset",
    "InstructionMix",
    "KernelSpec",
    "MemoryPattern",
    "PARBOIL",
    "PARBOIL_NAMES",
    "get_kernel",
    "GPUSimulator",
    "LaunchedKernel",
    "SharingPolicy",
    "SimulationResult",
    "QoSPolicy",
    "QoSRequirement",
    "TransferModel",
    "translate_qos_goal",
    "scheme_by_name",
    "SpartPolicy",
    "PowerModel",
    "__version__",
]
