"""The :class:`QuotaController` seam — pluggable SLO control laws.

The paper's four quota schemes share one fixed control law: the
history-based alpha of Section 3.4.2 scales each QoS kernel's epoch quota
by ``max(goal / cumulative_ipc, 1)``.  The ROADMAP's SLO-controller item
asks for that law to become *pluggable*, so PID and model-predictive
controllers (datacenter-style SLO tracking, cf. Hummingbird and
arXiv 2005.02088) can drive the same quota machinery.

A :class:`QuotaController` owns exactly one decision: given the closing
epoch's measurement (the frozen :class:`~repro.sim.policy.EpochView`,
observed through the :class:`~repro.sim.policy.PolicyContext`), what
*quota scale* should each QoS kernel get next epoch?  The scale multiplies
``ipc_goal * epoch_length`` — scale 1.0 requests exactly the goal's worth
of instructions; scale 2.0 requests a catch-up double grant.  Everything
else — quota distribution across SMs, boundary carry accounting (the
:class:`~repro.qos.quota.QuotaScheme`), non-QoS goal search, TB
reallocation — stays in :class:`~repro.qos.manager.QoSPolicy`, which is
the plant interface every controller shares.

:class:`SchemeController` adapts the paper's law behind the seam with
float-for-float identical arithmetic (the golden differential tests pin
this), so ``naive``/``history``/``elastic``/``rollover`` runs are
bit-identical before and after the adaptation.

Controllers are engine-independent by construction: this package may not
import :mod:`repro.sim.engine` (enforced by the LAY001 import contract)
and sees the machine only through the context.  Controller state is pure
function-of-inputs — no clocks, no RNG — so cached case records stay
replayable; gains live in :class:`repro.config.ControllerConfig` so they
hash into persistent cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.config import ControllerConfig, GPUConfig
from repro.sim.policy import EpochView, PolicyContext

#: Upper bound on the quota scale shared by every controller (Section 3.4.3
#: observes that more aggressive alpha adjustment lowers total throughput).
#: :data:`repro.qos.manager.ALPHA_CAP` re-exports this for compatibility.
ALPHA_CAP = 8.0


@dataclass(frozen=True)
class ControllerState:
    """One QoS kernel's controller internals for one epoch, for telemetry.

    ``error`` is the normalised goal residual the controller acted on,
    ``integral`` the accumulated (anti-windup-clamped) residual for
    integral-action controllers, and ``prediction`` the model-predicted
    epoch IPC for predictive controllers; fields a controller does not
    compute stay ``None``.
    """

    error: Optional[float] = None
    integral: Optional[float] = None
    prediction: Optional[float] = None


#: State reported for kernels a controller holds no internals for.
EMPTY_STATE = ControllerState()


class QuotaController:
    """Base quota controller: a constant scale of 1.0 (quota == goal).

    Lifecycle: the owning :class:`~repro.qos.manager.QoSPolicy` calls
    :meth:`start` once at policy setup, then :meth:`on_epoch` at every
    epoch boundary after measurement; the returned mapping must contain a
    scale for every QoS kernel index.  :meth:`state` exposes the
    controller's internals for the telemetry stream (recording is
    observational — a controller must never behave differently because
    telemetry is on).
    """

    name = "constant"

    def __init__(self) -> None:
        self.qos_indices: Sequence[int] = ()
        self.goals: Mapping[int, float] = {}
        self.tuning: ControllerConfig = ControllerConfig()

    def start(self, config: GPUConfig, qos_indices: Sequence[int],
              goals: Mapping[int, float]) -> None:
        """Bind the controller to its plant: machine config, QoS kernel
        indices, and their absolute IPC goals."""
        self.qos_indices = tuple(qos_indices)
        self.goals = dict(goals)
        self.tuning = config.controller

    def on_epoch(self, ctx: PolicyContext, view: EpochView) -> Dict[int, float]:
        """Quota scale per QoS kernel for the epoch that just opened."""
        return {idx: 1.0 for idx in self.qos_indices}

    def state(self, kernel_idx: int) -> ControllerState:
        """Telemetry snapshot of the controller's internals for a kernel."""
        return EMPTY_STATE

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SchemeController(QuotaController):
    """The paper's history-based law behind the controller seam.

    Reproduces :meth:`QoSPolicy._update_alphas` exactly — same
    expressions, same operand order, same cap — so the four paper schemes
    adapted onto this controller stay bit-identical to the pre-seam
    implementation.  ``use_history=False`` is the Naïve family's fixed
    scale of 1.0.
    """

    name = "scheme"

    def __init__(self, use_history: bool = True,
                 alpha_cap: float = ALPHA_CAP) -> None:
        super().__init__()
        self.use_history = use_history
        self.alpha_cap = alpha_cap

    def on_epoch(self, ctx: PolicyContext, view: EpochView) -> Dict[int, float]:
        if not self.use_history:
            return {idx: 1.0 for idx in self.qos_indices}
        scales: Dict[int, float] = {}
        for idx in self.qos_indices:
            history = view.cumulative_ipc[idx]
            if history <= 0:
                scales[idx] = self.alpha_cap
            else:
                scales[idx] = min(self.alpha_cap,
                                  max(1.0, self.goals[idx] / history))
        return scales


def history_fallback_scale(goal: float, cumulative_ipc: float,
                           alpha_cap: float) -> float:
    """The Section 3.4.2 law as a free function (the MPC fallback path)."""
    if cumulative_ipc <= 0:
        return alpha_cap
    return min(alpha_cap, max(1.0, goal / cumulative_ipc))
