"""Model-predictive quota control: fit, predict, pick, fall back.

Every epoch the controller records what the plant actually did — the quota
scale it applied and the per-epoch IPC that resulted — into a short history
ring (``mpc_history`` epochs).  At each boundary it:

1. **fits** a one-step linear plant model ``ipc ~= a + b * scale`` per QoS
   kernel by least squares over the ring (and a companion model of the
   aggregate non-QoS IPC against the same scale, which captures how hard
   boosting the QoS kernel squeezes everyone else);
2. **predicts** next epoch's IPC for ``mpc_candidates`` equally spaced
   candidate scales in ``[alpha_floor, alpha_cap]``;
3. **picks** the candidate minimising predicted goal miss plus
   ``mpc_overshoot_weight`` times predicted overshoot, subject to the
   non-QoS throughput floor (predicted aggregate non-QoS IPC at least
   ``mpc_nonqos_floor`` of its observed peak) — smaller scales win ties,
   so the controller never burns non-QoS throughput for nothing;
4. **falls back** to the History law (Section 3.4.2) while the model is
   degenerate: fewer than ``mpc_min_points`` ring entries, no variance in
   the applied scales (nothing to regress on), or a non-positive fitted
   slope (more quota should never mean less IPC; a fit saying otherwise
   is noise).

The ring is controller-internal state, deliberately *not* read from the
telemetry stream: controllers must behave identically with telemetry on
and off.  All knobs live in :class:`repro.config.ControllerConfig`, so
they participate in persistent case-cache keys.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controllers.base import (
    ControllerState,
    QuotaController,
    history_fallback_scale,
)
from repro.sim.policy import EpochView, PolicyContext


def fit_line(points: List[Tuple[float, float]]) -> Optional[Tuple[float, float]]:
    """Least-squares ``(intercept, slope)`` of y on x, or None when the x
    values carry (numerically) no variance to regress on."""
    count = len(points)
    if count < 2:
        return None
    mean_x = sum(x for x, _y in points) / count
    mean_y = sum(y for _x, y in points) / count
    var_x = sum((x - mean_x) ** 2 for x, _y in points)
    if var_x <= 1e-12 * count:
        return None
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    slope = cov / var_x
    return mean_y - slope * mean_x, slope


class MPCQuotaController(QuotaController):
    """Short-horizon linear MPC over the quota scale, History fallback."""

    name = "mpc"

    def __init__(self) -> None:
        super().__init__()
        #: Per-kernel ring of (applied scale, measured epoch IPC).
        self._ring: Dict[int, List[Tuple[float, float]]] = {}
        #: Ring of (applied mean QoS scale, aggregate non-QoS epoch IPC).
        self._nonqos_ring: List[Tuple[float, float]] = []
        self._applied: Dict[int, float] = {}
        self._state: Dict[int, ControllerState] = {}
        self._nonqos_indices: Tuple[int, ...] = ()

    def start(self, config, qos_indices, goals) -> None:
        super().start(config, qos_indices, goals)
        self._ring = {idx: [] for idx in self.qos_indices}
        self._nonqos_ring = []
        # Epoch 0's refresh runs with the initial scale of 1.0.
        self._applied = {idx: 1.0 for idx in self.qos_indices}
        self._state = {}
        self._nonqos_indices = ()

    def _candidates(self) -> List[float]:
        tuning = self.tuning
        span = tuning.alpha_cap - tuning.alpha_floor
        steps = tuning.mpc_candidates - 1
        return [tuning.alpha_floor + span * step / steps
                for step in range(tuning.mpc_candidates)]

    def on_epoch(self, ctx: PolicyContext, view: EpochView) -> Dict[int, float]:
        tuning = self.tuning
        if not self._nonqos_indices:
            self._nonqos_indices = tuple(
                idx for idx in range(ctx.num_kernels)
                if idx not in self._ring)
        # Log what the plant just did under the scales applied last epoch.
        for idx in self.qos_indices:
            ring = self._ring[idx]
            ring.append((self._applied[idx], view.epoch_ipc[idx]))
            if len(ring) > tuning.mpc_history:
                del ring[0]
        if self.qos_indices:
            mean_scale = (sum(self._applied[idx] for idx in self.qos_indices)
                          / len(self.qos_indices))
            nonqos_ipc = sum(view.epoch_ipc[idx]
                             for idx in self._nonqos_indices)
            self._nonqos_ring.append((mean_scale, nonqos_ipc))
            if len(self._nonqos_ring) > tuning.mpc_history:
                del self._nonqos_ring[0]

        nonqos_model = fit_line(self._nonqos_ring)
        nonqos_peak = max((ipc for _s, ipc in self._nonqos_ring), default=0.0)
        scales: Dict[int, float] = {}
        for idx in self.qos_indices:
            goal = self.goals[idx]
            ring = self._ring[idx]
            error = (goal - view.epoch_ipc[idx]) / goal if goal > 0 else 0.0
            model = (fit_line(ring)
                     if len(ring) >= tuning.mpc_min_points else None)
            if model is None or model[1] <= 0:
                scale = history_fallback_scale(goal, view.cumulative_ipc[idx],
                                               tuning.alpha_cap)
                self._state[idx] = ControllerState(error=error)
            else:
                scale, predicted = self._optimise(goal, model, nonqos_model,
                                                  nonqos_peak)
                self._state[idx] = ControllerState(error=error,
                                                   prediction=predicted)
            self._applied[idx] = scale
            scales[idx] = scale
        return scales

    def _optimise(self, goal: float, model: Tuple[float, float],
                  nonqos_model: Optional[Tuple[float, float]],
                  nonqos_peak: float) -> Tuple[float, float]:
        """Best (scale, predicted IPC) over the candidate grid."""
        tuning = self.tuning
        intercept, slope = model
        floor = tuning.mpc_nonqos_floor * nonqos_peak

        def feasible(scale: float) -> bool:
            if nonqos_model is None or nonqos_peak <= 0:
                return True
            predicted_nonqos = nonqos_model[0] + nonqos_model[1] * scale
            return predicted_nonqos >= floor

        best: Optional[Tuple[float, float, float]] = None
        for pass_feasibility in (True, False):
            for scale in self._candidates():
                if pass_feasibility and not feasible(scale):
                    continue
                predicted = intercept + slope * scale
                miss = max(0.0, goal - predicted) / goal
                over = max(0.0, predicted - goal) / goal
                cost = miss + tuning.mpc_overshoot_weight * over
                # Strict '<' keeps the smallest tied scale (grid ascends).
                if best is None or cost < best[0]:
                    best = (cost, scale, predicted)
            if best is not None:
                break  # the constrained pass found a candidate
        return best[1], best[2]

    def state(self, kernel_idx: int) -> ControllerState:
        return self._state.get(kernel_idx, ControllerState())
