"""Controller scoring: turn telemetry streams into comparable metrics.

One simulated co-run case yields a :class:`~repro.harness.runner.CaseRecord`
whose per-epoch telemetry stream records, for every QoS kernel, the IPC goal
in force and the IPC the epoch actually delivered.  :func:`score_case`
condenses that trajectory into the four numbers the controller comparison
table reports:

``qos_attainment``
    Fraction of controlled epochs in which the QoS kernel met its goal
    (same 0.1 % tolerance as :attr:`KernelOutcome.reached`).  The paper's
    Figure 6 reports end-of-run attainment; the per-epoch form also
    penalises controllers that oscillate around the goal.
``overshoot``
    Mean positive relative excess ``max(0, ipc/goal - 1)`` over controlled
    epochs — quota spent above the goal is throughput taken from non-QoS
    kernels (the Figure 9 concern, in per-epoch form).
``settling_epochs``
    Index of the first epoch after which the kernel never again falls
    below ``(1 - band)`` of goal — how long the control loop takes to
    converge.  A kernel that never settles scores the full epoch count.
``nonqos_stp``
    Aggregate non-QoS system throughput (sum of IPC normalised to
    isolated execution, Figure 8's metric) over the measurement window —
    what the controller's conservatism buys for everyone else.

Scores are pure functions of the record — scoring never re-simulates — so
a warm case cache makes ``repro controllers compare`` nearly free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.harness.runner import CaseRecord

#: Goal tolerance shared with :attr:`KernelOutcome.reached`.
GOAL_TOLERANCE = 0.999

#: Relative band below goal a kernel may not re-enter once "settled".
SETTLE_BAND = 0.05


@dataclass(frozen=True)
class CaseScore:
    """Controller metrics of one co-run case (QoS kernels averaged)."""

    workload: str
    policy: str
    epochs: int
    qos_attainment: float
    overshoot: float
    settling_epochs: float
    nonqos_stp: float
    qos_met: bool


def _kernel_trajectory(record: CaseRecord,
                       name: str) -> List[Tuple[float, float]]:
    """``(epoch_ipc, ipc_goal)`` for every controlled epoch of a kernel."""
    trajectory = []
    for epoch in record.telemetry:
        for kernel in epoch.kernels:
            if kernel.name == name and kernel.ipc_goal is not None:
                trajectory.append((kernel.epoch_ipc, kernel.ipc_goal))
    return trajectory


def settling_epochs(trajectory: Sequence[Tuple[float, float]],
                    band: float = SETTLE_BAND) -> float:
    """First epoch index after which IPC stays within ``band`` of goal."""
    settled_at = len(trajectory)
    for index in range(len(trajectory) - 1, -1, -1):
        ipc, goal = trajectory[index]
        if ipc < (1.0 - band) * goal:
            break
        settled_at = index
    return float(settled_at)


def score_case(record: CaseRecord, workload: str) -> CaseScore:
    """Score one telemetry-bearing case record (see module docstring)."""
    if not record.telemetry:
        raise ValueError(
            "case record carries no telemetry; run it with telemetry=True")
    attainment: List[float] = []
    overshoot: List[float] = []
    settling: List[float] = []
    epochs = len(record.telemetry)
    for outcome in record.qos_kernels:
        trajectory = _kernel_trajectory(record, outcome.name)
        if not trajectory:
            continue
        met = sum(1 for ipc, goal in trajectory
                  if ipc >= goal * GOAL_TOLERANCE)
        attainment.append(met / len(trajectory))
        overshoot.append(math.fsum(max(0.0, ipc / goal - 1.0)
                                   for ipc, goal in trajectory)
                         / len(trajectory))
        settling.append(settling_epochs(trajectory))
    nonqos_stp = math.fsum(k.normalized_throughput
                           for k in record.nonqos_kernels)

    def mean(values: List[float]) -> float:
        return math.fsum(values) / len(values) if values else 0.0

    return CaseScore(
        workload=workload,
        policy=record.policy,
        epochs=epochs,
        qos_attainment=mean(attainment),
        overshoot=mean(overshoot),
        settling_epochs=mean(settling),
        nonqos_stp=nonqos_stp,
        qos_met=record.qos_met,
    )


def aggregate_scores(scores: Sequence[CaseScore]) -> Dict[str, float]:
    """Mean of each metric over a controller's per-workload scores."""
    count = len(scores)
    if count == 0:
        raise ValueError("no scores to aggregate")
    return {
        "qos_attainment": math.fsum(s.qos_attainment for s in scores) / count,
        "overshoot": math.fsum(s.overshoot for s in scores) / count,
        "settling_epochs": math.fsum(s.settling_epochs for s in scores) / count,
        "nonqos_stp": math.fsum(s.nonqos_stp for s in scores) / count,
        "qos_met_rate": sum(1 for s in scores if s.qos_met) / count,
    }


# ------------------------------------------------------------- formatting

def format_score_row(label: str, metrics: Dict[str, float],
                     label_width: int) -> str:
    return (f"{label.ljust(label_width)}"
            f"{100.0 * metrics['qos_attainment']:9.1f}"
            f"{metrics['overshoot']:11.3f}"
            f"{metrics['settling_epochs']:9.1f}"
            f"{metrics['nonqos_stp']:12.3f}"
            f"{100.0 * metrics['qos_met_rate']:10.0f}")


def format_comparison(scores_by_policy: Dict[str, List[CaseScore]],
                      title: str) -> str:
    """The committed comparison table: one aggregate row per controller,
    then a per-workload breakdown block."""
    policies = list(scores_by_policy)
    workloads: List[str] = []
    for scores in scores_by_policy.values():
        for score in scores:
            if score.workload not in workloads:
                workloads.append(score.workload)
    label_width = max(len(p) for p in policies) + 2
    header = (f"{'policy'.ljust(label_width)}{'attain%':>9}{'overshoot':>11}"
              f"{'settle':>9}{'nonqos-STP':>12}{'met%':>10}")
    lines = [title, "=" * len(title), header, "-" * len(header)]
    for policy in policies:
        metrics = aggregate_scores(scores_by_policy[policy])
        lines.append(format_score_row(policy, metrics, label_width))
    lines.append("")
    lines.append(f"per-workload breakdown ({len(workloads)} workloads)")
    for workload in workloads:
        lines.append("")
        lines.append(f"[{workload}]")
        lines.append(header)
        lines.append("-" * len(header))
        for policy in policies:
            for score in scores_by_policy[policy]:
                if score.workload == workload:
                    lines.append(format_score_row(
                        policy, {
                            "qos_attainment": score.qos_attainment,
                            "overshoot": score.overshoot,
                            "settling_epochs": score.settling_epochs,
                            "nonqos_stp": score.nonqos_stp,
                            "qos_met_rate": 1.0 if score.qos_met else 0.0,
                        }, label_width))
    return "\n".join(lines)
