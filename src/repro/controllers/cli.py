"""``repro controllers bench|compare`` — the controller evaluation harness.

``compare`` sweeps every quota controller (the four paper schemes plus PID
and MPC) over the named co-run workloads
(:data:`repro.harness.presets.CONTROLLER_WORKLOADS`), scores each
telemetry stream (:mod:`repro.controllers.evaluate`) and prints — or
writes, with ``-o`` — the comparison table committed under
``benchmarks/results/controllers_compare.txt``.

``bench`` is the focused form: one controller (default ``pid``) against
the Rollover reference, with ``--quick`` shrinking scale for CI smoke.

Both ride the existing harness: cases fan out over
:class:`~repro.harness.parallel.ParallelCaseRunner` and land in the
persistent case cache, so re-scoring after a table-format change
re-simulates nothing.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.controllers.evaluate import CaseScore, format_comparison, score_case
from repro.harness.presets import CONTROLLER_WORKLOADS, experiment_preset
from repro.harness.runner import CaseSpec

#: Grid order of the full comparison: paper schemes first, then the
#: ROADMAP controllers.
COMPARE_POLICIES = ("naive", "history", "elastic", "rollover", "pid", "mpc")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos controllers",
        description="Evaluate SLO quota controllers (paper schemes, PID, "
                    "MPC) on shared workloads and score their telemetry")
    parser.add_argument("action", choices=("bench", "compare"),
                        help="'compare' sweeps every controller; 'bench' "
                             "scores one against the Rollover reference")
    parser.add_argument("--controller", default="pid",
                        choices=("pid", "mpc"),
                        help="controller under test for 'bench' "
                             "(default: pid)")
    parser.add_argument("--preset", default="fast",
                        choices=("fast", "paper", "smoke"),
                        help="experiment scale (default: fast)")
    parser.add_argument("--goal", type=float, default=0.6, metavar="FRAC",
                        help="QoS goal as a fraction of isolated IPC "
                             "(default: 0.6)")
    parser.add_argument("--workloads", type=int, default=None, metavar="N",
                        help="use only the first N named workloads")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: REPRO_WORKERS "
                             "or cpu_count-1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent case cache")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smoke preset, two workloads")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the table to this file")
    return parser


def run_grid(policies: Sequence[str],
             workloads: Sequence[Tuple[str, Tuple[str, ...], int]],
             preset_name: str, goal: float,
             workers: Optional[int],
             use_cache: bool) -> Dict[str, List[CaseScore]]:
    """Sweep ``policies`` x ``workloads`` with telemetry on and score each
    case.  One flat sweep feeds the parallel runner, so independent cases
    fan out together; results come back in input order."""
    from repro.harness.cache import open_default_cache
    from repro.harness.parallel import ParallelCaseRunner

    preset = experiment_preset(preset_name)
    cache = open_default_cache() if use_cache else None
    runner = ParallelCaseRunner(preset.gpu, preset.cycles, cache=cache,
                                workers=workers, telemetry=True)
    specs: List[Tuple[str, str, CaseSpec]] = []
    for policy in policies:
        for name, kernels, qos_count in workloads:
            spec = CaseSpec.trio(kernels, qos_count, goal, policy) \
                if len(kernels) > 2 else CaseSpec.pair(
                    kernels[0], kernels[1], goal, policy)
            specs.append((policy, name, spec))
    records = runner.sweep([spec for _policy, _name, spec in specs])
    scores: Dict[str, List[CaseScore]] = {policy: [] for policy in policies}
    for (policy, name, _spec), record in zip(specs, records):
        scores[policy].append(score_case(record, name))
    return scores


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    preset_name = args.preset
    workload_count = args.workloads
    if args.quick:
        preset_name = "smoke"
        workload_count = min(workload_count or 2, 2)
    workloads = CONTROLLER_WORKLOADS[:workload_count] \
        if workload_count else CONTROLLER_WORKLOADS
    if args.action == "compare":
        policies: Tuple[str, ...] = COMPARE_POLICIES
        title = (f"Controller comparison (preset {preset_name}, "
                 f"goal {args.goal:.2f} of isolated IPC, "
                 f"{len(workloads)} workloads)")
    else:
        policies = ("rollover", args.controller)
        title = (f"Controller bench: {args.controller} vs rollover "
                 f"(preset {preset_name}, goal {args.goal:.2f}, "
                 f"{len(workloads)} workloads)")
    scores = run_grid(policies, workloads, preset_name, args.goal,
                      args.workers, use_cache=not args.no_cache)
    table = format_comparison(scores, title)
    print(table)
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(table + "\n")
        print(f"[wrote {args.output}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
