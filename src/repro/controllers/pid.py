"""Per-QoS-kernel PID control of the epoch quota scale.

The classic SLO tracking loop: the controller measures each QoS kernel's
per-epoch IPC against its goal and drives the quota scale (the alpha that
multiplies ``goal * epoch_length``) with proportional, integral and
derivative action on the *normalised* residual ``(goal - ipc) / goal``.
Normalising makes one gain preset usable across kernels whose absolute
IPC differs by an order of magnitude.

Differences from the paper's History law worth knowing when tuning:

* History only ever *boosts* (``alpha >= 1``); PID may shrink the scale
  below 1.0 (down to ``alpha_floor``) when a kernel overshoots, returning
  quota headroom to non-QoS kernels faster — this is where PID wins on
  the overshoot and non-QoS STP metrics of ``repro controllers compare``.
* History integrates implicitly through cumulative IPC, which never
  forgets the warm-up transient; PID's explicit integral term is clamped
  (``pid_integral_limit``) and conditionally frozen while the output
  saturates (anti-windup), so a long starvation phase cannot wind up a
  quota burst that then blows through the goal.

Gains live in :class:`repro.config.ControllerConfig` (``pid_kp``,
``pid_ki``, ``pid_kd``, ``pid_integral_limit``, ``alpha_floor``,
``alpha_cap``) and therefore hash into persistent case-cache keys.
"""

from __future__ import annotations

from typing import Dict

from repro.controllers.base import ControllerState, QuotaController
from repro.sim.policy import EpochView, PolicyContext


class PIDQuotaController(QuotaController):
    """PID on the normalised IPC-goal residual, with anti-windup."""

    name = "pid"

    def __init__(self) -> None:
        super().__init__()
        self._integral: Dict[int, float] = {}
        self._last_error: Dict[int, float] = {}
        self._state: Dict[int, ControllerState] = {}

    def start(self, config, qos_indices, goals) -> None:
        super().start(config, qos_indices, goals)
        self._integral = {idx: 0.0 for idx in self.qos_indices}
        self._last_error = {idx: 0.0 for idx in self.qos_indices}
        self._state = {}

    def on_epoch(self, ctx: PolicyContext, view: EpochView) -> Dict[int, float]:
        tuning = self.tuning
        scales: Dict[int, float] = {}
        for idx in self.qos_indices:
            goal = self.goals[idx]
            error = (goal - view.epoch_ipc[idx]) / goal if goal > 0 else 0.0
            derivative = error - self._last_error[idx]
            self._last_error[idx] = error
            # Tentatively accumulate, then clamp the magnitude; if the
            # resulting output saturates at either rail, roll the
            # accumulation back (conditional integration) so the integral
            # cannot wind up against a bound it cannot push past.
            integral = self._integral[idx] + error
            limit = tuning.pid_integral_limit
            integral = min(limit, max(-limit, integral))
            raw = (1.0 + tuning.pid_kp * error + tuning.pid_ki * integral
                   + tuning.pid_kd * derivative)
            scale = min(tuning.alpha_cap, max(tuning.alpha_floor, raw))
            if scale != raw:
                integral = self._integral[idx]
            self._integral[idx] = integral
            self._state[idx] = ControllerState(error=error, integral=integral)
            scales[idx] = scale
        return scales

    def state(self, kernel_idx: int) -> ControllerState:
        return self._state.get(kernel_idx, ControllerState())
