"""Pluggable SLO quota controllers for the QoS manager.

The public surface:

* :class:`QuotaController` — the control-law seam: observe the closing
  epoch (:class:`~repro.sim.policy.EpochView`) through a
  :class:`~repro.sim.policy.PolicyContext`, emit a per-QoS-kernel quota
  scale that :class:`~repro.qos.manager.QoSPolicy` turns into quotas and
  TB targets.
* :class:`SchemeController` — the paper's history-based alpha law
  (Section 3.4.2) behind the seam, bit-identical to the pre-seam
  implementation (the default for the four paper schemes).
* :class:`PIDQuotaController` / :class:`MPCQuotaController` — the
  datacenter-style controllers the ROADMAP asks for: PID on the IPC-goal
  residual with anti-windup, and short-horizon model-predictive control
  with a History fallback.  Gains live in
  :class:`repro.config.ControllerConfig` so they hash into case-cache
  keys.
* :func:`controller_by_name` / :data:`CONTROLLER_NAMES` — the registry
  the harness and CLI use.

The evaluation harness (``repro controllers bench|compare``) lives in
:mod:`repro.controllers.evaluate` and :mod:`repro.controllers.cli`; they
are imported lazily so this package stays importable from the policy layer
without dragging the experiment harness in.
"""

from repro.controllers.base import (
    ALPHA_CAP,
    ControllerState,
    QuotaController,
    SchemeController,
)
from repro.controllers.mpc import MPCQuotaController
from repro.controllers.pid import PIDQuotaController

#: Controller names accepted by :func:`controller_by_name` (and, prefixed
#: onto the policy registry, by ``CaseRunner.run_case``).
CONTROLLER_NAMES = ("pid", "mpc")

_CONTROLLERS = {
    PIDQuotaController.name: PIDQuotaController,
    MPCQuotaController.name: MPCQuotaController,
}


def controller_by_name(name: str) -> QuotaController:
    """Instantiate a non-scheme quota controller from its registry name."""
    try:
        return _CONTROLLERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown controller {name!r}; choose from {CONTROLLER_NAMES}"
        ) from None


__all__ = [
    "ALPHA_CAP",
    "ControllerState",
    "QuotaController",
    "SchemeController",
    "PIDQuotaController",
    "MPCQuotaController",
    "CONTROLLER_NAMES",
    "controller_by_name",
]
