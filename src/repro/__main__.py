"""``python -m repro`` — alias for the :mod:`repro.cli` entry point."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
