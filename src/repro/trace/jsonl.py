"""JSONL export/import of engine telemetry streams.

A trace file is newline-delimited JSON: one ``{"kind": "meta", ...}`` header
line carrying the schema version plus caller-supplied provenance (workload,
policy, preset...), followed by one ``{"kind": "epoch", ...}`` line per
:class:`~repro.sim.telemetry.EpochRecord` in simulation order.  The format
is append-friendly, greppable, and loads line-by-line, so multi-million-
cycle traces never need to fit in memory at once.

:func:`read_trace` is strict: every epoch line is checked against the
record schema (:func:`repro.sim.telemetry.validate_epoch_dict`) and the
meta line's ``schema_version`` must match :data:`SCHEMA_VERSION`, so a
stale trace fails loudly instead of decoding into garbage.

The ``repro-gpu-qos trace`` subcommand (see :mod:`repro.cli`) runs one
co-run case with telemetry enabled and writes its stream in this format.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Mapping, Optional, Tuple

from repro.sim.telemetry import (
    SCHEMA_VERSION,
    EpochRecord,
    epoch_record_from_dict,
    epoch_record_to_dict,
    validate_epoch_dict,
)


def write_trace(stream: IO[str], records: Iterable[EpochRecord],
                meta: Optional[Mapping] = None) -> int:
    """Write a meta line plus one line per record; returns the epoch count."""
    header = {"kind": "meta", "schema_version": SCHEMA_VERSION}
    if meta:
        header.update(meta)
        header["kind"] = "meta"  # provenance must not smuggle a kind
        header["schema_version"] = SCHEMA_VERSION
    stream.write(json.dumps(header, sort_keys=True) + "\n")
    count = 0
    for record in records:
        payload = epoch_record_to_dict(record)
        payload["kind"] = "epoch"
        stream.write(json.dumps(payload, sort_keys=True) + "\n")
        count += 1
    return count


def read_trace(stream: IO[str]) -> Tuple[dict, List[EpochRecord]]:
    """Parse and validate a trace; returns ``(meta, records)``.

    Raises ``ValueError`` on a missing/mismatched meta line, an unknown
    ``kind``, or any epoch line that fails the schema check.
    """
    meta: Optional[dict] = None
    records: List[EpochRecord] = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as error:
            raise ValueError(f"trace line {line_no}: not JSON ({error})")
        kind = payload.get("kind") if isinstance(payload, dict) else None
        if meta is None:
            if kind != "meta":
                raise ValueError(
                    f"trace line {line_no}: expected a meta header line, "
                    f"got kind={kind!r}")
            if payload.get("schema_version") != SCHEMA_VERSION:
                raise ValueError(
                    f"trace schema version {payload.get('schema_version')!r} "
                    f"does not match expected {SCHEMA_VERSION}")
            meta = payload
            continue
        if kind != "epoch":
            raise ValueError(f"trace line {line_no}: unknown kind {kind!r}")
        epoch = {key: value for key, value in payload.items()
                 if key != "kind"}
        try:
            validate_epoch_dict(epoch)
        except ValueError as error:
            raise ValueError(f"trace line {line_no}: {error}")
        records.append(epoch_record_from_dict(epoch))
    if meta is None:
        raise ValueError("trace is empty: no meta header line")
    return meta, records
