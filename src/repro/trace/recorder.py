"""Recording policy wrapper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.policy import PolicyContext, SharingPolicy


@dataclass(frozen=True)
class EpochSample:
    """One epoch's state snapshot, taken at the epoch boundary."""

    epoch_index: int
    cycle: int
    epoch_ipc: Tuple[float, ...]
    total_tbs: Tuple[int, ...]
    quota_remaining: Tuple[float, ...]
    alphas: Dict[int, float] = field(default_factory=dict)
    nonqos_goals: Dict[int, float] = field(default_factory=dict)


class TraceRecorder(SharingPolicy):
    """Wrap a policy and record an :class:`EpochSample` per epoch.

    The sample is taken *before* delegating the boundary to the inner
    policy, so ``quota_remaining`` shows the residual counters the scheme's
    refresh rule is about to act on (the quantities in Figure 4), and
    ``epoch_ipc`` covers the epoch that just ended.

    For the engine-emitted, serialisable equivalent see
    :mod:`repro.sim.telemetry` — this wrapper remains for in-process figure
    scripts that want policy-internal extras (alphas, non-QoS goals) keyed
    by kernel index.
    """

    def __init__(self, inner: SharingPolicy):
        self.inner = inner
        self.samples: List[EpochSample] = []

    @property
    def uses_quotas(self) -> bool:
        return self.inner.uses_quotas

    @property
    def name(self) -> str:
        return f"traced-{self.inner.name}"

    def setup(self, ctx: PolicyContext) -> None:
        self.inner.setup(ctx)

    def on_epoch_start(self, ctx: PolicyContext, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index > 0:
            self.samples.append(self._sample(ctx, cycle, epoch_index))
        self.inner.on_epoch_start(ctx, cycle, epoch_index)

    def on_quota_exhausted(self, ctx: PolicyContext, sm_id: int,
                           kernel_idx: int, cycle: int) -> None:
        self.inner.on_quota_exhausted(ctx, sm_id, kernel_idx, cycle)

    # ------------------------------------------------------------- sampling

    def _sample(self, ctx: PolicyContext, cycle: int,
                epoch_index: int) -> EpochSample:
        view = ctx.epoch
        quotas = tuple(ctx.quota_residual(idx)
                       for idx in range(ctx.num_kernels))
        return EpochSample(
            epoch_index=epoch_index,
            cycle=cycle,
            epoch_ipc=view.epoch_ipc,
            total_tbs=tuple(ctx.total_tbs(idx)
                            for idx in range(ctx.num_kernels)),
            quota_remaining=quotas,
            alphas=dict(getattr(self.inner, "alphas", {})),
            nonqos_goals=dict(getattr(self.inner, "nonqos_goals", {})),
        )

    # -------------------------------------------------------------- queries

    def ipc_series(self, kernel_idx: int) -> List[float]:
        return [sample.epoch_ipc[kernel_idx] for sample in self.samples]

    def tb_series(self, kernel_idx: int) -> List[int]:
        return [sample.total_tbs[kernel_idx] for sample in self.samples]
