"""Recording policy wrapper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.engine import GPUSimulator, SharingPolicy


@dataclass(frozen=True)
class EpochSample:
    """One epoch's state snapshot, taken at the epoch boundary."""

    epoch_index: int
    cycle: int
    epoch_ipc: Tuple[float, ...]
    total_tbs: Tuple[int, ...]
    quota_remaining: Tuple[float, ...]
    alphas: Dict[int, float] = field(default_factory=dict)
    nonqos_goals: Dict[int, float] = field(default_factory=dict)


class TraceRecorder(SharingPolicy):
    """Wrap a policy and record an :class:`EpochSample` per epoch.

    The sample is taken *before* delegating the boundary to the inner
    policy, so ``quota_remaining`` shows the residual counters the scheme's
    refresh rule is about to act on (the quantities in Figure 4), and
    ``epoch_ipc`` covers the epoch that just ended.
    """

    def __init__(self, inner: SharingPolicy):
        self.inner = inner
        self.samples: List[EpochSample] = []
        self._last_retired: List[int] = []
        self._last_cycle = 0

    @property
    def uses_quotas(self) -> bool:
        return self.inner.uses_quotas

    @property
    def name(self) -> str:
        return f"traced-{self.inner.name}"

    def setup(self, engine: GPUSimulator) -> None:
        self._last_retired = [0] * engine.num_kernels
        self.inner.setup(engine)

    def on_epoch_start(self, engine: GPUSimulator, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index > 0:
            self.samples.append(self._sample(engine, cycle, epoch_index))
        self.inner.on_epoch_start(engine, cycle, epoch_index)

    def on_quota_exhausted(self, engine: GPUSimulator, sm, kernel_idx: int,
                           cycle: int) -> None:
        self.inner.on_quota_exhausted(engine, sm, kernel_idx, cycle)

    # ------------------------------------------------------------- sampling

    def _sample(self, engine: GPUSimulator, cycle: int,
                epoch_index: int) -> EpochSample:
        epoch_cycles = max(1, cycle - self._last_cycle)
        ipc = []
        for idx, stats in enumerate(engine.kernel_stats):
            retired = stats.retired_thread_insts
            ipc.append((retired - self._last_retired[idx]) / epoch_cycles)
            self._last_retired[idx] = retired
        self._last_cycle = cycle
        quotas = tuple(
            sum(sm.quota_counters[idx] for sm in engine.sms)
            for idx in range(engine.num_kernels))
        return EpochSample(
            epoch_index=epoch_index,
            cycle=cycle,
            epoch_ipc=tuple(ipc),
            total_tbs=tuple(engine.total_tbs(idx)
                            for idx in range(engine.num_kernels)),
            quota_remaining=quotas,
            alphas=dict(getattr(self.inner, "alphas", {})),
            nonqos_goals=dict(getattr(self.inner, "nonqos_goals", {})),
        )

    # -------------------------------------------------------------- queries

    def ipc_series(self, kernel_idx: int) -> List[float]:
        return [sample.epoch_ipc[kernel_idx] for sample in self.samples]

    def tb_series(self, kernel_idx: int) -> List[int]:
        return [sample.total_tbs[kernel_idx] for sample in self.samples]
