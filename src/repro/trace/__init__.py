"""Epoch-level telemetry: record and render what a policy did over time.

:class:`TraceRecorder` wraps any :class:`repro.sim.SharingPolicy` and logs a
per-epoch :class:`EpochSample` — per-kernel IPC, resident TBs, remaining
quota, and (for QoS policies) alpha and the artificial non-QoS goals.
:func:`render_timeline` turns a trace into an ASCII chart, which is how the
examples visualise quota throttling and TB reallocation converging.
"""

from repro.trace.recorder import EpochSample, TraceRecorder
from repro.trace.render import render_timeline, sparkline

__all__ = ["EpochSample", "TraceRecorder", "render_timeline", "sparkline"]
