"""Epoch-level telemetry: record, serialise, and render policy behaviour.

Two recording paths feed this package:

* :class:`TraceRecorder` wraps any :class:`repro.sim.SharingPolicy` and logs
  a per-epoch :class:`EpochSample` — per-kernel IPC, resident TBs, remaining
  quota, and (for QoS policies) alpha and the artificial non-QoS goals —
  for in-process figure scripts;
* the engine-emitted :class:`repro.sim.telemetry.EpochRecord` stream, which
  :func:`write_trace` / :func:`read_trace` round-trip through the JSONL
  format the ``repro-gpu-qos trace`` subcommand produces.

:func:`render_timeline` turns a trace into an ASCII chart, which is how the
examples visualise quota throttling and TB reallocation converging.
"""

from repro.trace.jsonl import read_trace, write_trace
from repro.trace.recorder import EpochSample, TraceRecorder
from repro.trace.render import render_timeline, sparkline

__all__ = ["EpochSample", "TraceRecorder", "read_trace", "render_timeline",
           "sparkline", "write_trace"]
