"""ASCII rendering of epoch traces."""

from __future__ import annotations

from typing import Optional, Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None,
              ceiling: Optional[float] = None) -> str:
    """Render a numeric series as a unicode block sparkline.

    ``width`` resamples the series (mean-pooling); ``ceiling`` pins the
    scale so multiple sparklines are comparable.
    """
    values = list(values)
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        pooled = []
        step = len(values) / width
        for bucket in range(width):
            start = int(bucket * step)
            stop = max(start + 1, int((bucket + 1) * step))
            chunk = values[start:stop]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    top = ceiling if ceiling is not None else max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    chars = []
    for value in values:
        level = int(round(min(max(value / top, 0.0), 1.0) * (len(_BLOCKS) - 1)))
        chars.append(_BLOCKS[level])
    return "".join(chars)


def render_timeline(recorder, kernel_names: Sequence[str],
                    goals: Optional[Sequence[Optional[float]]] = None,
                    width: int = 60) -> str:
    """Render a :class:`~repro.trace.TraceRecorder` as per-kernel rows.

    Each kernel gets an IPC sparkline (scaled to its own peak, with its QoS
    goal shown numerically when given) and a TB-residency sparkline scaled
    to the machine total.
    """
    samples = recorder.samples
    if not samples:
        return "(empty trace)"
    lines = [f"epoch trace: {len(samples)} epochs, "
             f"cycles {samples[0].cycle}..{samples[-1].cycle}"]
    label_width = max(len(name) for name in kernel_names) + 2
    for idx, name in enumerate(kernel_names):
        ipc = recorder.ipc_series(idx)
        tbs = recorder.tb_series(idx)
        goal = goals[idx] if goals else None
        goal_text = f" goal={goal:.1f}" if goal else ""
        lines.append(f"{name.ljust(label_width)}ipc "
                     f"[{sparkline(ipc, width)}] "
                     f"last={ipc[-1]:.1f} peak={max(ipc):.1f}{goal_text}")
        lines.append(f"{''.ljust(label_width)}tbs "
                     f"[{sparkline(tbs, width, ceiling=max(max(tbs), 1))}] "
                     f"last={tbs[-1]}")
    return "\n".join(lines)
