"""Fairness management over SMK sharing, after Wang et al. [41, 42].

Section 2.3: "Fine-grained sharing through Simultaneous Multikernel manages
resources to achieve fair execution among sharer kernels, meaning that the
kernel's performance in a shared mode degrades equally when compared with
isolated execution."  Section 3 then contrasts: "if a kernel's performance
goal should be achieved, then policies for fairness should not be enforced"
— fairness and QoS are different allocation problems over the same
machinery, and the paper's firmware "can simply switch between different
policies as needed".

:class:`FairSMKPolicy` implements the fairness side: each epoch it compares
per-kernel *slowdown* (shared IPC / isolated IPC) and moves one TB per SM
from the least-slowed kernel to the most-slowed one, converging toward
equal normalised progress.  It needs each kernel's isolated IPC as an
input, exactly as [42]'s dynamic partitioning does.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.policy import PolicyContext, SharingPolicy

#: Minimum slowdown gap before TBs are moved (hysteresis against thrash).
FAIRNESS_GAP = 0.08


class FairSMKPolicy(SharingPolicy):
    """Equalise per-kernel slowdown via TB reallocation (no quotas)."""

    uses_quotas = False
    name = "fair-smk"

    def __init__(self, isolated_ipc: Dict[str, float]):
        if not isolated_ipc:
            raise ValueError("fairness needs isolated IPCs to normalise against")
        for name, value in isolated_ipc.items():
            if value <= 0:
                raise ValueError(f"isolated IPC for {name} must be positive")
        self.isolated_ipc = dict(isolated_ipc)
        self.slowdowns: Dict[int, float] = {}
        self.moves = 0

    # -------------------------------------------------------------- lifecycle

    def setup(self, ctx: PolicyContext) -> None:
        for launch in ctx.kernels:
            if launch.spec.name not in self.isolated_ipc:
                raise ValueError(
                    f"no isolated IPC provided for kernel {launch.spec.name!r}")
        # Start from an even split of each SM's thread budget.
        share = ctx.config.sm.max_threads // ctx.num_kernels
        for sm_id in range(ctx.num_sms):
            for kernel_idx, launch in enumerate(ctx.kernels):
                target = max(1, share // launch.spec.threads_per_tb)
                ctx.set_tb_target(sm_id, kernel_idx, target)

    def on_epoch_start(self, ctx: PolicyContext, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index == 0:
            return
        view = ctx.epoch
        for idx in range(ctx.num_kernels):
            name = ctx.kernels[idx].spec.name
            self.slowdowns[idx] = (view.epoch_ipc[idx]
                                   / self.isolated_ipc[name])
        if ctx.num_kernels > 1 and not ctx.preemption_pending:
            self._rebalance(ctx)

    # ------------------------------------------------------------- balancing

    def _rebalance(self, ctx: PolicyContext) -> None:
        """Move one TB per SM from the least to the most slowed kernel."""
        fastest = max(self.slowdowns, key=self.slowdowns.get)
        slowest = min(self.slowdowns, key=self.slowdowns.get)
        if fastest == slowest:
            return
        gap = self.slowdowns[fastest] - self.slowdowns[slowest]
        if gap < FAIRNESS_GAP:
            return
        for sm_id in range(ctx.num_sms):
            if ctx.tb_count(sm_id, fastest) <= 1:
                continue
            ctx.request_preemption(sm_id, fastest, 1)
            ctx.set_tb_target(sm_id, slowest,
                              ctx.tb_target(sm_id, slowest) + 1)
            self.moves += 1
            return  # one move per epoch: hill-climbing pace

    # --------------------------------------------------------------- metrics

    def fairness_index(self) -> float:
        """Min/max slowdown ratio: 1.0 is perfectly fair (as in [42])."""
        if not self.slowdowns:
            return 1.0
        values = list(self.slowdowns.values())
        top = max(values)
        return (min(values) / top) if top > 0 else 1.0
