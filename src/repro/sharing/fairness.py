"""Fairness management over SMK sharing, after Wang et al. [41, 42].

Section 2.3: "Fine-grained sharing through Simultaneous Multikernel manages
resources to achieve fair execution among sharer kernels, meaning that the
kernel's performance in a shared mode degrades equally when compared with
isolated execution."  Section 3 then contrasts: "if a kernel's performance
goal should be achieved, then policies for fairness should not be enforced"
— fairness and QoS are different allocation problems over the same
machinery, and the paper's firmware "can simply switch between different
policies as needed".

:class:`FairSMKPolicy` implements the fairness side: each epoch it compares
per-kernel *slowdown* (shared IPC / isolated IPC) and moves one TB per SM
from the least-slowed kernel to the most-slowed one, converging toward
equal normalised progress.  It needs each kernel's isolated IPC as an
input, exactly as [42]'s dynamic partitioning does.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.engine import GPUSimulator, SharingPolicy

#: Minimum slowdown gap before TBs are moved (hysteresis against thrash).
FAIRNESS_GAP = 0.08


class FairSMKPolicy(SharingPolicy):
    """Equalise per-kernel slowdown via TB reallocation (no quotas)."""

    uses_quotas = False
    name = "fair-smk"

    def __init__(self, isolated_ipc: Dict[str, float]):
        if not isolated_ipc:
            raise ValueError("fairness needs isolated IPCs to normalise against")
        for name, value in isolated_ipc.items():
            if value <= 0:
                raise ValueError(f"isolated IPC for {name} must be positive")
        self.isolated_ipc = dict(isolated_ipc)
        self.slowdowns: Dict[int, float] = {}
        self.moves = 0
        self._last_retired: List[int] = []
        self._last_cycle = 0

    # -------------------------------------------------------------- lifecycle

    def setup(self, engine: GPUSimulator) -> None:
        for launch in engine.kernels:
            if launch.spec.name not in self.isolated_ipc:
                raise ValueError(
                    f"no isolated IPC provided for kernel {launch.spec.name!r}")
        self._last_retired = [0] * engine.num_kernels
        # Start from an even split of each SM's thread budget.
        share = engine.config.sm.max_threads // engine.num_kernels
        for sm_id in range(engine.config.num_sms):
            for kernel_idx, launch in enumerate(engine.kernels):
                target = max(1, share // launch.spec.threads_per_tb)
                engine.set_tb_target(sm_id, kernel_idx, target)

    def on_epoch_start(self, engine: GPUSimulator, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index == 0:
            return
        epoch_cycles = max(1, cycle - self._last_cycle)
        for idx, stats in enumerate(engine.kernel_stats):
            delta = stats.retired_thread_insts - self._last_retired[idx]
            ipc = delta / epoch_cycles
            name = engine.kernels[idx].spec.name
            self.slowdowns[idx] = ipc / self.isolated_ipc[name]
            self._last_retired[idx] = stats.retired_thread_insts
        self._last_cycle = cycle
        if engine.num_kernels > 1 and not engine.preemption.has_pending:
            self._rebalance(engine)

    # ------------------------------------------------------------- balancing

    def _rebalance(self, engine: GPUSimulator) -> None:
        """Move one TB per SM from the least to the most slowed kernel."""
        fastest = max(self.slowdowns, key=self.slowdowns.get)
        slowest = min(self.slowdowns, key=self.slowdowns.get)
        if fastest == slowest:
            return
        gap = self.slowdowns[fastest] - self.slowdowns[slowest]
        if gap < FAIRNESS_GAP:
            return
        for sm in engine.sms:
            if sm.tb_count[fastest] <= 1:
                continue
            engine.set_tb_target(sm.sm_id, fastest,
                                 sm.tb_count[fastest] - 1)
            engine.set_tb_target(sm.sm_id, slowest,
                                 engine.tb_targets[sm.sm_id][slowest] + 1)
            self.moves += 1
            return  # one move per epoch: hill-climbing pace

    # --------------------------------------------------------------- metrics

    def fairness_index(self) -> float:
        """Min/max slowdown ratio: 1.0 is perfectly fair (as in [42])."""
        if not self.slowdowns:
            return 1.0
        values = list(self.slowdowns.values())
        top = max(values)
        return (min(values) / top) if top > 0 else 1.0
