"""Sharing regimes from the paper's design space (Section 2.3, Figure 2).

The paper positions its contribution against three other ways of running
multiple kernels on one GPU:

* **Time multiplexing** (Figure 2a, the "third type" of sharing) —
  :class:`SerialPolicy`: kernels take turns owning the whole GPU, switching
  at slice boundaries via SM-wide context switch.
* **Spatial partitioning** (Figure 2b) — :class:`repro.baselines.SpartPolicy`.
* **Fine-grained SMK sharing** (Figure 2c) — the base
  :class:`repro.sim.SharingPolicy` (unmanaged) and
  :class:`FairSMKPolicy`, the *fairness*-oriented manager of the SMK paper
  [42] that the QoS design explicitly contrasts itself with: fairness
  equalises slowdown across all kernels, QoS differentiates it.
"""

from repro.sharing.serial import SerialPolicy
from repro.sharing.fairness import FairSMKPolicy

__all__ = ["SerialPolicy", "FairSMKPolicy"]
