"""Time-multiplexed kernel execution (Figure 2a).

The pre-preemption state of practice (Section 2.3's "third type"): kernels
take turns owning the entire GPU.  We model a round-robin scheduler with a
slice of ``slice_epochs`` epochs; at each slice boundary the outgoing
kernel's TBs are context-switched out (paying the full preemption cost) and
the incoming kernel fills every SM.

This is the regime whose weaknesses motivate the paper: resource
under-utilisation inside each SM, long-kernel head-of-line blocking, and —
without quota machinery — only the coarsest control over progress rates.
"""

from __future__ import annotations

from repro.sim.policy import PolicyContext, SharingPolicy


class SerialPolicy(SharingPolicy):
    """Round-robin whole-GPU time multiplexing."""

    uses_quotas = False
    name = "serial"

    def __init__(self, slice_epochs: int = 1):
        if slice_epochs <= 0:
            raise ValueError("slice_epochs must be positive")
        self.slice_epochs = slice_epochs
        self.current = 0
        self.switches = 0

    def setup(self, ctx: PolicyContext) -> None:
        self._own_gpu(ctx, self.current)

    def on_epoch_start(self, ctx: PolicyContext, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index == 0 or ctx.num_kernels == 1:
            return
        if epoch_index % self.slice_epochs != 0:
            return
        if ctx.preemption_pending:
            return  # let the previous switch drain before the next
        self.current = (self.current + 1) % ctx.num_kernels
        self._own_gpu(ctx, self.current)
        self.switches += 1

    def _own_gpu(self, ctx: PolicyContext, owner: int) -> None:
        max_tbs = ctx.config.sm.max_tbs
        for sm_id in range(ctx.num_sms):
            for kernel_idx in range(ctx.num_kernels):
                target = max_tbs if kernel_idx == owner else 0
                ctx.set_tb_target(sm_id, kernel_idx, target)
