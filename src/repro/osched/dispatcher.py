"""The GPU server: periodic applications, deadlines, and drop accounting.

An :class:`Application` is a repeatedly launched kernel — the paper's
datacenter model ("QoS kernels are repeatedly executing datacenter-scale
workloads, and their performance and execution length can be predicted").
Each submission period, one *job* of ``instructions_per_job`` thread
instructions must finish within the period, or it counts as dropped (a
missed frame).

:class:`GPUServer` co-schedules every submitted application on one
simulated GPU.  QoS applications get an IPC goal from
:func:`repro.qos.translate_qos_goal`; best-effort applications run on
leftover resources.  Progress is sampled each epoch, and job completion
times are recovered from the per-application retirement timeline by linear
interpolation within epochs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.config import GPUConfig
from repro.kernels import get_kernel
from repro.kernels.spec import KernelSpec
from repro.qos import QoSPolicy, QoSRequirement, TransferModel, translate_qos_goal
from repro.sim import GPUSimulator, LaunchedKernel


@dataclass(frozen=True)
class Application:
    """A periodic GPU workload with an optional deadline."""

    name: str
    kernel: Union[str, KernelSpec]
    period_s: float
    instructions_per_job: int
    qos: bool = True
    input_bytes: int = 0
    output_bytes: int = 0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.instructions_per_job <= 0:
            raise ValueError("instructions_per_job must be positive")

    @property
    def spec(self) -> KernelSpec:
        if isinstance(self.kernel, KernelSpec):
            return self.kernel
        return get_kernel(self.kernel)

    def requirement(self) -> QoSRequirement:
        return QoSRequirement(deadline_s=self.period_s,
                              instructions=self.instructions_per_job,
                              input_bytes=self.input_bytes,
                              output_bytes=self.output_bytes)


@dataclass
class ApplicationReport:
    """Deadline attainment for one application over the simulated window."""

    name: str
    qos: bool
    ipc_goal: Optional[float]
    achieved_ipc: float
    jobs_completed: int
    jobs_due: int
    jobs_dropped: int
    completion_times_s: List[float] = field(repr=False, default_factory=list)

    @property
    def drop_rate(self) -> float:
        if self.jobs_due == 0:
            return 0.0
        return self.jobs_dropped / self.jobs_due


@dataclass
class ServerReport:
    """Outcome of one server run."""

    simulated_seconds: float
    applications: List[ApplicationReport]

    def app(self, name: str) -> ApplicationReport:
        for report in self.applications:
            if report.name == name:
                return report
        raise KeyError(name)


class _TimelinePolicy(QoSPolicy):
    """QoSPolicy that additionally records per-epoch retirement timelines."""

    def __init__(self, scheme: str):
        super().__init__(scheme)
        self.timeline: List[Tuple[int, Tuple[int, ...]]] = []

    def on_epoch_start(self, ctx, cycle, epoch_index):
        self.timeline.append((cycle, tuple(
            ctx.retired(idx) for idx in range(ctx.num_kernels))))
        super().on_epoch_start(ctx, cycle, epoch_index)


class GPUServer:
    """Co-schedules periodic applications on one QoS-managed GPU."""

    def __init__(self, gpu: GPUConfig,
                 transfers: TransferModel = TransferModel(),
                 scheme: str = "rollover"):
        self.gpu = gpu
        self.transfers = transfers
        self.scheme = scheme
        self.applications: List[Application] = []

    def submit(self, application: Application) -> None:
        if any(app.name == application.name for app in self.applications):
            raise ValueError(f"application {application.name!r} already submitted")
        if any(app.spec.name == application.spec.name
               for app in self.applications):
            raise ValueError(
                f"kernel {application.spec.name!r} already in use; give the "
                "application a distinct KernelSpec")
        self.applications.append(application)

    # ------------------------------------------------------------------ run

    def run(self, seconds: float) -> ServerReport:
        """Simulate ``seconds`` of wall-clock time and score every deadline."""
        if not self.applications:
            raise ValueError("no applications submitted")
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        frequency_hz = self.gpu.core_freq_mhz * 1e6
        cycles = int(seconds * frequency_hz)

        launches = []
        goals: List[Optional[float]] = []
        for app in self.applications:
            if app.qos:
                goal = translate_qos_goal(app.requirement(),
                                          self.gpu.core_freq_mhz,
                                          self.transfers)
                launches.append(LaunchedKernel(app.spec, is_qos=True,
                                               ipc_goal=goal))
            else:
                goal = None
                launches.append(LaunchedKernel(app.spec))
            goals.append(goal)

        policy = _TimelinePolicy(self.scheme)
        simulator = GPUSimulator(self.gpu, launches, policy)
        simulator.run(cycles)
        # Final timeline point so the last partial epoch is scored too.
        policy.timeline.append((simulator.cycle, tuple(
            stats.retired_thread_insts for stats in simulator.kernel_stats)))

        reports = []
        for idx, app in enumerate(self.applications):
            reports.append(self._score(app, idx, goals[idx], policy.timeline,
                                       frequency_hz, seconds))
        return ServerReport(simulated_seconds=seconds, applications=reports)

    # -------------------------------------------------------------- scoring

    def _score(self, app: Application, kernel_idx: int,
               goal: Optional[float], timeline, frequency_hz: float,
               seconds: float) -> ApplicationReport:
        cycles_points = [point[0] for point in timeline]
        retired_points = [point[1][kernel_idx] for point in timeline]
        total_retired = retired_points[-1]
        total_cycles = max(1, cycles_points[-1])

        transfer_s = (self.transfers.transfer_time_s(app.input_bytes)
                      + self.transfers.transfer_time_s(app.output_bytes))
        jobs_due = int(seconds / app.period_s)
        completions: List[float] = []
        dropped = 0
        for job in range(jobs_due):
            needed = (job + 1) * app.instructions_per_job
            finish_cycle = _cycle_reaching(cycles_points, retired_points,
                                           needed)
            if finish_cycle is None:
                dropped += jobs_due - job
                break
            finish_s = finish_cycle / frequency_hz + (job + 1) * transfer_s
            completions.append(finish_s)
            # Periodic deadline: job j must be done by the end of period j.
            if finish_s > (job + 1) * app.period_s:
                dropped += 1
        return ApplicationReport(
            name=app.name,
            qos=app.qos,
            ipc_goal=goal,
            achieved_ipc=total_retired / total_cycles,
            jobs_completed=len(completions),
            jobs_due=jobs_due,
            jobs_dropped=dropped,
            completion_times_s=completions,
        )


def _cycle_reaching(cycles_points, retired_points, needed) -> Optional[float]:
    """Cycle at which cumulative retirement first reaches ``needed``
    (linear interpolation within the surrounding epoch)."""
    index = bisect.bisect_left(retired_points, needed)
    if index >= len(retired_points):
        return None
    if index == 0:
        return float(cycles_points[0])
    span = retired_points[index] - retired_points[index - 1]
    if span <= 0:
        return float(cycles_points[index])
    fraction = (needed - retired_points[index - 1]) / span
    return (cycles_points[index - 1]
            + fraction * (cycles_points[index] - cycles_points[index - 1]))
