"""Online prediction of kernel execution demand.

Section 3.2 assumes datacenter workloads are stable enough that "the total
number of instructions of the kernel ... can be accurately predicted by the
runtime or application with machine learning algorithms according to
previous work [Baymax]".  This module supplies that runtime piece: an
exponentially weighted online estimator of per-job instruction counts with
a quantile-style safety margin, so the dispatcher can translate deadlines
into IPC goals without being told exact job sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DemandEstimate:
    """Predicted per-job instruction demand for one application."""

    mean: float
    deviation: float
    samples: int

    def with_margin(self, sigmas: float = 2.0) -> float:
        """Conservative prediction: mean plus ``sigmas`` mean deviations.

        Under-prediction causes missed deadlines (the goal was set too
        low); over-prediction merely reserves slack that the non-QoS goal
        search hands back.  Asymmetric costs justify the margin.
        """
        return self.mean + sigmas * self.deviation


class OnlineDemandPredictor:
    """EWMA + mean-absolute-deviation estimator per application."""

    def __init__(self, alpha: float = 0.25, warmup_samples: int = 3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if warmup_samples < 1:
            raise ValueError("warmup_samples must be >= 1")
        self.alpha = alpha
        self.warmup_samples = warmup_samples
        self._means: Dict[str, float] = {}
        self._deviations: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._history: Dict[str, List[float]] = {}

    def observe(self, app_name: str, instructions: float) -> None:
        """Record one completed job's actual instruction count."""
        if instructions < 0:
            raise ValueError("instruction count cannot be negative")
        count = self._counts.get(app_name, 0)
        if count == 0:
            self._means[app_name] = instructions
            self._deviations[app_name] = 0.0
        else:
            mean = self._means[app_name]
            error = abs(instructions - mean)
            self._means[app_name] = (self.alpha * instructions
                                     + (1 - self.alpha) * mean)
            self._deviations[app_name] = (self.alpha * error
                                          + (1 - self.alpha)
                                          * self._deviations[app_name])
        self._counts[app_name] = count + 1
        self._history.setdefault(app_name, []).append(instructions)

    def ready(self, app_name: str) -> bool:
        """Enough samples to trust the estimate?"""
        return self._counts.get(app_name, 0) >= self.warmup_samples

    def estimate(self, app_name: str) -> DemandEstimate:
        if app_name not in self._means:
            raise KeyError(f"no observations for {app_name!r}")
        return DemandEstimate(mean=self._means[app_name],
                              deviation=self._deviations[app_name],
                              samples=self._counts[app_name])

    def prediction_error(self, app_name: str) -> float:
        """Mean relative |error| of one-step-ahead predictions (backtest)."""
        history = self._history.get(app_name, [])
        if len(history) < 2:
            return 0.0
        mean = history[0]
        errors = []
        for value in history[1:]:
            if mean > 0:
                errors.append(abs(value - mean) / mean)
            mean = self.alpha * value + (1 - self.alpha) * mean
        return sum(errors) / len(errors) if errors else 0.0
