"""Cluster-level placement over QoS-managed GPUs (the Mystic/Baymax layer).

Section 5: "Baymax manages QoS by predicting the execution time of a
kernel... Mystic used machine learning to predict whether kernels can share
a GPU efficiently, and distribute kernels in a cluster.  All those designs
are orthogonal to our work.  They can utilize our proposed mechanism to
have more control on the execution of kernels."

This module is that orthogonal layer, utilising our mechanism: a
:class:`ClusterScheduler` places applications onto a fleet of simulated
GPUs, using interference-aware scoring (don't stack bandwidth-saturating
kernels; keep headroom for QoS demands), then validates each GPU's
co-schedule by actually running it under the paper's Rollover policy via
:class:`~repro.osched.GPUServer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import GPUConfig
from repro.kernels import intensity_class
from repro.osched.dispatcher import Application, GPUServer, ServerReport
from repro.qos import TransferModel

#: Scoring weights: stacking two memory-intensive tenants on one GPU is the
#: dominant interference risk (the paper's M+M class), QoS demand second.
MEMORY_STACK_PENALTY = 10.0
QOS_LOAD_PENALTY = 4.0
TENANT_PENALTY = 1.0


@dataclass
class GPUSlot:
    """One GPU of the fleet and the tenants placed on it."""

    index: int
    gpu: GPUConfig
    tenants: List[Application] = field(default_factory=list)

    def memory_tenants(self) -> int:
        return sum(1 for app in self.tenants
                   if self._intensity(app) == "M")

    def qos_demand(self) -> float:
        """Sum of tenants' goal fractions of machine peak (rough load)."""
        peak = (self.gpu.num_sms * self.gpu.sm.warp_schedulers
                * self.gpu.sm.warp_size)
        demand = 0.0
        for app in self.tenants:
            if not app.qos:
                continue
            frequency_hz = self.gpu.core_freq_mhz * 1e6
            ipc_needed = app.instructions_per_job / (frequency_hz
                                                     * app.period_s)
            demand += ipc_needed / peak
        return demand

    @staticmethod
    def _intensity(app: Application) -> str:
        spec = app.spec
        try:
            return intensity_class(spec.name)
        except ValueError:
            return "M" if spec.intensity == "memory" else "C"

    def placement_score(self, app: Application) -> float:
        """Lower is better: predicted interference if ``app`` lands here."""
        score = TENANT_PENALTY * len(self.tenants)
        if self._intensity(app) == "M":
            score += MEMORY_STACK_PENALTY * self.memory_tenants()
        if app.qos:
            score += QOS_LOAD_PENALTY * self.qos_demand()
        return score


@dataclass
class ClusterReport:
    """Placement plus per-GPU validation results."""

    placements: Dict[str, int]
    gpu_reports: List[Optional[ServerReport]]

    def gpu_of(self, app_name: str) -> int:
        return self.placements[app_name]

    @property
    def total_drops(self) -> int:
        total = 0
        for report in self.gpu_reports:
            if report is None:
                continue
            total += sum(app.jobs_dropped for app in report.applications)
        return total

    @property
    def qos_drops(self) -> int:
        """Dropped jobs of QoS tenants only — the fleet's SLO violations."""
        total = 0
        for report in self.gpu_reports:
            if report is None:
                continue
            total += sum(app.jobs_dropped for app in report.applications
                         if app.qos)
        return total


class ClusterScheduler:
    """Greedy interference-aware placement over a homogeneous fleet."""

    def __init__(self, gpus: List[GPUConfig],
                 transfers: TransferModel = TransferModel(),
                 scheme: str = "rollover"):
        if not gpus:
            raise ValueError("fleet must contain at least one GPU")
        self.slots = [GPUSlot(index, gpu) for index, gpu in enumerate(gpus)]
        self.transfers = transfers
        self.scheme = scheme

    def place(self, applications: List[Application]) -> Dict[str, int]:
        """Assign each application to the least-interfering GPU.

        QoS applications are placed first (largest demand first) so
        best-effort tenants fill around them, mirroring Baymax's
        reservation order.
        """
        ordered = sorted(
            applications,
            key=lambda app: (not app.qos,
                             -app.instructions_per_job / app.period_s))
        placements: Dict[str, int] = {}
        for app in ordered:
            slot = min(self.slots, key=lambda s: s.placement_score(app))
            slot.tenants.append(app)
            placements[app.name] = slot.index
        return placements

    def run(self, applications: List[Application],
            seconds: float) -> ClusterReport:
        """Place and validate: simulate every occupied GPU under QoS."""
        placements = self.place(applications)
        reports: List[Optional[ServerReport]] = []
        for slot in self.slots:
            if not slot.tenants:
                reports.append(None)
                continue
            server = GPUServer(slot.gpu, transfers=self.transfers,
                               scheme=self.scheme)
            for app in slot.tenants:
                server.submit(app)
            reports.append(server.run(seconds))
        return ClusterReport(placements=placements, gpu_reports=reports)
