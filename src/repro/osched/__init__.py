"""OS-resident kernel scheduling over the QoS-managed GPU (Section 3.2).

The paper's mechanisms live inside the GPU; this package is the software
above them: applications submit *periodic jobs* (e.g. one kernel per video
frame) with deadlines, the dispatcher translates each deadline into an IPC
goal (accounting for PCIe transfers and queueing), launches everything onto
one simulated GPU under the chosen QoS policy, and reports per-application
deadline attainment.

Section 3.2's claim — "our design fills in this gap to control how sharer
kernels should use the resources within the GPU... which increases the
likelihood of meeting QoS goals even if a kernel has a late start" — is
directly measurable here as frame-drop rates.
"""

from repro.osched.dispatcher import (
    Application,
    ApplicationReport,
    GPUServer,
    ServerReport,
)
from repro.osched.predictor import DemandEstimate, OnlineDemandPredictor
from repro.osched.cluster import ClusterReport, ClusterScheduler, GPUSlot

__all__ = [
    "Application",
    "ApplicationReport",
    "GPUServer",
    "ServerReport",
    "DemandEstimate",
    "OnlineDemandPredictor",
    "ClusterReport",
    "ClusterScheduler",
    "GPUSlot",
]
