"""ASCII rendering of experiment results, in the layout of the paper's
figures (one row per x-axis category, one column per scheme/series)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def _format_cell(value, width: int) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.3f}".rjust(width)
    return str(value).rjust(width)


def format_table(title: str, row_label: str, columns: Sequence[str],
                 rows: Sequence[tuple], notes: Optional[str] = None) -> str:
    """Render rows of (label, value, value, ...) under column headings."""
    label_width = max([len(row_label)] + [len(str(row[0])) for row in rows]) + 2
    widths = [max(len(col), 8) + 2 for col in columns]
    lines = [title, "=" * len(title)]
    header = row_label.ljust(label_width) + "".join(
        col.rjust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        label, *values = row
        cells = "".join(_format_cell(value, width)
                        for value, width in zip(values, widths))
        lines.append(str(label).ljust(label_width) + cells)
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def series_rows(x_labels: Sequence, series: Dict[str, Dict],
                columns: Sequence[str]) -> List[tuple]:
    """Convert {series: {x: value}} into format_table rows."""
    rows = []
    for x in x_labels:
        rows.append((x,) + tuple(series[col].get(x) for col in columns))
    return rows


def provenance_footer(code_salt: str,
                      experiments: Sequence[Tuple[str, str]]) -> str:
    """One machine-greppable line tying a committed table back to the
    experiment-store rows (and code salt) that produced it.

    Everything in the line is content-derived — experiment ids and spec
    hashes are hashes of the grid, the salt a hash of the source tree — so
    regenerating an unchanged figure on any machine reproduces the footer
    byte for byte.
    """
    parts = [f"code salt {code_salt}"]
    if experiments:
        parts.append("experiments: " + ", ".join(
            f"{experiment_id} (spec {spec_hash[:16]})"
            for experiment_id, spec_hash in experiments))
    return "[provenance] " + "; ".join(parts)
