"""ASCII rendering of experiment results, in the layout of the paper's
figures (one row per x-axis category, one column per scheme/series)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _format_cell(value, width: int) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.3f}".rjust(width)
    return str(value).rjust(width)


def format_table(title: str, row_label: str, columns: Sequence[str],
                 rows: Sequence[tuple], notes: Optional[str] = None) -> str:
    """Render rows of (label, value, value, ...) under column headings."""
    label_width = max([len(row_label)] + [len(str(row[0])) for row in rows]) + 2
    widths = [max(len(col), 8) + 2 for col in columns]
    lines = [title, "=" * len(title)]
    header = row_label.ljust(label_width) + "".join(
        col.rjust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        label, *values = row
        cells = "".join(_format_cell(value, width)
                        for value, width in zip(values, widths))
        lines.append(str(label).ljust(label_width) + cells)
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def series_rows(x_labels: Sequence, series: Dict[str, Dict],
                columns: Sequence[str]) -> List[tuple]:
    """Convert {series: {x: value}} into format_table rows."""
    rows = []
    for x in x_labels:
        rows.append((x,) + tuple(series[col].get(x) for col in columns))
    return rows
