"""``repro-gpu-qos exp``: operate on the persistent experiment store.

Subcommands::

    exp list              every registered experiment (id, status, progress)
    exp show <id>         grid summary and per-status case counts
    exp show --diff A B   grid-level diff: machine/cycles/telemetry deltas,
                          specs only in one grid, status drift on shared specs
    exp resume <id>       pull the remaining pending cases of an experiment
    exp gc                drop experiments stale under the current code salt

``resume`` rebuilds the exact runner from the stored grid — machine config,
cycle counts, telemetry flag and spec list all come from the experiment row
— and re-enters the ordinary pull loop: cases already done are skipped,
cases left ``running``/``failed`` by the interrupted run are released back
to pending, and the records produced are byte-identical to an uninterrupted
sweep (the simulator is deterministic and case identity is content-hashed).

An experiment registered under a different code salt cannot be resumed:
the cached records its done cases point to are unreachable after a code
edit, so resuming would silently mix toolchains.  ``exp gc`` deletes such
experiments (and, with ``--done``, completed ones).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos exp",
        description="Inspect, resume and garbage-collect the persistent "
                    "experiment store (REPRO_EXPDB)")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list registered experiments")
    show = commands.add_parser(
        "show", help="describe one experiment, or diff two")
    show.add_argument("experiment_id")
    show.add_argument("other", nargs="?", default=None,
                      help="second experiment id (with --diff)")
    show.add_argument("--diff", action="store_true",
                      help="compare two experiments at the grid level: "
                           "machine/cycles/telemetry differences, specs "
                           "only in one grid, and per-case status drift "
                           "on the shared specs")
    resume = commands.add_parser(
        "resume", help="run the remaining pending cases of an experiment")
    resume.add_argument("experiment_id")
    resume.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: REPRO_WORKERS "
                             "or cpu_count-1)")
    resume.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent case cache")
    gc = commands.add_parser(
        "gc", help="drop experiments whose code salt no longer matches")
    gc.add_argument("--done", action="store_true",
                    help="also drop completed experiments")
    return parser


def _open_store():
    from repro.harness.expdb import open_default_expdb
    db = open_default_expdb()
    if db is None:
        print("experiment store disabled by REPRO_EXPDB", file=sys.stderr)
    return db


def _progress(db, experiment_id: str) -> str:
    counts = db.case_counts(experiment_id)
    done = counts.get("done", 0)
    total = sum(counts.values())
    return f"{done}/{total}"


def _list_command(db) -> int:
    from repro.harness.cache import code_salt
    current_salt = code_salt()
    records = db.experiments()
    if not records:
        print("no experiments registered")
        return 0
    print(f"{'id':<18} {'status':<8} {'done':>9}  {'salt':<7} created")
    for record in records:
        salt = ("current" if record["code_salt"] == current_salt else "stale")
        created = time.strftime(  # repro: noqa=DET001
            "%Y-%m-%d %H:%M", time.localtime(record["created_at"]))
        print(f"{record['id']:<18} {record['status']:<8} "
              f"{_progress(db, record['id']):>9}  {salt:<7} {created}")
    return 0


def _show_command(db, experiment_id: str) -> int:
    from repro.harness.cache import code_salt
    record = db.experiment(experiment_id)
    if record is None:
        print(f"unknown experiment {experiment_id!r}", file=sys.stderr)
        return 2
    grid = record["grid"]
    print(f"id:         {record['id']}")
    print(f"status:     {record['status']}")
    print(f"spec hash:  {record['spec_hash']}")
    salt_state = ("current" if record["code_salt"] == code_salt()
                  else "STALE (resume refused; run 'exp gc')")
    print(f"code salt:  {record['code_salt']} ({salt_state})")
    print(f"machine:    {grid['gpu']['num_sms']} SMs, "
          f"{grid['gpu']['num_mcs']} MCs, engine core "
          f"{grid['gpu']['engine_core']}")
    print(f"cycles:     {grid['cycles']} (+{grid['warmup']} warm-up), "
          f"telemetry {'on' if grid['telemetry'] else 'off'}")
    print(f"cases:      {record['total_cases']}")
    for status, count in sorted(db.case_counts(experiment_id).items()):
        print(f"  {status:<9} {count}")
    isolated = db.isolated_ipcs(experiment_id)
    if isolated:
        print(f"isolated:   {len(isolated)} denominators recorded "
              f"({', '.join(sorted(isolated))})")
    return 0


def _spec_label(payload: dict) -> str:
    """One-line human label for a stored CaseSpec payload."""
    parts = []
    for name, qos, goal in zip(payload.get("names", ()),
                               payload.get("qos", ()),
                               payload.get("goals", ())):
        mark = f"{name}*{goal}" if qos else name
        parts.append(mark)
    return f"{'+'.join(parts)} [{payload.get('policy', '?')}]"


def _spec_key(payload: dict) -> str:
    import json
    return json.dumps(payload, sort_keys=True)


def _diff_command(db, id_a: str, id_b: str) -> int:
    """Grid-level diff of two experiments: everything that can make two
    sweeps incomparable — machine, cycles, telemetry, the spec grids
    themselves — plus per-case status drift on the specs they share."""
    records = {}
    for experiment_id in (id_a, id_b):
        record = db.experiment(experiment_id)
        if record is None:
            print(f"unknown experiment {experiment_id!r}", file=sys.stderr)
            return 2
        records[experiment_id] = record
    a, b = records[id_a], records[id_b]
    print(f"A: {id_a}  (status {a['status']}, spec hash {a['spec_hash']})")
    print(f"B: {id_b}  (status {b['status']}, spec hash {b['spec_hash']})")
    if a["code_salt"] != b["code_salt"]:
        print(f"code salt:  A={a['code_salt']}  B={b['code_salt']}  "
              "(DIFFERENT toolchains — records are not comparable)")

    grid_a, grid_b = a["grid"], b["grid"]
    scalar_diffs = []
    gpu_keys = sorted(set(grid_a["gpu"]) | set(grid_b["gpu"]))
    for key in gpu_keys:
        va, vb = grid_a["gpu"].get(key), grid_b["gpu"].get(key)
        if va != vb:
            scalar_diffs.append((f"gpu.{key}", va, vb))
    for key in ("cycles", "warmup", "telemetry"):
        if grid_a.get(key) != grid_b.get(key):
            scalar_diffs.append((key, grid_a.get(key), grid_b.get(key)))
    if scalar_diffs:
        print("grid differences:")
        for key, va, vb in scalar_diffs:
            print(f"  {key:<18} A={va!r}  B={vb!r}")
    else:
        print("grid:       machine, cycles and telemetry identical")

    specs_a = {_spec_key(payload): payload for payload in grid_a["specs"]}
    specs_b = {_spec_key(payload): payload for payload in grid_b["specs"]}
    only_a = [specs_a[key] for key in specs_a if key not in specs_b]
    only_b = [specs_b[key] for key in specs_b if key not in specs_a]
    shared = [key for key in specs_a if key in specs_b]
    print(f"specs:      {len(shared)} shared, {len(only_a)} only in A, "
          f"{len(only_b)} only in B")
    for payload in only_a:
        print(f"  only A:   {_spec_label(payload)}")
    for payload in only_b:
        print(f"  only B:   {_spec_label(payload)}")

    if shared:
        status_a = {_spec_key(case["spec"]): case["status"]
                    for case in db.cases(id_a)}
        status_b = {_spec_key(case["spec"]): case["status"]
                    for case in db.cases(id_b)}
        drifted = [key for key in shared
                   if status_a.get(key) != status_b.get(key)]
        if drifted:
            print(f"status:     {len(drifted)} shared spec(s) differ")
            for key in drifted:
                print(f"  {_spec_label(specs_a[key])}: "
                      f"A={status_a.get(key, '?')}  "
                      f"B={status_b.get(key, '?')}")
        else:
            print("status:     every shared spec has the same case status")
    return 0


def _resume_command(db, experiment_id: str, workers: Optional[int],
                    no_cache: bool) -> int:
    from repro.config import gpu_config_from_dict
    from repro.harness.cache import code_salt, open_default_cache
    from repro.harness.parallel import ParallelCaseRunner
    from repro.harness.runner import CaseSpec

    record = db.experiment(experiment_id)
    if record is None:
        print(f"unknown experiment {experiment_id!r}", file=sys.stderr)
        return 2
    if record["code_salt"] != code_salt():
        print(f"refusing to resume {experiment_id}: registered under code "
              f"salt {record['code_salt']}, current is {code_salt()} "
              "(its cached results are unreachable; run 'exp gc')",
              file=sys.stderr)
        return 2
    before = db.case_counts(experiment_id)
    pending = sum(count for status, count in before.items()
                  if status != "done")
    grid = record["grid"]
    runner = ParallelCaseRunner(
        gpu_config_from_dict(grid["gpu"]), grid["cycles"],
        warmup_cycles=grid["warmup"],
        cache=None if no_cache else open_default_cache(),
        workers=workers, telemetry=bool(grid["telemetry"]), expdb=db)
    specs = [CaseSpec.from_payload(payload) for payload in grid["specs"]]
    records = runner.sweep(specs)
    after = db.case_counts(experiment_id)
    print(f"{experiment_id}: {after.get('done', 0)}/{len(records)} cases "
          f"done ({pending} were outstanding)", file=sys.stderr)
    return 0


def _gc_command(db, drop_done: bool) -> int:
    from repro.harness.cache import code_salt
    removed = db.gc(current_salt=code_salt(), drop_done=drop_done)
    print(f"dropped {removed} experiment(s)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    db = _open_store()
    if db is None:
        return 0
    try:
        if args.command == "list":
            return _list_command(db)
        if args.command == "show":
            if args.diff:
                if args.other is None:
                    print("error: show --diff needs two experiment ids",
                          file=sys.stderr)
                    return 2
                return _diff_command(db, args.experiment_id, args.other)
            if args.other is not None:
                print("error: a second experiment id needs --diff",
                      file=sys.stderr)
                return 2
            return _show_command(db, args.experiment_id)
        if args.command == "resume":
            return _resume_command(db, args.experiment_id, args.workers,
                                   args.no_cache)
        return _gc_command(db, args.done)
    finally:
        db.close()
