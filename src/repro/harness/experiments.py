"""One entry point per table/figure of the paper's evaluation (Section 4).

Every experiment returns an :class:`ExperimentResult` holding both the
formatted paper-style table and the raw data used by tests and benchmarks.
Underlying simulations are shared across experiments through a per-suite
:class:`~repro.harness.runner.CaseRunner` memo, exactly as the paper's
figures all slice one set of runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import GPUConfig, PreemptionConfig
from repro.kernels import intensity_class, pair_class
from repro.harness.metrics import (
    improvement,
    mean_instructions_per_watt,
    mean_nonqos_throughput,
    mean_qos_overshoot,
    miss_histogram,
    qos_reach,
    MISS_BUCKETS,
)
from repro.harness.cache import code_salt, open_default_cache
from repro.harness.expdb import open_default_expdb
from repro.harness.parallel import ParallelCaseRunner
from repro.harness.presets import ExperimentPreset, FAST_PRESET
from repro.harness.report import format_table, provenance_footer, series_rows
from repro.harness.runner import CaseRecord, CaseRunner, CaseSpec

PAIR_POLICIES = ("spart", "naive", "elastic", "rollover")


@dataclass
class ExperimentResult:
    """The outcome of regenerating one paper figure/table."""

    experiment_id: str
    title: str
    table: str
    data: Dict = field(default_factory=dict)
    #: ``((experiment id, spec hash), ...)`` of every sweep this figure
    #: registered in the persistent experiment store, in registration
    #: order — set by :meth:`ExperimentSuite.run`, empty when the store is
    #: disabled.  The same pairs appear as the ``[provenance]`` footer of
    #: :attr:`table` (and therefore of every committed ``results/*.txt``).
    provenance: Tuple[Tuple[str, str], ...] = ()

    def __str__(self) -> str:
        return self.table


class ExperimentSuite:
    """Shares simulation runs across the figures of one preset.

    Each figure driver submits its *full* case list up front through
    :meth:`CaseRunner.sweep`, so independent cases fan out over the parallel
    runner's process pool and the per-figure loops below are pure memo
    slicing.  ``workers`` follows :func:`repro.harness.parallel.resolve_workers`
    (``REPRO_WORKERS`` env, else cores-1); ``cache`` defaults to the shared
    persistent store unless ``REPRO_CACHE=0`` disables it.
    """

    def __init__(self, preset: ExperimentPreset = FAST_PRESET,
                 workers: Optional[int] = None, cache="default",
                 expdb="default"):
        self.preset = preset
        self.workers = workers
        self.cache = open_default_cache() if cache == "default" else cache
        self.expdb = open_default_expdb() if expdb == "default" else expdb
        self._runners: Dict[Tuple[GPUConfig, int], CaseRunner] = {}
        self._serve_runners: Dict[tuple, object] = {}

    def runner(self, gpu: Optional[GPUConfig] = None,
               cycles: Optional[int] = None) -> CaseRunner:
        key = (gpu or self.preset.gpu, cycles or self.preset.cycles)
        if key not in self._runners:
            self._runners[key] = ParallelCaseRunner(
                *key, cache=self.cache, workers=self.workers,
                expdb=self.expdb)
        return self._runners[key]

    def serve_runner(self, gpu: Optional[GPUConfig] = None):
        """The suite's :class:`repro.serve.runner.ServeRunner` (memoised),
        sharing the suite's cache, experiment store and pool width so load
        sweeps are cached, resumable and provenance-stamped like figure
        sweeps."""
        from repro.serve.runner import ServeRunner
        key = ("serve", gpu or self.preset.gpu)
        if key not in self._serve_runners:
            self._serve_runners[key] = ServeRunner(
                gpu or self.preset.gpu, cache=self.cache, expdb=self.expdb,
                workers=self.workers)
        return self._serve_runners[key]

    def _provenance_sources(self) -> Dict:
        """Every runner whose ``experiment_log`` feeds figure provenance
        (co-run keys are ``(gpu, cycles)``, serving keys ``("serve", gpu)``
        — they cannot collide)."""
        sources: Dict = dict(self._runners)
        sources.update(self._serve_runners)
        return sources

    # ----------------------------------------------------------- sweeps

    def pair_cases(self, policy: str, goal: float,
                   gpu: Optional[GPUConfig] = None) -> List[CaseRecord]:
        # register=False: figure drivers submit their full grid through
        # _sweep_pairs first; these per-(policy, goal) re-sweeps are memo
        # slices and must not flood the store with sub-experiments.
        return self.runner(gpu).sweep(
            [CaseSpec.pair(qos, nonqos, goal, policy)
             for qos, nonqos in self.preset.pairs], register=False)

    def trio_cases(self, policy: str, goal: float,
                   qos_count: int) -> List[CaseRecord]:
        return self.runner().sweep(
            [CaseSpec.trio(trio, qos_count, goal, policy)
             for trio in self.preset.trios], register=False)

    def _sweep_pairs(self, policies: Sequence[str], goals: Sequence[float],
                     gpu: Optional[GPUConfig] = None) -> None:
        """Submit a whole figure's pair grid in one parallel batch."""
        self.runner(gpu).sweep(
            [CaseSpec.pair(qos, nonqos, goal, policy)
             for policy in policies for goal in goals
             for qos, nonqos in self.preset.pairs])

    def _sweep_trios(self, policies: Sequence[str], goals: Sequence[float],
                     qos_count: int) -> None:
        """Submit a whole figure's trio grid in one parallel batch."""
        self.runner().sweep(
            [CaseSpec.trio(trio, qos_count, goal, policy)
             for policy in policies for goal in goals
             for trio in self.preset.trios])

    def _goal_label(self, goal: float, qos_count: int = 1) -> str:
        percent = f"{int(round(goal * 100))}%"
        return percent if qos_count == 1 else f"2x{percent}"

    # ------------------------------------------------------------ figures

    def fig05(self) -> ExperimentResult:
        """Figure 5: miss-distance histogram for Naïve + History adjustment."""
        self._sweep_pairs(("history",), self.preset.pair_goals)
        cases: List[CaseRecord] = []
        for goal in self.preset.pair_goals:
            cases.extend(self.pair_cases("history", goal))
        histogram = miss_histogram(cases)
        overshoot = mean_qos_overshoot(cases, met_only=True)
        total = len(cases)
        missed = sum(histogram.values())
        rows = [(bucket, histogram[bucket]) for bucket in MISS_BUCKETS]
        notes = (f"{missed}/{total} cases missed their goal; successful cases "
                 f"overshoot by {((overshoot or 1) - 1) * 100:.1f}% on average "
                 f"(paper: >700/900 missed, +1.3% overshoot)")
        return ExperimentResult(
            "fig05", "Figure 5: Naive+History misses vs miss distance",
            format_table("Figure 5", "miss bucket", ("cases",), rows, notes),
            data={"histogram": histogram, "total": total, "missed": missed,
                  "overshoot": overshoot},
        )

    def fig06a(self) -> ExperimentResult:
        """Figure 6a: QoSreach vs goal for two-kernel pairs, four schemes."""
        self._sweep_pairs(PAIR_POLICIES, self.preset.pair_goals)
        series = {policy: {} for policy in PAIR_POLICIES}
        for policy in PAIR_POLICIES:
            for goal in self.preset.pair_goals:
                label = self._goal_label(goal)
                series[policy][label] = qos_reach(self.pair_cases(policy, goal))
            series[policy]["AVG"] = _mean(series[policy].values())
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, PAIR_POLICIES)
        return ExperimentResult(
            "fig06a", "Figure 6a: QoSreach vs QoS goals (pairs)",
            format_table("Figure 6a: QoSreach (pairs)", "goal",
                         PAIR_POLICIES, rows,
                         "paper AVG: Spart 0.788, Naive 0.206, Rollover 0.884"),
            data={"series": series},
        )

    def _fig06_trio(self, qos_count: int, goals: Sequence[float],
                    figure: str) -> ExperimentResult:
        policies = ("spart", "rollover")
        self._sweep_trios(policies, goals, qos_count)
        series = {policy: {} for policy in policies}
        for policy in policies:
            for goal in goals:
                label = self._goal_label(goal, qos_count)
                series[policy][label] = qos_reach(
                    self.trio_cases(policy, goal, qos_count))
            series[policy]["AVG"] = _mean(series[policy].values())
        labels = [self._goal_label(g, qos_count) for g in goals] + ["AVG"]
        rows = series_rows(labels, series, policies)
        title = (f"Figure {figure}: QoSreach (trios, {qos_count} QoS kernel"
                 f"{'s' if qos_count > 1 else ''})")
        return ExperimentResult(
            f"fig{figure}", title,
            format_table(title, "goal", policies, rows,
                         "paper: Rollover beats Spart by "
                         + ("43.8%" if qos_count == 2 else "18.8%")),
            data={"series": series},
        )

    def fig06b(self) -> ExperimentResult:
        return self._fig06_trio(1, self.preset.pair_goals, "06b")

    def fig06c(self) -> ExperimentResult:
        return self._fig06_trio(2, self.preset.trio2_goals, "06c")

    def fig07(self) -> ExperimentResult:
        """Figure 7: QoSreach per QoS benchmark + C/M pairing summary."""
        policies = ("spart", "rollover")
        per_kernel: Dict[str, Dict[str, List[CaseRecord]]] = {
            policy: {} for policy in policies}
        per_class: Dict[str, Dict[str, List[CaseRecord]]] = {
            policy: {"C+C": [], "C+M": [], "M+M": []} for policy in policies}
        self._sweep_pairs(policies, self.preset.pair_goals)
        for policy in policies:
            for goal in self.preset.pair_goals:
                for case in self.pair_cases(policy, goal):
                    qos_kernel = case.qos_kernels[0]
                    nonqos_kernel = case.nonqos_kernels[0]
                    per_kernel[policy].setdefault(qos_kernel.name, []).append(case)
                    klass = pair_class(qos_kernel.name, nonqos_kernel.name)
                    per_class[policy][klass].append(case)
        kernel_names = sorted(per_kernel["rollover"])
        rows = []
        series = {policy: {} for policy in policies}
        for name in kernel_names + ["C+C", "C+M", "M+M"]:
            row = [name]
            for policy in policies:
                pool = (per_kernel[policy].get(name)
                        if name in kernel_names else per_class[policy][name])
                value = qos_reach(pool or [])
                series[policy][name] = value
                row.append(value)
            rows.append(tuple(row))
        return ExperimentResult(
            "fig07", "Figure 7: QoSreach vs QoS kernel (pairs)",
            format_table("Figure 7: QoSreach per QoS kernel", "QoS kernel",
                         policies, rows,
                         "paper: both reach all C+C cases; Rollover > Spart "
                         "for C+M and M+M; histo poor for both"),
            data={"series": series},
        )

    def _throughput_figure(self, figure: str, title: str, policies,
                           goals: Sequence[float], qos_count: int,
                           trio: bool) -> ExperimentResult:
        if trio:
            self._sweep_trios(policies, goals, qos_count)
        else:
            self._sweep_pairs(policies, goals)
        series = {policy: {} for policy in policies}
        for policy in policies:
            for goal in goals:
                label = self._goal_label(goal, qos_count)
                cases = (self.trio_cases(policy, goal, qos_count) if trio
                         else self.pair_cases(policy, goal))
                series[policy][label] = mean_nonqos_throughput(cases)
            values = [v for v in series[policy].values() if v is not None]
            series[policy]["AVG"] = _mean(values) if values else None
        labels = [self._goal_label(g, qos_count) for g in goals] + ["AVG"]
        rows = series_rows(labels, series, policies)
        return ExperimentResult(
            figure, title,
            format_table(title, "goal", policies, rows,
                         "normalised to isolated execution; QoS-met cases only"),
            data={"series": series},
        )

    def fig08a(self) -> ExperimentResult:
        return self._throughput_figure(
            "fig08a", "Figure 8a: non-QoS throughput (pairs)",
            ("spart", "rollover"), self.preset.pair_goals, 1, trio=False)

    def fig08b(self) -> ExperimentResult:
        return self._throughput_figure(
            "fig08b", "Figure 8b: non-QoS throughput (trios, 1 QoS)",
            ("spart", "rollover"), self.preset.pair_goals, 1, trio=True)

    def fig08c(self) -> ExperimentResult:
        return self._throughput_figure(
            "fig08c", "Figure 8c: non-QoS throughput (trios, 2 QoS)",
            ("spart", "rollover"), self.preset.trio2_goals, 2, trio=True)

    def fig09(self) -> ExperimentResult:
        """Figure 9: QoS-kernel throughput normalised to its goal."""
        policies = ("spart", "rollover")
        self._sweep_pairs(policies, self.preset.pair_goals)
        series = {policy: {} for policy in policies}
        for policy in policies:
            for goal in self.preset.pair_goals:
                label = self._goal_label(goal)
                series[policy][label] = mean_qos_overshoot(
                    self.pair_cases(policy, goal))
            values = [v for v in series[policy].values() if v is not None]
            series[policy]["AVG"] = _mean(values) if values else None
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, policies)
        return ExperimentResult(
            "fig09", "Figure 9: QoS throughput normalised to goal (pairs)",
            format_table("Figure 9: QoS overshoot", "goal", policies, rows,
                         "paper AVG: Spart 1.116, Rollover 1.028"),
            data={"series": series},
        )

    def fig10(self) -> ExperimentResult:
        """Figure 10: QoSreach, Rollover vs Rollover-Time."""
        policies = ("rollover", "rollover-time")
        self._sweep_pairs(policies, self.preset.pair_goals)
        series = {policy: {} for policy in policies}
        for policy in policies:
            for goal in self.preset.pair_goals:
                series[policy][self._goal_label(goal)] = qos_reach(
                    self.pair_cases(policy, goal))
            series[policy]["AVG"] = _mean(series[policy].values())
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, policies)
        return ExperimentResult(
            "fig10", "Figure 10: QoSreach, Rollover vs Rollover-Time",
            format_table("Figure 10: QoSreach", "goal", policies, rows,
                         "paper: within ~3% of each other on average"),
            data={"series": series},
        )

    def fig11(self) -> ExperimentResult:
        return self._throughput_figure(
            "fig11", "Figure 11: non-QoS throughput, Rollover vs Rollover-Time",
            ("rollover", "rollover-time"), self.preset.pair_goals, 1,
            trio=False)

    def _many_sm_figure(self, figure: str, title: str,
                        metric: str) -> ExperimentResult:
        policies = ("spart", "rollover")
        gpu = self.preset.gpu_many_sm
        self._sweep_pairs(policies, self.preset.pair_goals, gpu=gpu)
        series = {policy: {} for policy in policies}
        for policy in policies:
            for goal in self.preset.pair_goals:
                cases = self.pair_cases(policy, goal, gpu=gpu)
                label = self._goal_label(goal)
                if metric == "reach":
                    series[policy][label] = qos_reach(cases)
                else:
                    series[policy][label] = mean_nonqos_throughput(cases)
            values = [v for v in series[policy].values() if v is not None]
            series[policy]["AVG"] = _mean(values) if values else None
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, policies)
        return ExperimentResult(
            figure, title,
            format_table(title, "goal", policies, rows,
                         f"machine: {gpu.num_sms} SMs, "
                         f"{gpu.sm.warp_schedulers} warp schedulers per SM"),
            data={"series": series},
        )

    def fig12(self) -> ExperimentResult:
        return self._many_sm_figure(
            "fig12", "Figure 12: QoSreach on the many-SM machine", "reach")

    def fig13(self) -> ExperimentResult:
        return self._many_sm_figure(
            "fig13", "Figure 13: non-QoS throughput on the many-SM machine",
            "throughput")

    def fig14(self) -> ExperimentResult:
        """Figure 14: inst/Watt improvement of Rollover over Spart (pairs)."""
        series = {"improvement": {}}
        self._sweep_pairs(("rollover", "spart"), self.preset.pair_goals)
        for goal in self.preset.pair_goals:
            rollover = mean_instructions_per_watt(
                self.pair_cases("rollover", goal))
            spart = mean_instructions_per_watt(self.pair_cases("spart", goal))
            series["improvement"][self._goal_label(goal)] = improvement(
                rollover, spart)
        values = [v for v in series["improvement"].values() if v is not None]
        series["improvement"]["AVG"] = _mean(values) if values else None
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, ("improvement",))
        return ExperimentResult(
            "fig14", "Figure 14: inst/Watt improvement over Spart (pairs)",
            format_table("Figure 14: energy efficiency", "goal",
                         ("improvement",), rows, "paper AVG: +9.3%"),
            data={"series": series},
        )

    # ------------------------------------------------------------- tables

    def table1(self) -> ExperimentResult:
        """Table 1: the simulated machine's parameters."""
        gpu = self.preset.gpu
        rows = [
            ("Core Freq.", f"{gpu.core_freq_mhz:.0f}MHz"),
            ("Mem. Freq.", f"{gpu.mem_freq_mhz / 1000:.0f}GHz"),
            ("# of SMs", gpu.num_sms),
            ("# of MC", gpu.num_mcs),
            ("Sched. Policy", gpu.scheduler_policy.upper()),
            ("Registers", f"{gpu.sm.registers_bytes // 1024}KB"),
            ("Shared Memory", f"{gpu.sm.shared_memory_bytes // 1024}KB"),
            ("Threads", gpu.sm.max_threads),
            ("TB Limit", gpu.sm.max_tbs),
            ("Warp Scheduler", gpu.sm.warp_schedulers),
        ]
        return ExperimentResult(
            "table1", "Table 1: simulation parameters",
            format_table("Table 1: simulation parameters", "parameter",
                         ("value",), rows),
            data={"rows": dict(rows)},
        )

    def table2(self) -> ExperimentResult:
        """Table 2: qualitative comparison with prior work (static)."""
        columns = ("CPU QoS", "KernelFusion", "SMK", "SpatialQoS",
                   "WarpedSlicer", "Baymax", "FineGrainedQoS")
        features = [
            ("Software/Hardware", "S", "S", "H", "H", "H", "S", "H"),
            ("QoS Awareness", "y", "", "", "y", "", "y", "y"),
            ("Work on GPUs", "", "y", "y", "y", "y", "y", "y"),
            ("Preemption", "y", "", "y", "y", "", "", "y"),
            ("Active GPU Sharing", "", "y", "y", "y", "y", "", "y"),
            ("Sharing within SMs", "", "y", "y", "", "y", "", "y"),
            ("Fine Perf. Control", "y", "", "", "", "", "", "y"),
            ("Adaptive TLP", "", "", "y", "", "", "", "y"),
        ]
        return ExperimentResult(
            "table2", "Table 2: comparison with prior work",
            format_table("Table 2: comparison with prior work", "feature",
                         columns, features),
            data={"features": features},
        )

    # ---------------------------------------------------------- ablations

    def sec48_preemption(self, goal: float = 0.80) -> ExperimentResult:
        """Section 4.8: preemption overhead on non-QoS throughput (~1.9%)."""
        free_gpu = self.preset.gpu.scaled(
            preemption=PreemptionConfig(enabled=False))
        with_cost = mean_nonqos_throughput(
            self.pair_cases("rollover", goal), met_only=False)
        without_cost = mean_nonqos_throughput(
            self.pair_cases("rollover", goal, gpu=free_gpu), met_only=False)
        overhead = improvement(without_cost, with_cost)
        rows = [("with preemption cost", with_cost),
                ("free preemption", without_cost),
                ("overhead", overhead)]
        return ExperimentResult(
            "sec48a", "Section 4.8: preemption overhead",
            format_table("Section 4.8: preemption overhead", "configuration",
                         ("non-QoS tput",), rows, "paper: 1.93% overhead"),
            data={"with_cost": with_cost, "without_cost": without_cost,
                  "overhead": overhead},
        )

    def sec48_history(self) -> ExperimentResult:
        """Section 4.8: effect of history-based quota adjustment."""
        series = {"naive": {}, "history": {}}
        self._sweep_pairs(("naive", "history"), self.preset.pair_goals)
        for policy in series:
            for goal in self.preset.pair_goals:
                series[policy][self._goal_label(goal)] = qos_reach(
                    self.pair_cases(policy, goal))
            series[policy]["AVG"] = _mean(series[policy].values())
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, ("naive", "history"))
        gain = improvement(series["history"]["AVG"], series["naive"]["AVG"])
        return ExperimentResult(
            "sec48b", "Section 4.8: history-based adjustment ablation",
            format_table("Section 4.8: history adjustment", "goal",
                         ("naive", "history"), rows,
                         f"enabling covers {((gain or 0)) * 100:.1f}% more cases "
                         "(paper: +86.4%)"),
            data={"series": series, "gain": gain},
        )

    def sec48_static(self, goal: float = 0.65) -> ExperimentResult:
        """Section 4.8: static resource management on M+M pairs (+13.3%)."""
        mm_pairs = [(qos, nonqos) for qos, nonqos in self.preset.pairs
                    if intensity_class(qos) == "M" and intensity_class(nonqos) == "M"]
        runner = self.runner()
        with_static = runner.sweep([CaseSpec.pair(q, n, goal, "rollover")
                                    for q, n in mm_pairs])
        without = runner.sweep(
            [CaseSpec.pair(q, n, goal, "rollover-nostatic")
             for q, n in mm_pairs])
        tput_with = mean_nonqos_throughput(with_static, met_only=False)
        tput_without = mean_nonqos_throughput(without, met_only=False)
        gain = improvement(tput_with, tput_without)
        rows = [("static mgmt on", tput_with), ("static mgmt off", tput_without),
                ("improvement", gain)]
        return ExperimentResult(
            "sec48c", "Section 4.8: static resource management (M+M)",
            format_table("Section 4.8: static resource management", "setting",
                         ("non-QoS tput",), rows, "paper: +13.3% on M+M"),
            data={"with": tput_with, "without": tput_without, "gain": gain},
        )

    # ------------------------------------------------------------ extensions
    # Not figures of the paper: ablations over design choices the paper
    # fixes by citation or fiat (epoch length via [17], GTO scheduling,
    # and the need for QoS management at all).

    def ext_epoch_length(self, goal: float = 0.65) -> ExperimentResult:
        """Sensitivity of Rollover's QoSreach to the epoch length.

        Section 4.1 fixes 10K cycles citing [17]; this sweep checks the
        choice is flat around the preset's value.
        """
        base = self.preset.gpu.epoch_length
        series = {"rollover": {}}
        for scale in (0.5, 1.0, 2.0):
            length = max(100, int(base * scale))
            gpu = self.preset.gpu.scaled(epoch_length=length)
            cases = self.runner(gpu).sweep(
                [CaseSpec.pair(q, n, goal, "rollover")
                 for q, n in self.preset.pairs])
            series["rollover"][f"{length} cycles"] = qos_reach(cases)
        labels = list(series["rollover"])
        rows = series_rows(labels, series, ("rollover",))
        return ExperimentResult(
            "ext_epoch_length", "Extension: epoch-length sensitivity",
            format_table("Extension: epoch-length sensitivity "
                         f"(goal {goal:.0%})", "epoch", ("rollover",), rows,
                         "paper fixes 10K cycles citing [17]; QoSreach "
                         "should be flat around the preset value"),
            data={"series": series},
        )

    def ext_scheduler(self, goal: float = 0.65) -> ExperimentResult:
        """GTO vs loose-round-robin under the same QoS machinery.

        The EWS quota filter is policy-agnostic (Section 3.3): it must
        deliver QoS over LRR too, though absolute IPCs differ.
        """
        series = {}
        for policy_name in ("gto", "lrr"):
            gpu = self.preset.gpu.scaled(scheduler_policy=policy_name)
            cases = self.runner(gpu).sweep(
                [CaseSpec.pair(q, n, goal, "rollover")
                 for q, n in self.preset.pairs])
            series[policy_name] = {"QoSreach": qos_reach(cases)}
        rows = series_rows(["QoSreach"], series, ("gto", "lrr"))
        return ExperimentResult(
            "ext_scheduler", "Extension: warp scheduler ablation",
            format_table("Extension: GTO vs LRR under Rollover "
                         f"(goal {goal:.0%})", "metric", ("gto", "lrr"),
                         rows, "the quota filter must work over either "
                               "issue policy"),
            data={"series": series},
        )

    def ext_unmanaged(self) -> ExperimentResult:
        """Unmanaged SMK sharing vs Rollover: why QoS management exists.

        Without quotas, the warp scheduler biases arbitrarily between
        co-runners (Section 3.1), so per-kernel goals are hit only by luck.
        """
        series = {"smk": {}, "rollover": {}}
        self._sweep_pairs(("smk", "rollover"), self.preset.pair_goals)
        for policy in series:
            for goal in self.preset.pair_goals:
                series[policy][self._goal_label(goal)] = qos_reach(
                    self.pair_cases(policy, goal))
            series[policy]["AVG"] = _mean(series[policy].values())
        labels = [self._goal_label(g) for g in self.preset.pair_goals] + ["AVG"]
        rows = series_rows(labels, series, ("smk", "rollover"))
        return ExperimentResult(
            "ext_unmanaged", "Extension: unmanaged SMK vs Rollover",
            format_table("Extension: unmanaged SMK sharing", "goal",
                         ("smk", "rollover"), rows,
                         "fine-grained sharing alone cannot honour goals"),
            data={"series": series},
        )

    def ext_sharing_regimes(self) -> ExperimentResult:
        """The Section 2.3 design space on one axis: system throughput and
        fairness of serial time-multiplexing, unmanaged SMK, fairness-managed
        SMK [42], and spatial partitioning, over the preset's pairs with no
        QoS goals in play.

        Expected shape (the paper's motivation): any concurrent regime beats
        serial on STP; fairness-managed SMK has the best fairness index.
        """
        from repro.baselines import SpartPolicy
        from repro.sharing import FairSMKPolicy, SerialPolicy
        from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy
        from repro.kernels import get_kernel

        runner = self.runner()
        regimes = ("serial", "smk", "fair-smk", "spart")
        series = {regime: {"STP": [], "fairness": []} for regime in regimes}
        for first, second in self.preset.pairs:
            iso = {name: runner.isolated_ipc(name) for name in (first, second)}
            for regime in regimes:
                if regime == "serial":
                    policy = SerialPolicy(slice_epochs=2)
                elif regime == "fair-smk":
                    policy = FairSMKPolicy(iso)
                elif regime == "spart":
                    policy = SpartPolicy()
                else:
                    policy = SharingPolicy()
                launches = [LaunchedKernel(get_kernel(first)),
                            LaunchedKernel(get_kernel(second))]
                if regime == "spart":
                    # Spart needs a QoS anchor; give it a trivial goal so the
                    # hill climber stays put and we measure pure partitioning.
                    launches[0] = LaunchedKernel(get_kernel(first),
                                                 is_qos=True, ipc_goal=1e-6)
                sim = GPUSimulator(self.preset.gpu, launches, policy)
                sim.run(runner.warmup_cycles)
                sim.mark_measurement_start()
                sim.run(self.preset.cycles)
                result = sim.result()
                shares = [result.kernels[i].ipc / iso[name]
                          for i, name in enumerate((first, second))]
                series[regime]["STP"].append(sum(shares))
                top = max(shares)
                series[regime]["fairness"].append(
                    min(shares) / top if top > 0 else 1.0)
        summary = {regime: {metric: _mean(values)
                            for metric, values in metrics.items()}
                   for regime, metrics in series.items()}
        rows = [(metric,) + tuple(summary[regime][metric]
                                  for regime in regimes)
                for metric in ("STP", "fairness")]
        return ExperimentResult(
            "ext_sharing_regimes", "Extension: sharing-regime design space",
            format_table("Extension: sharing regimes (no QoS goals)",
                         "metric", regimes, rows,
                         "STP: higher is better; fairness: min/max "
                         "normalised progress (1.0 = equal slowdown)"),
            data={"summary": summary},
        )

    def ext_fusion(self, goal: float = 0.65) -> ExperimentResult:
        """Kernel fusion vs hardware SMK + QoS (Section 2.3, sharing type 2).

        Fusion makes two kernels co-resident by compiling them into one, so
        the hardware sees a single progress counter: total throughput is
        comparable, but there is no mechanism to give either constituent a
        goal.  For each preset pair we compare the fused kernel's total
        normalised throughput against the SMK co-run, and report the QoS
        capability column the software approach simply lacks.
        """
        from repro.kernels import fuse_kernels, get_kernel
        from repro.sim import GPUSimulator, LaunchedKernel

        runner = self.runner()
        fused_stp: List[float] = []
        smk_stp: List[float] = []
        qos_reached = []
        for first, second in self.preset.pairs:
            iso = {name: runner.isolated_ipc(name)
                   for name in (first, second)}
            fused = fuse_kernels(get_kernel(first), get_kernel(second))
            sim = GPUSimulator(self.preset.gpu, [LaunchedKernel(fused)])
            sim.run(runner.warmup_cycles)
            sim.mark_measurement_start()
            sim.run(self.preset.cycles)
            fused_ipc = sim.result().kernels[0].ipc
            # The software baseline's best case: assume retirement splits by
            # the static thread ratio (nothing enforces it).
            fused_stp.append(0.5 * fused_ipc / iso[first]
                             + 0.5 * fused_ipc / iso[second])
            case = runner.run_pair(first, second, goal, "rollover")
            smk_stp.append(sum(k.normalized_throughput
                               for k in case.kernels))
            qos_reached.append(case.qos_met)
        rows = [
            ("fused kernel", _mean(fused_stp), "no"),
            ("SMK + Rollover", _mean(smk_stp),
             f"{sum(qos_reached)}/{len(qos_reached)} goals"),
        ]
        return ExperimentResult(
            "ext_fusion", "Extension: kernel fusion vs hardware QoS sharing",
            format_table(f"Extension: fusion baseline (goal {goal:.0%})",
                         "approach", ("STP", "per-kernel QoS"), rows,
                         "fusion co-locates kernels but cannot steer either "
                         "one (Section 2.3)"),
            data={"fused_stp": _mean(fused_stp), "smk_stp": _mean(smk_stp),
                  "qos_reach": sum(qos_reached) / max(1, len(qos_reached))},
        )

    def ext_serving(self) -> ExperimentResult:
        """Extension: open-loop online serving — load vs tail latency.

        Sweeps a Poisson request stream (a latency-sensitive compute class
        and a throughput batch class) over three load points on one
        machine, reporting per-class p50/p99 end-to-end latency and SLO
        attainment plus the latency CDF at the heaviest load.  The sweep
        runs through the serving harness, so cases are memoised, cached
        (kind ``serve``), fanned out and resumable like any figure sweep.
        """
        from repro.serve.metrics import class_summary, latency_cdf
        from repro.serve.runner import ServeSpec

        unit = self.preset.cycles
        horizon = 4 * unit
        classes = (("latency", "mri-q", unit, 4, 1.0),
                   ("batch", "lbm", 4 * unit, 4, 1.0))
        loads = (unit // 4, unit // 8, unit // 16)
        specs = [ServeSpec(process="poisson",
                           params=(("mean_interarrival_cycles", float(load)),),
                           classes=classes, seed=0, horizon_cycles=horizon)
                 for load in loads]
        outcomes = self.serve_runner().sweep(specs)
        summaries = {}
        rows = []
        for load, outcome in zip(loads, outcomes):
            summary = class_summary(outcome.records)
            label = f"1/{load}cyc"
            summaries[label] = summary
            lat = summary.get("latency", {})
            bat = summary.get("batch", {})
            rows.append((label,
                         lat.get("p50_latency"), lat.get("p99_latency"),
                         100.0 * lat.get("slo_attainment", 0.0),
                         bat.get("p99_latency"),
                         100.0 * bat.get("slo_attainment", 0.0)))
        load_table = format_table(
            "Extension: online serving (poisson load sweep)", "arrival rate",
            ("lat p50", "lat p99", "lat SLO%", "bat p99", "bat SLO%"), rows,
            "open-loop poisson arrivals; SLO attainment counts rejected and "
            "horizon-unfinished requests as misses")
        cdf = latency_cdf(outcomes[-1].records)
        cdf_points = ("p10", "p25", "p50", "p75", "p90", "p95", "p99", "p100")
        cdf_rows = [(name,) + tuple(points.get(p) for p in cdf_points)
                    for name, points in cdf]
        cdf_table = format_table(
            f"Latency CDF at the heaviest load (1/{loads[-1]}cyc)", "class",
            cdf_points, cdf_rows,
            "end-to-end latency in cycles at the sampled CDF fractions")
        return ExperimentResult(
            "ext_serving", "Extension: online serving under open-loop load",
            load_table + "\n\n" + cdf_table,
            data={"summaries": summaries,
                  "cdf": {name: points for name, points in cdf},
                  "loads": list(loads), "horizon": horizon},
        )

    # --------------------------------------------------------------- driver

    EXPERIMENTS = ("table1", "table2", "fig05", "fig06a", "fig06b", "fig06c",
                   "fig07", "fig08a", "fig08b", "fig08c", "fig09", "fig10",
                   "fig11", "fig12", "fig13", "fig14", "sec48_preemption",
                   "sec48_history", "sec48_static", "ext_epoch_length",
                   "ext_scheduler", "ext_unmanaged", "ext_sharing_regimes",
                   "ext_fusion", "ext_serving")

    def run(self, experiment_id: str) -> ExperimentResult:
        """Run one figure driver and stamp its provenance.

        Whatever sweeps the driver registers in the persistent experiment
        store while running land (deduplicated, in registration order) in
        :attr:`ExperimentResult.provenance`, and the table gains a
        ``[provenance]`` footer naming the experiment ids, spec hashes and
        code salt — the line committed ``results/*.txt`` files carry.
        """
        if experiment_id not in self.EXPERIMENTS:
            raise ValueError(f"unknown experiment {experiment_id!r}; "
                             f"choose from {self.EXPERIMENTS}")
        marks = {key: len(runner.experiment_log)
                 for key, runner in self._provenance_sources().items()}
        result = getattr(self, experiment_id)()
        entries: List[Tuple[str, str]] = []
        for key, runner in self._provenance_sources().items():
            for entry in runner.experiment_log[marks.get(key, 0):]:
                if entry not in entries:
                    entries.append(entry)
        result.provenance = tuple(entries)
        result.table = (result.table.rstrip("\n") + "\n\n"
                        + provenance_footer(code_salt(), result.provenance))
        return result

    def run_all(self) -> List[ExperimentResult]:
        return [self.run(experiment_id) for experiment_id in self.EXPERIMENTS]


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
