"""SQLite experiment store: sweeps as first-class, resumable objects.

The JSONL :class:`~repro.harness.cache.CaseCache` gives individual case
*records* an identity; this module gives the **sweep itself** one.  Every
:meth:`CaseRunner.sweep <repro.harness.runner.CaseRunner.sweep>` registers
its full ``CaseSpec`` grid as a row in the ``experiments`` table (keyed by a
content hash of the machine payload plus the ordered grid — so the same
sweep always maps to the same experiment id) and one row per case in the
``cases`` table.  Workers then **pull** pending cases from the table with a
claim-by-update transaction instead of consuming a static list, which is
what makes sweeps durable:

* an interrupted figure run resumes where it stopped
  (``repro exp resume <id>`` — done cases are never re-simulated);
* re-running a completed experiment performs zero new simulations;
* a committed figure carries provenance (experiment id + spec hash + code
  salt) back to the exact config grid that produced it;
* multi-process — and, with a shared filesystem, multi-machine — fan-out
  claims from the same table (the database is opened in WAL mode).

Layering: this module is deliberately **engine-independent** (enforced by
the ``expdb-engine-independence`` import contract, ``repro lint`` LAY001).
It never imports the simulator, kernels, config or runner: experiments and
cases cross the boundary as plain JSON payloads, and spec hashing lives
with the other content-hash keying in :mod:`repro.harness.cache`.  Result
records are not stored here either — each case row carries a ``cache_key``
*pointer* into the existing :class:`~repro.harness.cache.CaseCache`.

Timestamps (``created_at``/``claimed_at``/...) are recorded for operators
reading ``repro exp list``; they must never feed cache keys, experiment
identity or result ordering (``repro lint`` DET008 guards the classic ways
that regresses: ``ORDER BY <timestamp>`` and timestamp keys in digest
payloads).

Opt-out / relocation via the ``REPRO_EXPDB`` environment variable: ``0`` /
``off`` disables the store entirely, any other value is used as the
database path (a directory gets ``experiments.sqlite`` inside it).
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import time
from typing import Dict, List, Optional, Sequence, Tuple

ENV_EXPDB = "REPRO_EXPDB"

#: Case/experiment lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    id          TEXT PRIMARY KEY,
    spec_hash   TEXT NOT NULL,
    code_salt   TEXT NOT NULL,
    grid        TEXT NOT NULL,
    status      TEXT NOT NULL,
    total_cases INTEGER NOT NULL,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cases (
    experiment_id TEXT NOT NULL,
    case_index    INTEGER NOT NULL,
    spec          TEXT NOT NULL,
    cache_key     TEXT NOT NULL,
    status        TEXT NOT NULL,
    worker        TEXT,
    error         TEXT,
    claimed_at    REAL,
    finished_at   REAL,
    PRIMARY KEY (experiment_id, case_index)
);
CREATE TABLE IF NOT EXISTS isolated (
    experiment_id TEXT NOT NULL,
    kernel        TEXT NOT NULL,
    cache_key     TEXT NOT NULL,
    ipc           REAL,
    PRIMARY KEY (experiment_id, kernel)
);
CREATE INDEX IF NOT EXISTS idx_cases_status
    ON cases (experiment_id, status, case_index);
"""


def expdb_disabled_by_env() -> bool:
    return os.environ.get(ENV_EXPDB, "").strip().lower() in ("0", "off", "no",
                                                             "false")


def default_expdb_path() -> pathlib.Path:
    """``$REPRO_EXPDB`` if set, else ``benchmarks/.cache/experiments.sqlite``
    next to the source tree (falling back to the user cache dir when the
    package is installed outside its repository)."""
    env = os.environ.get(ENV_EXPDB, "").strip()
    if env and not expdb_disabled_by_env():
        path = pathlib.Path(env)
        return path / "experiments.sqlite" if path.is_dir() else path
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".cache" / "experiments.sqlite"
    return pathlib.Path.home() / ".cache" / "repro-gpu-qos" / "experiments.sqlite"


def _now() -> float:
    """Wall-clock stamp for operator-facing columns only: timestamps never
    feed experiment identity, cache keys or result ordering (DET008)."""
    return time.time()  # repro: noqa=DET001


class ExperimentDB:
    """The experiment store: one SQLite database, WAL mode, tiny schema.

    ``path=":memory:"`` builds an ephemeral store — the runners use one to
    route *every* sweep through the same pull-based claim loop even when
    persistence is disabled, so the durable path is never a special case.
    """

    def __init__(self, path=None):
        if path is None:
            path = default_expdb_path()
        self.path = str(path)
        if self.path != ":memory:":
            pathlib.Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        # Concurrent claimers (pool workers, other machines on a shared
        # filesystem) need readers not to block the claiming writer.
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # -------------------------------------------------------- registration

    def register(self, experiment_id: str, spec_hash: str, code_salt: str,
                 grid: dict,
                 case_rows: Sequence[Tuple[dict, str]]) -> bool:
        """Register a sweep and its cases; idempotent by experiment id.

        ``grid`` is the full JSON-able sweep description (machine payload +
        ordered spec payloads) needed to rebuild the runner on resume;
        ``case_rows`` is one ``(spec_payload, cache_key)`` per case, in grid
        order.  Returns True when the experiment was newly created, False
        when it already existed (the resume path: existing case statuses
        are left untouched).
        """
        now = _now()
        with self._conn:
            created = self._conn.execute(
                "INSERT OR IGNORE INTO experiments "
                "(id, spec_hash, code_salt, grid, status, total_cases, "
                " created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (experiment_id, spec_hash, code_salt,
                 json.dumps(grid, sort_keys=True), PENDING, len(case_rows),
                 now, now)).rowcount > 0
            if created:
                self._conn.executemany(
                    "INSERT INTO cases (experiment_id, case_index, spec, "
                    "cache_key, status) VALUES (?, ?, ?, ?, ?)",
                    [(experiment_id, index, json.dumps(spec, sort_keys=True),
                      cache_key, PENDING)
                     for index, (spec, cache_key) in enumerate(case_rows)])
        return created

    # ------------------------------------------------------ claim protocol

    def claim_next(self, experiment_id: str,
                   worker: str) -> Optional[Tuple[int, dict]]:
        """Claim the lowest-index pending case, or None when none are left.

        Claim-by-update under ``BEGIN IMMEDIATE``: the write lock is taken
        before the candidate is selected, so two pullers can never claim
        the same case.
        """
        with self._conn:
            self._conn.execute("BEGIN IMMEDIATE")
            row = self._conn.execute(
                "SELECT case_index, spec FROM cases "
                "WHERE experiment_id = ? AND status = ? "
                "ORDER BY case_index LIMIT 1",
                (experiment_id, PENDING)).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE cases SET status = ?, worker = ?, claimed_at = ? "
                "WHERE experiment_id = ? AND case_index = ?",
                (RUNNING, worker, _now(), experiment_id, row["case_index"]))
            self._set_status(experiment_id, RUNNING)
        return row["case_index"], json.loads(row["spec"])

    def mark_done(self, experiment_id: str, case_index: int) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE cases SET status = ?, error = NULL, finished_at = ? "
                "WHERE experiment_id = ? AND case_index = ?",
                (DONE, _now(), experiment_id, case_index))

    def mark_failed(self, experiment_id: str, case_index: int,
                    error: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE cases SET status = ?, error = ?, finished_at = ? "
                "WHERE experiment_id = ? AND case_index = ?",
                (FAILED, str(error)[:500], _now(), experiment_id, case_index))
            self._set_status(experiment_id, FAILED)

    def release_stale(self, experiment_id: str) -> int:
        """Flip ``running``/``failed`` cases back to ``pending``.

        Called before pulling: cases left mid-flight by a killed or crashed
        sweep are re-claimed and re-simulated (determinism makes the retry
        indistinguishable from a first run).
        """
        with self._conn:
            released = self._conn.execute(
                "UPDATE cases SET status = ?, worker = NULL, error = NULL "
                "WHERE experiment_id = ? AND status IN (?, ?)",
                (PENDING, experiment_id, RUNNING, FAILED)).rowcount
        return released

    def finish(self, experiment_id: str) -> bool:
        """Mark the experiment done iff every case is done."""
        counts = self.case_counts(experiment_id)
        remaining = sum(count for status, count in counts.items()
                        if status != DONE)
        if remaining == 0:
            with self._conn:
                self._set_status(experiment_id, DONE)
            return True
        return False

    def _set_status(self, experiment_id: str, status: str) -> None:
        self._conn.execute(
            "UPDATE experiments SET status = ?, updated_at = ? WHERE id = ?",
            (status, _now(), experiment_id))

    # ------------------------------------------------------- isolated IPCs

    def record_isolated(self, experiment_id: str, kernel: str,
                        cache_key: str, ipc: float) -> None:
        """Persist one isolated-IPC denominator for this experiment, so a
        resumed sweep seeds its memo instead of re-simulating it — even
        when the JSONL case cache is disabled."""
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO isolated "
                "(experiment_id, kernel, cache_key, ipc) VALUES (?, ?, ?, ?)",
                (experiment_id, kernel, cache_key, ipc))

    def isolated_ipcs(self, experiment_id: str) -> Dict[str, float]:
        rows = self._conn.execute(
            "SELECT kernel, ipc FROM isolated "
            "WHERE experiment_id = ? AND ipc IS NOT NULL "
            "ORDER BY kernel", (experiment_id,)).fetchall()
        return {row["kernel"]: row["ipc"] for row in rows}

    # ----------------------------------------------------------- inspection

    def experiment(self, experiment_id: str) -> Optional[dict]:
        row = self._conn.execute(
            "SELECT * FROM experiments WHERE id = ?",
            (experiment_id,)).fetchone()
        if row is None:
            return None
        record = dict(row)
        record["grid"] = json.loads(record["grid"])
        return record

    def experiments(self) -> List[dict]:
        """Every experiment, ordered by id (content-derived, so the listing
        is stable across machines and runs)."""
        rows = self._conn.execute(
            "SELECT * FROM experiments ORDER BY id").fetchall()
        return [dict(row) for row in rows]

    def cases(self, experiment_id: str) -> List[dict]:
        rows = self._conn.execute(
            "SELECT * FROM cases WHERE experiment_id = ? ORDER BY case_index",
            (experiment_id,)).fetchall()
        records = []
        for row in rows:
            record = dict(row)
            record["spec"] = json.loads(record["spec"])
            records.append(record)
        return records

    def case_counts(self, experiment_id: str) -> Dict[str, int]:
        rows = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM cases "
            "WHERE experiment_id = ? GROUP BY status ORDER BY status",
            (experiment_id,)).fetchall()
        return {row["status"]: row["n"] for row in rows}

    def done_case_keys(self, experiment_id: str) -> List[Tuple[int, str]]:
        """(case_index, cache_key) of every done case, in grid order."""
        rows = self._conn.execute(
            "SELECT case_index, cache_key FROM cases "
            "WHERE experiment_id = ? AND status = ? ORDER BY case_index",
            (experiment_id, DONE)).fetchall()
        return [(row["case_index"], row["cache_key"]) for row in rows]

    def stats(self) -> dict:
        experiments = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM experiments "
            "GROUP BY status ORDER BY status").fetchall()
        cases = self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM cases "
            "GROUP BY status ORDER BY status").fetchall()
        return {
            "path": self.path,
            "experiments": {row["status"]: row["n"] for row in experiments},
            "cases": {row["status"]: row["n"] for row in cases},
        }

    # ------------------------------------------------------------------ gc

    def gc(self, current_salt: Optional[str] = None,
           drop_done: bool = False) -> int:
        """Delete experiments that can no longer be resumed usefully.

        With ``current_salt`` given, drops every experiment whose code salt
        differs (the cached records its cases point to are unreachable
        after a code edit — resuming would silently mix toolchains, so the
        rows are dead weight).  ``drop_done=True`` additionally drops
        completed experiments.  Returns how many experiments were removed.
        """
        doomed: List[str] = []
        for record in self.experiments():
            if current_salt is not None and record["code_salt"] != current_salt:
                doomed.append(record["id"])
            elif drop_done and record["status"] == DONE:
                doomed.append(record["id"])
        with self._conn:
            for experiment_id in doomed:
                self._conn.execute("DELETE FROM cases WHERE experiment_id = ?",
                                   (experiment_id,))
                self._conn.execute(
                    "DELETE FROM isolated WHERE experiment_id = ?",
                    (experiment_id,))
                self._conn.execute("DELETE FROM experiments WHERE id = ?",
                                   (experiment_id,))
        return len(doomed)


def open_default_expdb() -> Optional[ExperimentDB]:
    """The shared store, or None when ``REPRO_EXPDB`` disables it."""
    if expdb_disabled_by_env():
        return None
    return ExperimentDB()
