"""Persistent on-disk store for case results (the warm-sweep fast path).

Every figure of the reproduction slices the same (workload x goal x scheme)
case sweep, but a :class:`~repro.harness.runner.CaseRunner`'s memo dies with
its process — so regenerating a figure after an unrelated edit re-simulates
everything.  :class:`CaseCache` gives `CaseRecord`s and isolated IPCs a life
across invocations: an append-only JSON-lines file (default
``benchmarks/.cache/cases.jsonl``) keyed by a content hash of everything the
result depends on:

* the full :class:`~repro.config.GPUConfig` (as a nested dict),
* kernel names, QoS flags and goal fractions, and the policy name,
* measured cycles and warm-up cycles,
* a **code salt**: a digest of the source of every package that affects
  simulation outcomes (`sim`, `qos`, `kernels`, `baselines`, `sharing`,
  `power`, `config`, and the runner itself).  Editing any of those files
  invalidates the whole cache automatically; docs/harness-report edits do
  not.

Opt-out / relocation via the ``REPRO_CACHE`` environment variable: ``0`` /
``off`` disables persistence entirely, any other value is used as the cache
directory.  ``repro-gpu-qos cache stats|clear`` inspects and resets the
store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Dict, Optional, Sequence

from repro.config import GPUConfig
from repro.harness.runner import CaseRecord, KernelOutcome
from repro.sim.telemetry import epoch_record_from_dict

ENV_CACHE = "REPRO_CACHE"

#: Package directories (relative to ``src/repro``) whose source participates
#: in the code salt: anything that can change a simulation outcome.  The
#: list must cover the transitive import closure of the result-producing
#: roots (engine + runner) — ``repro lint`` rule SALT001 enforces this —
#: including this module itself, since the keying and record serialisation
#: logic below decides what a cached entry means.
_SALTED = ("config.py", "isa", "kernels", "sim", "qos", "baselines",
           "controllers", "sharing", "power", "osched", "serve",
           "harness/runner.py", "harness/cache.py", "harness/expdb.py")

_code_salt_memo: Optional[str] = None


def salted_paths() -> list:
    """Every source file (relative to ``src/repro``) covered by the salt."""
    package_root = pathlib.Path(__file__).resolve().parents[1]
    paths = []
    for entry in _SALTED:
        path = package_root / entry
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        paths.extend(str(source.relative_to(package_root)) for source in files)
    return paths


def code_salt() -> str:
    """Digest of the simulation-affecting source tree (memoised).

    The installed numpy version joins the digest: the batch engine core
    (``repro/sim/batch.py``) computes window horizons with numpy, so a
    numpy upgrade is treated exactly like an edit to a salted source file
    and invalidates the cache rather than silently mixing toolchains.
    """
    global _code_salt_memo
    if _code_salt_memo is None:
        import numpy
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        digest.update(f"numpy=={numpy.__version__}".encode())
        for relative in salted_paths():
            source = package_root / relative
            digest.update(relative.encode())
            digest.update(source.read_bytes())
        _code_salt_memo = digest.hexdigest()[:16]
    return _code_salt_memo


def cache_disabled_by_env() -> bool:
    return os.environ.get(ENV_CACHE, "").strip().lower() in ("0", "off", "no",
                                                             "false")


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE`` if it names a directory, else ``benchmarks/.cache``
    next to the source tree (falling back to the user cache dir when the
    package is installed outside its repository)."""
    env = os.environ.get(ENV_CACHE, "").strip()
    if env and not cache_disabled_by_env():
        return pathlib.Path(env)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".cache"
    return pathlib.Path.home() / ".cache" / "repro-gpu-qos"


# ------------------------------------------------------------------- keying

def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _machine_payload(gpu: GPUConfig, cycles: int, warmup: int) -> dict:
    return {"gpu": dataclasses.asdict(gpu), "cycles": cycles,
            "warmup": warmup, "salt": code_salt()}


def isolated_key(gpu: GPUConfig, name: str, cycles: int, warmup: int) -> str:
    payload = _machine_payload(gpu, cycles, warmup)
    payload["kind"] = "isolated"
    payload["kernel"] = name
    return _digest(payload)


def case_key(gpu: GPUConfig, names: Sequence[str],
             qos_flags: Sequence[bool],
             goal_fractions: Sequence[Optional[float]],
             policy: str, cycles: int, warmup: int,
             telemetry: bool = False) -> str:
    payload = _machine_payload(gpu, cycles, warmup)
    payload["kind"] = "case"
    payload["kernels"] = list(names)
    payload["qos"] = list(qos_flags)
    payload["goals"] = list(goal_fractions)
    payload["policy"] = policy
    # Telemetry-bearing records carry the per-epoch stream; keep them
    # distinct from lean records so toggling the flag never serves a
    # record without (or with unwanted) telemetry attached.
    payload["telemetry"] = bool(telemetry)
    return _digest(payload)


def serve_key(gpu: GPUConfig, spec_payload: dict) -> str:
    """Content key of one serving case (a :class:`repro.serve.runner.ServeSpec`
    run on one machine).  The spec payload already carries horizon, seed and
    admission policy; the machine side is the GPU config plus the code salt,
    so editing any salted source invalidates served results too."""
    payload = {"gpu": dataclasses.asdict(gpu), "salt": code_salt(),
               "kind": "serve", "spec": spec_payload}
    return _digest(payload)


# ------------------------------------------------- experiment (sweep) keying
# The experiment store (:mod:`repro.harness.expdb`) is engine-independent
# and deals only in plain payloads, so the content-hash identity of a sweep
# lives here with the other keying logic.  Experiment identity is purely
# content-derived — machine payload (which embeds the code salt) plus the
# ordered spec grid — never timestamps (lint rule DET008).

def sweep_grid_payload(gpu: GPUConfig, cycles: int, warmup: int,
                       telemetry: bool, spec_payloads: Sequence[dict]) -> dict:
    """The full JSON-able description of one sweep: everything needed both
    to identify it (hash) and to rebuild its runner on resume."""
    payload = _machine_payload(gpu, cycles, warmup)
    payload["kind"] = "experiment"
    payload["telemetry"] = bool(telemetry)
    payload["specs"] = list(spec_payloads)
    return payload


def serve_grid_payload(gpu: GPUConfig,
                       spec_payloads: Sequence[dict]) -> dict:
    """The JSON-able description of one serving sweep (a load sweep is a
    grid of :class:`repro.serve.runner.ServeSpec` payloads on one machine)."""
    payload = {"gpu": dataclasses.asdict(gpu), "salt": code_salt(),
               "kind": "serve-experiment", "specs": list(spec_payloads)}
    return payload


def experiment_spec_hash(grid: dict) -> str:
    return _digest(grid)


def experiment_id_for(spec_hash: str) -> str:
    """Experiment ids are a readable prefix of the spec hash: the same grid
    under the same code always maps to the same experiment."""
    return f"exp-{spec_hash[:12]}"


# ------------------------------------------------------------ serialisation

def record_to_dict(record: CaseRecord) -> dict:
    return dataclasses.asdict(record)


def record_from_dict(data: dict) -> CaseRecord:
    kernels = tuple(KernelOutcome(**outcome) for outcome in data["kernels"])
    telemetry = tuple(epoch_record_from_dict(entry)
                      for entry in data.get("telemetry", ()))
    rest = {key: value for key, value in data.items()
            if key not in ("kernels", "telemetry")}
    return CaseRecord(kernels=kernels, telemetry=telemetry, **rest)


# -------------------------------------------------------------------- store

class CaseCache:
    """Append-only JSON-lines store; last write wins on key collisions."""

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = pathlib.Path(directory) if directory else default_cache_dir()
        self.path = self.directory / "cases.jsonl"
        self._entries: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open() as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    self._entries[entry["key"]] = entry
                except (ValueError, KeyError):
                    continue  # torn write from an interrupted run

    def _append(self, key: str, kind: str, value) -> None:
        entry = {"key": key, "kind": kind, "value": value}
        self._entries[key] = entry
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as stream:
            stream.write(json.dumps(entry, sort_keys=True) + "\n")

    # ------------------------------------------------------------- records

    def get_case(self, key: str) -> Optional[CaseRecord]:
        entry = self._entries.get(key)
        if entry is None or entry.get("kind") != "case":
            self.misses += 1
            return None
        self.hits += 1
        return record_from_dict(entry["value"])

    def put_case(self, key: str, record: CaseRecord) -> None:
        self._append(key, "case", record_to_dict(record))

    def get_isolated(self, key: str) -> Optional[float]:
        entry = self._entries.get(key)
        if entry is None or entry.get("kind") != "isolated":
            self.misses += 1
            return None
        self.hits += 1
        return float(entry["value"])

    def put_isolated(self, key: str, value: float) -> None:
        self._append(key, "isolated", value)

    def get_serve(self, key: str) -> Optional[dict]:
        """Cached serving-case value (plain dict: request-record payloads
        plus counters — :mod:`repro.serve.runner` owns the shape)."""
        entry = self._entries.get(key)
        if entry is None or entry.get("kind") != "serve":
            self.misses += 1
            return None
        self.hits += 1
        return entry["value"]

    def put_serve(self, key: str, value: dict) -> None:
        self._append(key, "serve", value)

    # ------------------------------------------------------------ plumbing

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        kinds: Dict[str, int] = {}
        for entry in self._entries.values():
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + 1
        return {
            "path": str(self.path),
            "entries": len(self._entries),
            "cases": kinds.get("case", 0),
            "isolated": kinds.get("isolated", 0),
            "serve": kinds.get("serve", 0),
            "size_bytes": self.path.stat().st_size if self.path.exists() else 0,
            "hits": self.hits,
            "misses": self.misses,
            "code_salt": code_salt(),
        }

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = len(self._entries)
        self._entries.clear()
        if self.path.exists():
            self.path.unlink()
        return removed


def open_default_cache() -> Optional[CaseCache]:
    """The shared store, or None when ``REPRO_CACHE`` disables persistence."""
    if cache_disabled_by_env():
        return None
    return CaseCache()
