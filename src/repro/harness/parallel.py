"""Parallel sweep execution over a process pool.

A figure sweep is 60-900 *independent* co-run cases; the serial
:class:`~repro.harness.runner.CaseRunner` executes them one after another in
one interpreter.  :class:`ParallelCaseRunner` keeps the exact same results
contract — records keyed and ordered by case key, never by completion order
— while fanning the missing work out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

1. the **isolated IPCs** every normalisation divides by are computed first,
   as their own parallel batch, and seeded into each case worker so co-run
   workers never duplicate an isolated run;
2. the **missing co-run cases** (after consulting the in-process memo and
   the persistent cache) run as a second batch, each worker being a throwaway
   serial ``CaseRunner`` — which is what guarantees parallel records are
   bit-identical to serial ones (the simulator itself is deterministic);
3. results land in the memo and persistent cache, and the sweep returns them
   in input order.

Worker count comes from (in priority order) the constructor, the
``REPRO_WORKERS`` environment variable, and ``os.cpu_count() - 1``.  With
one worker — or when the platform refuses to give us a process pool — the
sweep silently degrades to the serial path.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.harness.runner import CaseRecord, CaseRunner, CaseSpec

ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_WORKERS`` > ``cpu_count() - 1`` (min 1)."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            workers = int(env)
        else:
            workers = (os.cpu_count() or 2) - 1
    return max(1, workers)


# ----------------------------------------------------------------- workers
# Module-level so they pickle; each builds a throwaway serial CaseRunner,
# which is exactly what makes parallel results identical to serial ones.

def _isolated_task(args: Tuple[GPUConfig, int, int, str]) -> float:
    gpu, cycles, warmup, name = args
    return CaseRunner(gpu, cycles, warmup).isolated_ipc(name)


def _case_task(args: Tuple[GPUConfig, int, int, bool, Dict[str, float],
                           CaseSpec]) -> CaseRecord:
    gpu, cycles, warmup, telemetry, isolated, spec = args
    runner = CaseRunner(gpu, cycles, warmup, telemetry=telemetry)
    runner._isolated.update(isolated)
    return runner.run_case(spec.names, spec.qos_flags, spec.goal_fractions,
                           spec.policy)


class ParallelCaseRunner(CaseRunner):
    """A :class:`CaseRunner` whose :meth:`sweep` fans out over processes."""

    def __init__(self, gpu: GPUConfig, cycles: int,
                 warmup_cycles: Optional[int] = None, cache=None,
                 workers: Optional[int] = None, telemetry: bool = False):
        super().__init__(gpu, cycles, warmup_cycles, cache=cache,
                         telemetry=telemetry)
        self.workers = resolve_workers(workers)

    # ----------------------------------------------------------- fan-out

    def _map(self, function, argument_list: list) -> list:
        """Run a batch through the pool, preserving input order; degrade to
        the serial path when parallelism is pointless or unavailable."""
        if self.workers <= 1 or len(argument_list) <= 1:
            return [function(args) for args in argument_list]
        try:
            from concurrent.futures import ProcessPoolExecutor
            max_workers = min(self.workers, len(argument_list))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(function, argument_list, chunksize=1))
        except (OSError, PermissionError, ImportError):
            # Sandboxes without process spawning / semaphores: stay correct.
            return [function(args) for args in argument_list]

    def sweep(self, cases: Sequence[CaseSpec]) -> List[CaseRecord]:
        specs = list(cases)
        self._prefetch_isolated(specs)
        missing: Dict[tuple, CaseSpec] = {}
        for spec in specs:
            key = (spec.names, spec.qos_flags, spec.goal_fractions,
                   spec.policy)
            if key not in self._cases and key not in missing:
                if not self._load_cached_case(key, spec):
                    missing[key] = spec
        if missing:
            argument_list = [(self.gpu, self.cycles, self.warmup_cycles,
                              self.telemetry, dict(self._isolated), spec)
                             for spec in missing.values()]
            records = self._map(_case_task, argument_list)
            for (key, spec), record in zip(missing.items(), records):
                self._cases[key] = record
                self._store_case(spec, record)
        # Every case is now memoised; assemble in input order.
        return [self.run_case(spec.names, spec.qos_flags,
                              spec.goal_fractions, spec.policy)
                for spec in specs]

    # ------------------------------------------------------------ helpers

    def _prefetch_isolated(self, specs: Sequence[CaseSpec]) -> None:
        """Batch-compute every isolated IPC the sweep will need (the
        denominators of all outcome normalisations), in parallel."""
        needed: List[str] = []
        for spec in specs:
            for name in spec.names:
                if name not in self._isolated and name not in needed:
                    needed.append(name)
        if self.cache is not None:
            from repro.harness.cache import isolated_key
            still_needed = []
            for name in needed:
                cached = self.cache.get_isolated(isolated_key(
                    self.gpu, name, self.cycles, self.warmup_cycles))
                if cached is not None:
                    self._isolated[name] = cached
                else:
                    still_needed.append(name)
            needed = still_needed
        if not needed:
            return
        argument_list = [(self.gpu, self.cycles, self.warmup_cycles, name)
                         for name in needed]
        for name, ipc in zip(needed, self._map(_isolated_task, argument_list)):
            self._isolated[name] = ipc
            if self.cache is not None:
                from repro.harness.cache import isolated_key
                self.cache.put_isolated(
                    isolated_key(self.gpu, name, self.cycles,
                                 self.warmup_cycles), ipc)

    def _load_cached_case(self, key: tuple, spec: CaseSpec) -> bool:
        if self.cache is None:
            return False
        from repro.harness.cache import case_key
        cached = self.cache.get_case(case_key(
            self.gpu, spec.names, spec.qos_flags, spec.goal_fractions,
            spec.policy, self.cycles, self.warmup_cycles,
            telemetry=self.telemetry))
        if cached is None:
            return False
        self._cases[key] = cached
        return True

    def _store_case(self, spec: CaseSpec, record: CaseRecord) -> None:
        if self.cache is None:
            return
        from repro.harness.cache import case_key
        self.cache.put_case(case_key(
            self.gpu, spec.names, spec.qos_flags, spec.goal_fractions,
            spec.policy, self.cycles, self.warmup_cycles,
            telemetry=self.telemetry), record)
