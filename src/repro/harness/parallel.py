"""Parallel sweep execution over a process pool.

A figure sweep is 60-900 *independent* co-run cases; the serial
:class:`~repro.harness.runner.CaseRunner` claims and runs them one after
another in one interpreter.  :class:`ParallelCaseRunner` keeps the exact
same results contract — records keyed and ordered by case key, never by
completion order — while fanning the pending work out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

1. the **isolated IPCs** every normalisation divides by are computed first,
   as their own parallel batch, persisted into the experiment store (so a
   resumed sweep never re-simulates a denominator) and seeded into every
   pool worker **once, at pool construction** — per-case task payloads
   carry only the :class:`CaseSpec` itself, not a copy of the machine and
   denominator state;
2. the parent **pulls** pending cases from the experiment store
   (claim-by-update, same protocol as the serial runner) and submits the
   ones that miss the memo and persistent cache; each worker is a
   throwaway serial ``CaseRunner`` — which is what guarantees parallel
   records are bit-identical to serial ones (the simulator itself is
   deterministic);
3. results land in the memo and persistent cache, cases flip to ``done``
   in the store, and the sweep returns records in input order.

Worker count comes from (in priority order) the constructor, the
``REPRO_WORKERS`` environment variable, and ``os.cpu_count() - 1``.  With
one worker — or when the platform refuses to give us a process pool — the
sweep silently degrades to the serial claim loop.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.harness.runner import (CaseRecord, CaseRunner, CaseSpec,
                                  RegisteredSweep)

ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_WORKERS`` > ``cpu_count() - 1`` (min 1)."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            workers = int(env)
        else:
            workers = (os.cpu_count() or 2) - 1
    return max(1, workers)


# ----------------------------------------------------------------- workers
# Module-level so they pickle.  Each pool worker builds ONE throwaway serial
# CaseRunner at pool construction (the initializer) and reuses it for every
# task it is handed: the machine description and isolated-IPC seed cross the
# process boundary once per sweep instead of once per case, and the worker's
# memo deduplicates within its share of the grid.  A throwaway serial runner
# is exactly what makes parallel results identical to serial ones.

_WORKER_RUNNER: Optional[CaseRunner] = None


def _isolated_task(args: Tuple[GPUConfig, int, int, str]) -> float:
    gpu, cycles, warmup, name = args
    return CaseRunner(gpu, cycles, warmup).isolated_ipc(name)


def _worker_init(gpu: GPUConfig, cycles: int, warmup: int, telemetry: bool,
                 isolated: Dict[str, float]) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = CaseRunner(gpu, cycles, warmup, telemetry=telemetry)
    _WORKER_RUNNER._isolated.update(isolated)


def _run_spec_task(spec: CaseSpec) -> CaseRecord:
    return _WORKER_RUNNER.run_case(spec.names, spec.qos_flags,
                                   spec.goal_fractions, spec.policy)


class ParallelCaseRunner(CaseRunner):
    """A :class:`CaseRunner` whose claim loop fans out over processes."""

    def __init__(self, gpu: GPUConfig, cycles: int,
                 warmup_cycles: Optional[int] = None, cache=None,
                 workers: Optional[int] = None, telemetry: bool = False,
                 expdb=None):
        super().__init__(gpu, cycles, warmup_cycles, cache=cache,
                         telemetry=telemetry, expdb=expdb)
        self.workers = resolve_workers(workers)

    # ----------------------------------------------------------- fan-out

    def _map(self, function, argument_list: list) -> list:
        """Run a batch through a pool, preserving input order; degrade to
        the serial path when parallelism is pointless or unavailable."""
        if self.workers <= 1 or len(argument_list) <= 1:
            return [function(args) for args in argument_list]
        try:
            from concurrent.futures import ProcessPoolExecutor
            max_workers = min(self.workers, len(argument_list))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(function, argument_list, chunksize=1))
        except (OSError, PermissionError, ImportError):
            # Sandboxes without process spawning / semaphores: stay correct.
            return [function(args) for args in argument_list]

    def _pull_pending(self, sweep_reg: RegisteredSweep) -> None:
        from concurrent.futures import BrokenExecutor
        from repro.harness.expdb import PENDING

        db, experiment_id = sweep_reg.db, sweep_reg.experiment_id
        db.release_stale(experiment_id)
        self._seed_isolated_from(sweep_reg)
        pending = [CaseSpec.from_payload(row["spec"])
                   for row in db.cases(experiment_id)
                   if row["status"] == PENDING]
        if not pending:
            return
        self._prefetch_isolated(pending)
        self._record_isolated(
            sweep_reg, [name for spec in pending for name in spec.names])
        if self.workers <= 1 or len(pending) <= 1:
            return super()._pull_pending(sweep_reg)
        pool = self._open_pool(len(pending))
        if pool is None:
            return super()._pull_pending(sweep_reg)
        try:
            self._pull_through_pool(sweep_reg, pool)
        except (BrokenExecutor, OSError, PermissionError, ImportError):
            # The pool died under us (sandboxed spawn, lost semaphores):
            # reclaim whatever was in flight and finish serially.
            db.release_stale(experiment_id)
            return super()._pull_pending(sweep_reg)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _open_pool(self, pending_count: int):
        try:
            from concurrent.futures import ProcessPoolExecutor
            return ProcessPoolExecutor(
                max_workers=min(self.workers, pending_count),
                initializer=_worker_init,
                initargs=(self.gpu, self.cycles, self.warmup_cycles,
                          self.telemetry, dict(self._isolated)))
        except (OSError, PermissionError, ImportError):
            return None

    def _pull_through_pool(self, sweep_reg: RegisteredSweep, pool) -> None:
        """The parallel claim loop: keep up to ``workers`` claims in flight.

        Claims that hit the memo or persistent cache are marked done
        without touching the pool; duplicate specs attach to the already
        in-flight future instead of simulating twice.  A worker exception
        marks its case(s) failed and propagates; cases still in flight
        stay ``running`` and are released back to ``pending`` by the next
        run's :meth:`ExperimentDB.release_stale` — exactly like a crash.
        """
        from concurrent.futures import FIRST_COMPLETED, wait

        db, experiment_id = sweep_reg.db, sweep_reg.experiment_id
        worker = f"pool:{os.getpid()}"
        completed = 0
        inflight: Dict[object, Tuple[CaseSpec, List[int]]] = {}
        by_key: Dict[tuple, object] = {}
        drained = False
        while True:
            while not drained and len(inflight) < self.workers:
                claim = db.claim_next(experiment_id, worker)
                if claim is None:
                    drained = True
                    break
                case_index, payload = claim
                spec = CaseSpec.from_payload(payload)
                if (spec.key in self._cases
                        or self._load_cached_case(spec.key, spec)):
                    db.mark_done(experiment_id, case_index)
                    completed += 1
                    self._fault_check(completed)
                    continue
                twin = by_key.get(spec.key)
                if twin is not None:
                    inflight[twin][1].append(case_index)
                    continue
                future = pool.submit(_run_spec_task, spec)
                inflight[future] = (spec, [case_index])
                by_key[spec.key] = future
            if not inflight:
                break
            done_set, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done_set:
                spec, case_indices = inflight.pop(future)
                by_key.pop(spec.key, None)
                try:
                    record = future.result()
                except BaseException as error:
                    for case_index in case_indices:
                        db.mark_failed(experiment_id, case_index, repr(error))
                    raise
                self._cases[spec.key] = record
                self._store_case(spec, record)
                for case_index in case_indices:
                    db.mark_done(experiment_id, case_index)
                    completed += 1
                self._fault_check(completed)

    # ------------------------------------------------------------ helpers

    def _prefetch_isolated(self, specs: Sequence[CaseSpec]) -> None:
        """Batch-compute every isolated IPC the pending cases will need
        (the denominators of all outcome normalisations), in parallel."""
        needed: List[str] = []
        for spec in specs:
            for name in spec.names:
                if name not in self._isolated and name not in needed:
                    needed.append(name)
        if self.cache is not None:
            from repro.harness.cache import isolated_key
            still_needed = []
            for name in needed:
                cached = self.cache.get_isolated(isolated_key(
                    self.gpu, name, self.cycles, self.warmup_cycles))
                if cached is not None:
                    self._isolated[name] = cached
                else:
                    still_needed.append(name)
            needed = still_needed
        if not needed:
            return
        argument_list = [(self.gpu, self.cycles, self.warmup_cycles, name)
                         for name in needed]
        for name, ipc in zip(needed, self._map(_isolated_task, argument_list)):
            self._isolated[name] = ipc
            if self.cache is not None:
                from repro.harness.cache import isolated_key
                self.cache.put_isolated(
                    isolated_key(self.gpu, name, self.cycles,
                                 self.warmup_cycles), ipc)

    def _load_cached_case(self, key: tuple, spec: CaseSpec) -> bool:
        if self.cache is None:
            return False
        from repro.harness.cache import case_key
        cached = self.cache.get_case(case_key(
            self.gpu, spec.names, spec.qos_flags, spec.goal_fractions,
            spec.policy, self.cycles, self.warmup_cycles,
            telemetry=self.telemetry))
        if cached is None:
            return False
        self._cases[key] = cached
        return True

    def _store_case(self, spec: CaseSpec, record: CaseRecord) -> None:
        if self.cache is None:
            return
        from repro.harness.cache import case_key
        self.cache.put_case(case_key(
            self.gpu, spec.names, spec.qos_flags, spec.goal_fractions,
            spec.policy, self.cycles, self.warmup_cycles,
            telemetry=self.telemetry), record)
