"""Memoised execution of isolated and co-run cases.

Every figure consumes the same underlying (pair/trio x goal x scheme) runs,
so :class:`CaseRunner` memoises by full case key: Figure 6, 8, 9 and 14 all
reuse one sweep.  Isolated IPCs (the denominators of every normalisation in
the paper) are memoised per (kernel, machine, cycles).

Two layers extend the in-process memo:

* an optional persistent store (:class:`repro.harness.cache.CaseCache`)
  consulted on memo misses and fed on every fresh simulation, so sweeps
  survive across invocations;
* :class:`repro.harness.parallel.ParallelCaseRunner`, which overrides
  :meth:`CaseRunner.sweep` to fan independent cases out over a process
  pool.  :class:`CaseSpec` is the declarative unit both layers share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import SpartPolicy
from repro.config import GPUConfig
from repro.controllers import CONTROLLER_NAMES, controller_by_name
from repro.kernels import get_kernel, intensity_class
from repro.power import PowerModel
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy
from repro.sim.telemetry import EpochRecord

#: Scheme/controller names accepted by :meth:`CaseRunner.run_case`.  The
#: ``pid`` and ``mpc`` entries run the paper's quota machinery under the
#: corresponding :mod:`repro.controllers` control law (Rollover boundary
#: accounting, controller-driven quota scales).
POLICY_NAMES = ("spart", "naive", "history", "elastic", "rollover",
                "rollover-time", "rollover-nostatic", "smk") + CONTROLLER_NAMES


def make_policy(name: str) -> SharingPolicy:
    """Instantiate a sharing policy from its experiment name."""
    if name == "spart":
        return SpartPolicy()
    if name == "smk":
        return SharingPolicy()
    if name == "rollover-nostatic":
        return QoSPolicy("rollover", static_adjustment=False)
    if name in CONTROLLER_NAMES:
        return QoSPolicy("rollover", controller=controller_by_name(name))
    return QoSPolicy(name)


@dataclass(frozen=True)
class CaseSpec:
    """One co-run case, declaratively: what :meth:`CaseRunner.run_case` takes.

    Sweeps are lists of these so they can be submitted up front (and fanned
    out by the parallel runner) instead of looped over call-by-call.
    """

    names: Tuple[str, ...]
    qos_flags: Tuple[bool, ...]
    goal_fractions: Tuple[Optional[float], ...]
    policy: str

    @classmethod
    def pair(cls, qos: str, nonqos: str, goal: float,
             policy: str) -> "CaseSpec":
        return cls((qos, nonqos), (True, False), (goal, None), policy)

    @classmethod
    def trio(cls, names: Sequence[str], qos_count: int, goal: float,
             policy: str) -> "CaseSpec":
        if not 1 <= qos_count < len(names):
            raise ValueError("qos_count must leave at least one non-QoS kernel")
        flags = tuple(i < qos_count for i in range(len(names)))
        fractions = tuple(goal if flag else None for flag in flags)
        return cls(tuple(names), flags, fractions, policy)


@dataclass(frozen=True)
class KernelOutcome:
    """Per-kernel results of one co-run case."""

    name: str
    is_qos: bool
    goal_fraction: Optional[float]
    ipc: float
    isolated_ipc: float
    ipc_goal: Optional[float]
    intensity: str

    @property
    def reached(self) -> Optional[bool]:
        if not self.is_qos:
            return None
        return self.ipc >= self.ipc_goal * 0.999

    @property
    def normalized_throughput(self) -> float:
        """IPC normalised to isolated execution (Figure 8's metric)."""
        return self.ipc / self.isolated_ipc if self.isolated_ipc else 0.0

    @property
    def goal_ratio(self) -> Optional[float]:
        """IPC normalised to the QoS goal (Figure 9's metric)."""
        if self.ipc_goal is None:
            return None
        return self.ipc / self.ipc_goal

    @property
    def miss_percent(self) -> Optional[float]:
        """How far below goal, in percent (None for non-QoS kernels)."""
        if self.ipc_goal is None:
            return None
        return max(0.0, 100.0 * (1.0 - self.ipc / self.ipc_goal))


@dataclass(frozen=True)
class CaseRecord:
    """One co-run case: workload, scheme, per-kernel outcomes, energy."""

    kernels: Tuple[KernelOutcome, ...]
    policy: str
    cycles: int
    evictions: int
    eviction_stall_cycles: int
    power_w: float
    instructions_per_watt: float
    #: Per-epoch telemetry stream (empty unless the runner was built with
    #: ``telemetry=True``).  Spans warm-up plus measurement: the control
    #: loop's convergence transient is part of what the trace is for.
    telemetry: Tuple[EpochRecord, ...] = ()

    @property
    def qos_met(self) -> bool:
        """A case succeeds when every QoS kernel reached its goal."""
        return all(k.reached for k in self.kernels if k.is_qos)

    @property
    def qos_kernels(self) -> Tuple[KernelOutcome, ...]:
        return tuple(k for k in self.kernels if k.is_qos)

    @property
    def nonqos_kernels(self) -> Tuple[KernelOutcome, ...]:
        return tuple(k for k in self.kernels if not k.is_qos)

    @property
    def total_ipc(self) -> float:
        return sum(k.ipc for k in self.kernels)


class CaseRunner:
    """Runs and memoises isolated and co-run simulations.

    Every run discards a warm-up window (``warmup_cycles``, default two
    epochs) before measurement starts, so the TB-dispatch ramp and cold
    caches do not bias IPCs at short simulation windows.  The paper's
    2M-cycle runs amortise the same ramp to nothing.
    """

    def __init__(self, gpu: GPUConfig, cycles: int,
                 warmup_cycles: Optional[int] = None, cache=None,
                 telemetry: bool = False):
        self.gpu = gpu
        self.cycles = cycles
        if warmup_cycles is None:
            warmup_cycles = 2 * gpu.epoch_length
        self.warmup_cycles = warmup_cycles
        #: Optional :class:`repro.harness.cache.CaseCache`; consulted on memo
        #: misses, fed on every fresh simulation.
        self.cache = cache
        #: When True, every co-run case carries its per-epoch telemetry
        #: stream in :attr:`CaseRecord.telemetry` (isolated runs are never
        #: telemetered — they only produce a scalar IPC).  Part of the cache
        #: key: telemetry-bearing records are cached separately.
        self.telemetry = telemetry
        self._isolated: Dict[str, float] = {}
        self._cases: Dict[tuple, CaseRecord] = {}
        self._power = PowerModel(gpu)

    # ------------------------------------------------------------- isolated

    def isolated_ipc(self, name: str) -> float:
        """IPC of a kernel running alone on this machine (memoised)."""
        if name not in self._isolated:
            cache_key = None
            if self.cache is not None:
                from repro.harness.cache import isolated_key
                cache_key = isolated_key(self.gpu, name, self.cycles,
                                         self.warmup_cycles)
                cached = self.cache.get_isolated(cache_key)
                if cached is not None:
                    self._isolated[name] = cached
                    return cached
            self._isolated[name] = self._simulate_isolated(name)
            if cache_key is not None:
                self.cache.put_isolated(cache_key, self._isolated[name])
        return self._isolated[name]

    def _simulate_isolated(self, name: str) -> float:
        sim = GPUSimulator(self.gpu, [LaunchedKernel(get_kernel(name))])
        sim.run(self.warmup_cycles)
        sim.mark_measurement_start()
        sim.run(self.cycles)
        return sim.result().kernels[0].ipc

    # --------------------------------------------------------------- co-run

    def run_case(self, names: Sequence[str], qos_flags: Sequence[bool],
                 goal_fractions: Sequence[Optional[float]],
                 policy: str) -> CaseRecord:
        """Run one co-run case (memoised by its full key).

        ``goal_fractions`` are per-kernel fractions of isolated IPC; entries
        for non-QoS kernels are ignored and may be None.
        """
        key = (tuple(names), tuple(qos_flags),
               tuple(goal_fractions), policy)
        if key in self._cases:
            return self._cases[key]
        cache_key = None
        if self.cache is not None:
            from repro.harness.cache import case_key
            cache_key = case_key(self.gpu, names, qos_flags, goal_fractions,
                                 policy, self.cycles, self.warmup_cycles,
                                 telemetry=self.telemetry)
            cached = self.cache.get_case(cache_key)
            if cached is not None:
                self._cases[key] = cached
                return cached

        launches = []
        goals = []
        for name, is_qos, fraction in zip(names, qos_flags, goal_fractions):
            if is_qos:
                goal = fraction * self.isolated_ipc(name)
                launches.append(LaunchedKernel(get_kernel(name), is_qos=True,
                                               ipc_goal=goal))
            else:
                goal = None
                launches.append(LaunchedKernel(get_kernel(name)))
            goals.append(goal)

        recorder = None
        if self.telemetry:
            from repro.sim.telemetry import TelemetryRecorder
            recorder = TelemetryRecorder()
        sim = GPUSimulator(self.gpu, launches, make_policy(policy),
                           telemetry=recorder)
        sim.run(self.warmup_cycles)
        sim.mark_measurement_start()
        sim.run(self.cycles)
        result = sim.result()
        epoch_records = sim.finalize_telemetry()

        outcomes = []
        for launch, kernel_result, goal, fraction in zip(
                launches, result.kernels, goals, goal_fractions):
            outcomes.append(KernelOutcome(
                name=kernel_result.name,
                is_qos=launch.is_qos,
                goal_fraction=fraction if launch.is_qos else None,
                ipc=kernel_result.ipc,
                isolated_ipc=self.isolated_ipc(kernel_result.name),
                ipc_goal=goal,
                intensity=intensity_class(kernel_result.name),
            ))
        power_w = self._power.average_power_w(result)
        record = CaseRecord(
            kernels=tuple(outcomes),
            policy=policy,
            cycles=result.cycles,
            evictions=result.evictions,
            eviction_stall_cycles=result.eviction_stall_cycles,
            power_w=power_w,
            instructions_per_watt=self._power.instructions_per_watt(result),
            telemetry=epoch_records,
        )
        self._cases[key] = record
        if cache_key is not None:
            self.cache.put_case(cache_key, record)
        return record

    # ---------------------------------------------------------------- sweeps

    def sweep(self, cases: Sequence[CaseSpec]) -> List[CaseRecord]:
        """Run a batch of cases, returning records in input order.

        The serial implementation just loops; the parallel runner overrides
        this to fan independent cases out over a process pool.  Both return
        identical records for identical inputs.
        """
        return [self.run_case(spec.names, spec.qos_flags,
                              spec.goal_fractions, spec.policy)
                for spec in cases]

    # ---------------------------------------------------------- conveniences

    def run_pair(self, qos: str, nonqos: str, goal: float,
                 policy: str) -> CaseRecord:
        return self.run_case((qos, nonqos), (True, False), (goal, None), policy)

    def run_trio(self, names: Sequence[str], qos_count: int, goal: float,
                 policy: str) -> CaseRecord:
        """Run a trio with the first ``qos_count`` kernels as QoS kernels,
        all sharing the same goal fraction (the paper's trio protocol)."""
        if not 1 <= qos_count < len(names):
            raise ValueError("qos_count must leave at least one non-QoS kernel")
        flags = tuple(i < qos_count for i in range(len(names)))
        fractions = tuple(goal if flag else None for flag in flags)
        return self.run_case(tuple(names), flags, fractions, policy)

    @property
    def cached_cases(self) -> int:
        return len(self._cases)
