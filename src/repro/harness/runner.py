"""Memoised execution of isolated and co-run cases.

Every figure consumes the same underlying (pair/trio x goal x scheme) runs,
so :class:`CaseRunner` memoises by full case key: Figure 6, 8, 9 and 14 all
reuse one sweep.  Isolated IPCs (the denominators of every normalisation in
the paper) are memoised per (kernel, machine, cycles).

Two layers extend the in-process memo:

* an optional persistent store (:class:`repro.harness.cache.CaseCache`)
  consulted on memo misses and fed on every fresh simulation, so sweeps
  survive across invocations;
* :class:`repro.harness.parallel.ParallelCaseRunner`, which overrides
  :meth:`CaseRunner.sweep` to fan independent cases out over a process
  pool.  :class:`CaseSpec` is the declarative unit both layers share.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import SpartPolicy
from repro.config import GPUConfig
from repro.controllers import CONTROLLER_NAMES, controller_by_name
from repro.kernels import get_kernel, intensity_class
from repro.power import PowerModel
from repro.qos import QoSPolicy
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy
from repro.sim.telemetry import EpochRecord

#: Scheme/controller names accepted by :meth:`CaseRunner.run_case`.  The
#: ``pid`` and ``mpc`` entries run the paper's quota machinery under the
#: corresponding :mod:`repro.controllers` control law (Rollover boundary
#: accounting, controller-driven quota scales).
POLICY_NAMES = ("spart", "naive", "history", "elastic", "rollover",
                "rollover-time", "rollover-nostatic", "smk") + CONTROLLER_NAMES


def make_policy(name: str) -> SharingPolicy:
    """Instantiate a sharing policy from its experiment name."""
    if name == "spart":
        return SpartPolicy()
    if name == "smk":
        return SharingPolicy()
    if name == "rollover-nostatic":
        return QoSPolicy("rollover", static_adjustment=False)
    if name in CONTROLLER_NAMES:
        return QoSPolicy("rollover", controller=controller_by_name(name))
    return QoSPolicy(name)


@dataclass(frozen=True)
class CaseSpec:
    """One co-run case, declaratively: what :meth:`CaseRunner.run_case` takes.

    Sweeps are lists of these so they can be submitted up front (and fanned
    out by the parallel runner) instead of looped over call-by-call.
    """

    names: Tuple[str, ...]
    qos_flags: Tuple[bool, ...]
    goal_fractions: Tuple[Optional[float], ...]
    policy: str

    @classmethod
    def pair(cls, qos: str, nonqos: str, goal: float,
             policy: str) -> "CaseSpec":
        return cls((qos, nonqos), (True, False), (goal, None), policy)

    @classmethod
    def trio(cls, names: Sequence[str], qos_count: int, goal: float,
             policy: str) -> "CaseSpec":
        if not 1 <= qos_count < len(names):
            raise ValueError("qos_count must leave at least one non-QoS kernel")
        flags = tuple(i < qos_count for i in range(len(names)))
        fractions = tuple(goal if flag else None for flag in flags)
        return cls(tuple(names), flags, fractions, policy)

    @property
    def key(self) -> tuple:
        """The in-process memo key shared by both runners."""
        return (self.names, self.qos_flags, self.goal_fractions, self.policy)

    def payload(self) -> dict:
        """Plain JSON-able form, the shape stored in the experiment DB."""
        return {"names": list(self.names), "qos": list(self.qos_flags),
                "goals": list(self.goal_fractions), "policy": self.policy}

    @classmethod
    def from_payload(cls, payload: dict) -> "CaseSpec":
        return cls(tuple(payload["names"]),
                   tuple(bool(flag) for flag in payload["qos"]),
                   tuple(payload["goals"]), payload["policy"])


class SweepInterrupted(RuntimeError):
    """Raised by the fault-injection seam (:attr:`CaseRunner.fault_after`):
    the controlled stand-in for a worker crash or a killed process that the
    interrupt/resume tests and the CI resume-smoke step rely on."""


@dataclass(frozen=True)
class RegisteredSweep:
    """One sweep registered in an experiment store (persistent or ephemeral).

    ``persistent`` distinguishes the shared on-disk store — whose ids are
    worth reporting as provenance and resuming later — from the throwaway
    in-memory store every unregistered sweep still routes through (so the
    pull-based claim loop is never a special case).
    """

    db: object  # ExperimentDB (kept untyped: expdb is imported lazily)
    experiment_id: str
    spec_hash: str
    persistent: bool


@dataclass(frozen=True)
class KernelOutcome:
    """Per-kernel results of one co-run case."""

    name: str
    is_qos: bool
    goal_fraction: Optional[float]
    ipc: float
    isolated_ipc: float
    ipc_goal: Optional[float]
    intensity: str

    @property
    def reached(self) -> Optional[bool]:
        if not self.is_qos:
            return None
        return self.ipc >= self.ipc_goal * 0.999

    @property
    def normalized_throughput(self) -> float:
        """IPC normalised to isolated execution (Figure 8's metric)."""
        return self.ipc / self.isolated_ipc if self.isolated_ipc else 0.0

    @property
    def goal_ratio(self) -> Optional[float]:
        """IPC normalised to the QoS goal (Figure 9's metric)."""
        if self.ipc_goal is None:
            return None
        return self.ipc / self.ipc_goal

    @property
    def miss_percent(self) -> Optional[float]:
        """How far below goal, in percent (None for non-QoS kernels)."""
        if self.ipc_goal is None:
            return None
        return max(0.0, 100.0 * (1.0 - self.ipc / self.ipc_goal))


@dataclass(frozen=True)
class CaseRecord:
    """One co-run case: workload, scheme, per-kernel outcomes, energy."""

    kernels: Tuple[KernelOutcome, ...]
    policy: str
    cycles: int
    evictions: int
    eviction_stall_cycles: int
    power_w: float
    instructions_per_watt: float
    #: Per-epoch telemetry stream (empty unless the runner was built with
    #: ``telemetry=True``).  Spans warm-up plus measurement: the control
    #: loop's convergence transient is part of what the trace is for.
    telemetry: Tuple[EpochRecord, ...] = ()

    @property
    def qos_met(self) -> bool:
        """A case succeeds when every QoS kernel reached its goal."""
        return all(k.reached for k in self.kernels if k.is_qos)

    @property
    def qos_kernels(self) -> Tuple[KernelOutcome, ...]:
        return tuple(k for k in self.kernels if k.is_qos)

    @property
    def nonqos_kernels(self) -> Tuple[KernelOutcome, ...]:
        return tuple(k for k in self.kernels if not k.is_qos)

    @property
    def total_ipc(self) -> float:
        return sum(k.ipc for k in self.kernels)


class CaseRunner:
    """Runs and memoises isolated and co-run simulations.

    Every run discards a warm-up window (``warmup_cycles``, default two
    epochs) before measurement starts, so the TB-dispatch ramp and cold
    caches do not bias IPCs at short simulation windows.  The paper's
    2M-cycle runs amortise the same ramp to nothing.
    """

    def __init__(self, gpu: GPUConfig, cycles: int,
                 warmup_cycles: Optional[int] = None, cache=None,
                 telemetry: bool = False, expdb=None):
        self.gpu = gpu
        self.cycles = cycles
        if warmup_cycles is None:
            warmup_cycles = 2 * gpu.epoch_length
        self.warmup_cycles = warmup_cycles
        #: Optional :class:`repro.harness.cache.CaseCache`; consulted on memo
        #: misses, fed on every fresh simulation.
        self.cache = cache
        #: Optional :class:`repro.harness.expdb.ExperimentDB`.  When set,
        #: :meth:`sweep` registers its grid there and the sweep becomes
        #: durable: interruptible, resumable (``repro exp resume``) and
        #: attributable (provenance ids in :attr:`experiment_log`).  When
        #: None, sweeps route through a throwaway in-memory store instead —
        #: same claim loop, zero persistence.
        self.expdb = expdb
        #: When True, every co-run case carries its per-epoch telemetry
        #: stream in :attr:`CaseRecord.telemetry` (isolated runs are never
        #: telemetered — they only produce a scalar IPC).  Part of the cache
        #: key: telemetry-bearing records are cached separately.
        self.telemetry = telemetry
        #: ``(experiment id, spec hash)`` of every sweep this runner
        #: registered in the *persistent* store, in registration order —
        #: the raw material of figure provenance lines.
        self.experiment_log: List[Tuple[str, str]] = []
        #: Test seam: raise :class:`SweepInterrupted` after this many cases
        #: of a sweep complete — the interrupt half of the interrupt/resume
        #: differential tests.  None (the default) never fires.
        self.fault_after: Optional[int] = None
        self._isolated: Dict[str, float] = {}
        self._cases: Dict[tuple, CaseRecord] = {}
        self._power = PowerModel(gpu)

    # ------------------------------------------------------------- isolated

    def isolated_ipc(self, name: str) -> float:
        """IPC of a kernel running alone on this machine (memoised)."""
        if name not in self._isolated:
            cache_key = None
            if self.cache is not None:
                from repro.harness.cache import isolated_key
                cache_key = isolated_key(self.gpu, name, self.cycles,
                                         self.warmup_cycles)
                cached = self.cache.get_isolated(cache_key)
                if cached is not None:
                    self._isolated[name] = cached
                    return cached
            self._isolated[name] = self._simulate_isolated(name)
            if cache_key is not None:
                self.cache.put_isolated(cache_key, self._isolated[name])
        return self._isolated[name]

    def _simulate_isolated(self, name: str) -> float:
        sim = GPUSimulator(self.gpu, [LaunchedKernel(get_kernel(name))])
        sim.run(self.warmup_cycles)
        sim.mark_measurement_start()
        sim.run(self.cycles)
        return sim.result().kernels[0].ipc

    # --------------------------------------------------------------- co-run

    def run_case(self, names: Sequence[str], qos_flags: Sequence[bool],
                 goal_fractions: Sequence[Optional[float]],
                 policy: str) -> CaseRecord:
        """Run one co-run case (memoised by its full key).

        ``goal_fractions`` are per-kernel fractions of isolated IPC; entries
        for non-QoS kernels are ignored and may be None.
        """
        key = (tuple(names), tuple(qos_flags),
               tuple(goal_fractions), policy)
        if key in self._cases:
            return self._cases[key]
        cache_key = None
        if self.cache is not None:
            from repro.harness.cache import case_key
            cache_key = case_key(self.gpu, names, qos_flags, goal_fractions,
                                 policy, self.cycles, self.warmup_cycles,
                                 telemetry=self.telemetry)
            cached = self.cache.get_case(cache_key)
            if cached is not None:
                self._cases[key] = cached
                return cached

        launches = []
        goals = []
        for name, is_qos, fraction in zip(names, qos_flags, goal_fractions):
            if is_qos:
                goal = fraction * self.isolated_ipc(name)
                launches.append(LaunchedKernel(get_kernel(name), is_qos=True,
                                               ipc_goal=goal))
            else:
                goal = None
                launches.append(LaunchedKernel(get_kernel(name)))
            goals.append(goal)

        recorder = None
        if self.telemetry:
            from repro.sim.telemetry import TelemetryRecorder
            recorder = TelemetryRecorder()
        sim = GPUSimulator(self.gpu, launches, make_policy(policy),
                           telemetry=recorder)
        sim.run(self.warmup_cycles)
        sim.mark_measurement_start()
        sim.run(self.cycles)
        result = sim.result()
        epoch_records = sim.finalize_telemetry()

        outcomes = []
        for launch, kernel_result, goal, fraction in zip(
                launches, result.kernels, goals, goal_fractions):
            outcomes.append(KernelOutcome(
                name=kernel_result.name,
                is_qos=launch.is_qos,
                goal_fraction=fraction if launch.is_qos else None,
                ipc=kernel_result.ipc,
                isolated_ipc=self.isolated_ipc(kernel_result.name),
                ipc_goal=goal,
                intensity=intensity_class(kernel_result.name),
            ))
        power_w = self._power.average_power_w(result)
        record = CaseRecord(
            kernels=tuple(outcomes),
            policy=policy,
            cycles=result.cycles,
            evictions=result.evictions,
            eviction_stall_cycles=result.eviction_stall_cycles,
            power_w=power_w,
            instructions_per_watt=self._power.instructions_per_watt(result),
            telemetry=epoch_records,
        )
        self._cases[key] = record
        if cache_key is not None:
            self.cache.put_case(cache_key, record)
        return record

    # ---------------------------------------------------------------- sweeps

    def sweep(self, cases: Sequence[CaseSpec],
              register: bool = True) -> List[CaseRecord]:
        """Run a batch of cases, returning records in input order.

        Every sweep is an *experiment*: the full grid is registered in the
        experiment store (the runner's persistent :attr:`expdb` when set
        and ``register`` is True, a throwaway in-memory store otherwise)
        and cases are **pulled** from its table one claim at a time rather
        than consumed as a static list.  Already-done cases — from the
        memo, the persistent case cache, or a previous interrupted run of
        the same grid — are never re-simulated, which is what makes
        ``repro exp resume`` converge on records byte-identical to an
        uninterrupted run.

        The serial implementation claims and runs one case at a time; the
        parallel runner overrides :meth:`_pull_pending` to fan claims out
        over a process pool.  Both return identical records for identical
        inputs.  ``register=False`` keeps a sweep out of the persistent
        store — for memo-slicing re-sweeps of grids already registered.
        """
        specs = list(cases)
        if not specs:
            return []
        sweep_reg = self._register_sweep(specs, register)
        try:
            self._pull_pending(sweep_reg)
        finally:
            sweep_reg.db.finish(sweep_reg.experiment_id)
            if not sweep_reg.persistent:
                sweep_reg.db.close()
        return [self.run_case(spec.names, spec.qos_flags,
                              spec.goal_fractions, spec.policy)
                for spec in specs]

    # ------------------------------------------------- experiment plumbing

    def _register_sweep(self, specs: Sequence[CaseSpec],
                        register: bool) -> RegisteredSweep:
        """Register the grid in the experiment store (idempotent: the same
        grid under the same code always maps to the same experiment id)."""
        from repro.harness.cache import (case_key, code_salt,
                                         experiment_id_for,
                                         experiment_spec_hash,
                                         sweep_grid_payload)
        from repro.harness.expdb import ExperimentDB

        payloads = [spec.payload() for spec in specs]
        grid = sweep_grid_payload(self.gpu, self.cycles, self.warmup_cycles,
                                  self.telemetry, payloads)
        spec_hash = experiment_spec_hash(grid)
        experiment_id = experiment_id_for(spec_hash)
        persistent = register and self.expdb is not None
        db = self.expdb if persistent else ExperimentDB(":memory:")
        case_rows = [
            (payload, case_key(self.gpu, spec.names, spec.qos_flags,
                               spec.goal_fractions, spec.policy, self.cycles,
                               self.warmup_cycles, telemetry=self.telemetry))
            for spec, payload in zip(specs, payloads)]
        db.register(experiment_id, spec_hash, code_salt(), grid, case_rows)
        if persistent:
            self.experiment_log.append((experiment_id, spec_hash))
        return RegisteredSweep(db, experiment_id, spec_hash, persistent)

    def _seed_isolated_from(self, sweep_reg: RegisteredSweep) -> None:
        """Adopt isolated-IPC denominators a previous (interrupted) run of
        this experiment already computed, so resume never re-simulates
        them — even with the persistent case cache disabled."""
        for name, ipc in sweep_reg.db.isolated_ipcs(
                sweep_reg.experiment_id).items():
            self._isolated.setdefault(name, ipc)

    def _record_isolated(self, sweep_reg: RegisteredSweep,
                         names: Sequence[str]) -> None:
        if not sweep_reg.persistent:
            return
        from repro.harness.cache import isolated_key
        for name in names:
            if name in self._isolated:
                sweep_reg.db.record_isolated(
                    sweep_reg.experiment_id, name,
                    isolated_key(self.gpu, name, self.cycles,
                                 self.warmup_cycles),
                    self._isolated[name])

    def _fault_check(self, completed: int) -> None:
        if self.fault_after is not None and completed >= self.fault_after:
            raise SweepInterrupted(
                f"fault injected after {completed} completed cases")

    def _pull_pending(self, sweep_reg: RegisteredSweep) -> None:
        """Claim and run pending cases until the table is drained.

        A case that raises is marked failed and the exception propagates
        (the sweep aborts like a crashed process would); everything already
        marked done stays done, so the next run of the same grid resumes.
        """
        db, experiment_id = sweep_reg.db, sweep_reg.experiment_id
        db.release_stale(experiment_id)
        self._seed_isolated_from(sweep_reg)
        worker = f"serial:{os.getpid()}"
        completed = 0
        while True:
            claim = db.claim_next(experiment_id, worker)
            if claim is None:
                break
            case_index, payload = claim
            spec = CaseSpec.from_payload(payload)
            try:
                self.run_case(spec.names, spec.qos_flags,
                              spec.goal_fractions, spec.policy)
            except BaseException as error:
                db.mark_failed(experiment_id, case_index, repr(error))
                raise
            self._record_isolated(sweep_reg, spec.names)
            db.mark_done(experiment_id, case_index)
            completed += 1
            self._fault_check(completed)

    # ---------------------------------------------------------- conveniences

    def run_pair(self, qos: str, nonqos: str, goal: float,
                 policy: str) -> CaseRecord:
        return self.run_case((qos, nonqos), (True, False), (goal, None), policy)

    def run_trio(self, names: Sequence[str], qos_count: int, goal: float,
                 policy: str) -> CaseRecord:
        """Run a trio with the first ``qos_count`` kernels as QoS kernels,
        all sharing the same goal fraction (the paper's trio protocol)."""
        if not 1 <= qos_count < len(names):
            raise ValueError("qos_count must leave at least one non-QoS kernel")
        flags = tuple(i < qos_count for i in range(len(names)))
        fractions = tuple(goal if flag else None for flag in flags)
        return self.run_case(tuple(names), flags, fractions, policy)

    @property
    def cached_cases(self) -> int:
        return len(self._cases)
