"""Experiment harness: regenerates every table and figure of the paper.

Layout:

* :mod:`repro.harness.presets` — the fast (default) and paper-scale
  experiment presets, plus pair/trio workload enumeration.
* :mod:`repro.harness.runner` — memoised isolated and co-run execution.
* :mod:`repro.harness.parallel` — process-pool sweep fan-out
  (:class:`ParallelCaseRunner`).
* :mod:`repro.harness.cache` — persistent on-disk case store shared by all
  figures and invocations.
* :mod:`repro.harness.metrics` — QoSreach, normalized throughput, overshoot,
  miss histograms.
* :mod:`repro.harness.experiments` — one entry point per paper figure/table.
* :mod:`repro.harness.report` — ASCII rendering of result series.
"""

from repro.harness.presets import (
    ExperimentPreset,
    FAST_PRESET,
    PAPER_PRESET,
    experiment_preset,
    all_pairs,
    all_trios,
)
from repro.harness.runner import (CaseRecord, CaseRunner, CaseSpec,
                                  KernelOutcome)
from repro.harness.parallel import ParallelCaseRunner, resolve_workers
from repro.harness.cache import CaseCache, open_default_cache
from repro.harness.metrics import (
    qos_reach,
    mean_nonqos_throughput,
    mean_qos_overshoot,
    miss_histogram,
    MISS_BUCKETS,
)
from repro.harness.report import format_table
from repro.harness import experiments

__all__ = [
    "ExperimentPreset",
    "FAST_PRESET",
    "PAPER_PRESET",
    "experiment_preset",
    "all_pairs",
    "all_trios",
    "CaseRecord",
    "CaseRunner",
    "CaseSpec",
    "KernelOutcome",
    "ParallelCaseRunner",
    "resolve_workers",
    "CaseCache",
    "open_default_cache",
    "qos_reach",
    "mean_nonqos_throughput",
    "mean_qos_overshoot",
    "miss_histogram",
    "MISS_BUCKETS",
    "format_table",
    "experiments",
]
