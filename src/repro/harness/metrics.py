"""Evaluation metrics (Section 4.1).

``QoSreach`` — the fraction of cases that reach their QoS goals
(``# success / # total``); a multi-QoS case succeeds only if *every* QoS
kernel reaches its goal.

Throughput metrics follow the paper's conventions: non-QoS throughput is
normalised to isolated execution and **averaged only over cases that met
the QoS goals**; QoS kernel throughput is normalised to the goal itself
(Figure 9's overshoot measure).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.harness.runner import CaseRecord

#: Figure 5's miss-distance buckets, in percent below goal.
MISS_BUCKETS = ("0-1%", "1-5%", "5-10%", "10-20%", "20+%")
_BUCKET_EDGES = (1.0, 5.0, 10.0, 20.0)


def qos_reach(cases: Iterable[CaseRecord]) -> float:
    """Fraction of cases whose QoS goals were all met."""
    cases = list(cases)
    if not cases:
        return 0.0
    return sum(1 for case in cases if case.qos_met) / len(cases)


def mean_nonqos_throughput(cases: Iterable[CaseRecord],
                           met_only: bool = True) -> Optional[float]:
    """Average normalised non-QoS throughput (Figure 8).

    Returns None when no case qualifies (e.g. nothing met its goal), which
    the reports render as an empty bar — same as the paper's missing bars
    for Spart at the hardest 2-QoS-trio goals.
    """
    values: List[float] = []
    for case in cases:
        if met_only and not case.qos_met:
            continue
        values.extend(k.normalized_throughput for k in case.nonqos_kernels)
    if not values:
        return None
    return sum(values) / len(values)


def mean_qos_overshoot(cases: Iterable[CaseRecord],
                       met_only: bool = True) -> Optional[float]:
    """Average QoS-kernel IPC normalised to its goal (Figure 9)."""
    values: List[float] = []
    for case in cases:
        if met_only and not case.qos_met:
            continue
        values.extend(k.goal_ratio for k in case.qos_kernels)
    if not values:
        return None
    return sum(values) / len(values)


def miss_histogram(cases: Iterable[CaseRecord]) -> dict:
    """Figure 5: count missed QoS kernels by how far they missed."""
    counts = {bucket: 0 for bucket in MISS_BUCKETS}
    for case in cases:
        for kernel in case.qos_kernels:
            if kernel.reached:
                continue
            counts[_bucket_for(kernel.miss_percent)] += 1
    return counts


def _bucket_for(miss_percent: float) -> str:
    for edge, bucket in zip(_BUCKET_EDGES, MISS_BUCKETS):
        if miss_percent <= edge:
            return bucket
    return MISS_BUCKETS[-1]


def system_throughput(case: CaseRecord) -> float:
    """STP (weighted speedup): sum of per-kernel normalised throughputs.

    The standard multiprogramming throughput metric; an STP of K means the
    shared machine does the work of K isolated machines.
    """
    return sum(k.normalized_throughput for k in case.kernels)


def average_normalized_turnaround(case: CaseRecord) -> float:
    """ANTT: mean per-kernel slowdown (1 / normalised throughput).

    Lower is better; 1.0 means no kernel was slowed at all.
    """
    slowdowns = []
    for kernel in case.kernels:
        throughput = kernel.normalized_throughput
        slowdowns.append(1.0 / throughput if throughput > 0 else float("inf"))
    return sum(slowdowns) / len(slowdowns)


def fairness_index(case: CaseRecord) -> float:
    """Min/max normalised throughput across kernels ([42]'s fairness)."""
    values = [k.normalized_throughput for k in case.kernels]
    top = max(values)
    return min(values) / top if top > 0 else 1.0


def mean_instructions_per_watt(cases: Sequence[CaseRecord]) -> Optional[float]:
    """Average inst/Watt over cases (Figure 14 input)."""
    cases = list(cases)
    if not cases:
        return None
    return sum(case.instructions_per_watt for case in cases) / len(cases)


def improvement(new: Optional[float], old: Optional[float]) -> Optional[float]:
    """Relative improvement of ``new`` over ``old`` (None-propagating)."""
    if new is None or old is None or old == 0:
        return None
    return new / old - 1.0
