"""The paper's reported numbers, and shape checks against measurements.

Each figure has a :class:`ShapeCheck` list: the qualitative claims (who
wins, by roughly what factor, where schemes collapse) that a reproduction
must exhibit even when absolute numbers differ — our substrate is a
from-scratch simulator with synthetic workloads, not the authors' GPGPU-Sim
testbed.  :func:`evaluate_experiment` turns a measured
:class:`~repro.harness.experiments.ExperimentResult` into pass/fail
verdicts, and :func:`render_comparison` produces the EXPERIMENTS.md rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: Headline numbers as printed in the paper (Section 4).
PAPER_REPORTED = {
    "fig05": "over 700 of 900 cases missed, most within 5% of goal; "
             "successes overshoot by 1.3%",
    "fig06a": "QoSreach AVG: Spart 0.788, Naive 0.206, Rollover 0.884 "
              "(+12.2% over Spart)",
    "fig06b": "Rollover reaches goals 18.8% more often than Spart",
    "fig06c": "Rollover reaches goals 43.8% more often than Spart; Spart "
              "fails all 2x70% cases",
    "fig07": "both reach all C+C cases; Rollover > Spart for C+M and M+M; "
             "histo poor for both",
    "fig08a": "non-QoS throughput +15.9% over Spart (pairs), falling with "
              "goal",
    "fig08b": "+19.9% over Spart (trios, 1 QoS)",
    "fig08c": "+20.5% over Spart (trios, 2 QoS), >10x at hardest goals",
    "fig09": "QoS overshoot: Spart 1.116, Rollover 1.028",
    "fig10": "Rollover-Time within ~3% of Rollover on QoSreach",
    "fig11": "Rollover-Time degrades non-QoS throughput by 1.47x",
    "fig12": "at 56 SMs Spart improves but stays 4.76% below Rollover",
    "fig13": "at 56 SMs Rollover +30.65% non-QoS throughput",
    "fig14": "instructions/Watt +9.3% over Spart",
    "sec48a": "preemption overhead 1.93% of non-QoS throughput",
    "sec48b": "history adjustment covers 86.4% more cases",
    "sec48c": "static resource management +13.3% non-QoS throughput (M+M)",
    "table1": "Table 1 simulation parameters",
    "table2": "qualitative comparison with prior work",
}


@dataclass
class ShapeCheck:
    """One qualitative claim: description + measured verdict."""

    description: str
    holds: bool
    measured: str


def _avg(series: Dict, key: str) -> Optional[float]:
    return series.get(key, {}).get("AVG")


def evaluate_experiment(result) -> List[ShapeCheck]:
    """Shape checks for one measured experiment (empty if none defined)."""
    evaluator = _EVALUATORS.get(result.experiment_id)
    if evaluator is None:
        return []
    return evaluator(result.data)


# --------------------------------------------------------------- evaluators

def _eval_fig05(data) -> List[ShapeCheck]:
    histogram = data["histogram"]
    near = histogram["0-1%"] + histogram["1-5%"]
    far = histogram["10-20%"] + histogram["20+%"]
    overshoot = data.get("overshoot")
    checks = [
        ShapeCheck("a substantial share of cases miss even with history "
                   "adjustment",
                   data["missed"] / max(1, data["total"]) > 0.2,
                   f"{data['missed']}/{data['total']} missed"),
        ShapeCheck("near-misses (<=5%) dominate distant ones",
                   near >= far, f"near={near}, far={far}"),
    ]
    if overshoot is not None:
        checks.append(ShapeCheck("successful cases overshoot only slightly",
                                 overshoot < 1.15,
                                 f"overshoot {overshoot:.3f}"))
    return checks


def _eval_fig06a(data) -> List[ShapeCheck]:
    series = data["series"]
    naive = _avg(series, "naive")
    spart = _avg(series, "spart")
    rollover = _avg(series, "rollover")
    elastic = _avg(series, "elastic")
    return [
        ShapeCheck("Naive is by far the weakest scheme",
                   naive < min(spart, rollover, elastic) - 0.1,
                   f"naive {naive:.3f} vs others >= "
                   f"{min(spart, rollover, elastic):.3f}"),
        ShapeCheck("Rollover is competitive with or better than Spart",
                   rollover >= spart - 0.06,
                   f"rollover {rollover:.3f} vs spart {spart:.3f}"),
        ShapeCheck("Elastic and Rollover fix Naive's limitation",
                   elastic > naive and rollover > naive,
                   f"elastic {elastic:.3f}, rollover {rollover:.3f}"),
    ]


def _eval_trio(data) -> List[ShapeCheck]:
    series = data["series"]
    spart = _avg(series, "spart")
    rollover = _avg(series, "rollover")
    return [ShapeCheck("Rollover >= Spart on trio QoSreach (scalability)",
                       rollover >= spart - 0.05,
                       f"rollover {rollover:.3f} vs spart {spart:.3f}")]


def _eval_fig07(data) -> List[ShapeCheck]:
    series = data["series"]
    rollover = series["rollover"]
    spart = series["spart"]
    return [
        ShapeCheck("C+C pairings are handled well under Rollover",
                   rollover["C+C"] >= 0.7,
                   f"rollover C+C {rollover['C+C']:.2f}"),
        ShapeCheck("Rollover holds M+M at least as well as Spart "
                   "(indirect bandwidth control)",
                   rollover["M+M"] >= spart["M+M"] - 0.1,
                   f"rollover {rollover['M+M']:.2f} vs spart "
                   f"{spart['M+M']:.2f}"),
        ShapeCheck("Rollover holds C+M at least as well as Spart",
                   rollover["C+M"] >= spart["C+M"] - 0.1,
                   f"rollover {rollover['C+M']:.2f} vs spart "
                   f"{spart['C+M']:.2f}"),
    ]


def _eval_throughput(data) -> List[ShapeCheck]:
    series = data["series"]
    spart = _avg(series, "spart")
    rollover = _avg(series, "rollover")
    if spart is None or rollover is None:
        return [ShapeCheck("comparable non-QoS throughput measurable",
                           True, "one scheme met no goals at this scale")]
    return [ShapeCheck("Rollover extracts at least Spart-level non-QoS "
                       "throughput", rollover >= spart * 0.8,
                       f"rollover {rollover:.3f} vs spart {spart:.3f}")]


def _eval_fig09(data) -> List[ShapeCheck]:
    series = data["series"]
    spart = _avg(series, "spart")
    rollover = _avg(series, "rollover")
    return [
        ShapeCheck("Rollover overshoots goals far less than Spart",
                   rollover is not None and spart is not None
                   and rollover < spart,
                   f"rollover {rollover:.3f} vs spart {spart:.3f}"),
        ShapeCheck("Rollover overshoot is small ('just enough' resources)",
                   rollover is not None and rollover < 1.12,
                   f"rollover {rollover:.3f} (paper 1.028)"),
    ]


def _eval_fig10(data) -> List[ShapeCheck]:
    series = data["series"]
    rollover = _avg(series, "rollover")
    timed = _avg(series, "rollover-time")
    return [ShapeCheck("prioritised time multiplexing matches Rollover's "
                       "QoSreach", abs(rollover - timed) < 0.25,
                       f"rollover {rollover:.3f} vs rollover-time "
                       f"{timed:.3f}")]


def _eval_fig11(data) -> List[ShapeCheck]:
    series = data["series"]
    rollover = _avg(series, "rollover")
    timed = _avg(series, "rollover-time")
    if rollover is None or timed is None:
        return []
    return [ShapeCheck("overlapped execution beats time multiplexing on "
                       "non-QoS throughput", rollover >= timed,
                       f"rollover {rollover:.3f} vs rollover-time "
                       f"{timed:.3f}")]


def _eval_fig14(data) -> List[ShapeCheck]:
    series = data["series"]["improvement"]
    average = series.get("AVG")
    labels = [label for label in series if label != "AVG"]
    trend = (series[labels[-1]] is not None and series[labels[0]] is not None
             and series[labels[-1]] > series[labels[0]] - 0.01)
    return [
        ShapeCheck("efficiency advantage grows with goal difficulty",
                   trend, f"{series[labels[0]]:+.3f} -> "
                          f"{series[labels[-1]]:+.3f}"),
        ShapeCheck("no systematic efficiency loss vs Spart",
                   average is not None and average > -0.06,
                   f"AVG {average:+.3f} (paper +0.093)"),
    ]


def _eval_sec48a(data) -> List[ShapeCheck]:
    overhead = data.get("overhead")
    if overhead is None:
        return []
    return [ShapeCheck("preemption overhead is modest",
                       -0.1 < overhead < 0.5,
                       f"{overhead:+.3f} (paper 0.019)")]


def _eval_sec48b(data) -> List[ShapeCheck]:
    series = data["series"]
    return [ShapeCheck("history adjustment reaches more goals than naive",
                       _avg(series, "history") >= _avg(series, "naive"),
                       f"history {_avg(series, 'history'):.3f} vs naive "
                       f"{_avg(series, 'naive'):.3f}")]


def _eval_sec48c(data) -> List[ShapeCheck]:
    gain = data.get("gain")
    if gain is None:
        return []
    return [ShapeCheck("static management does not hurt M+M throughput",
                       gain > -0.25, f"gain {gain:+.3f} (paper +0.133)")]


_EVALUATORS: Dict[str, Callable] = {
    "fig05": _eval_fig05,
    "fig06a": _eval_fig06a,
    "fig06b": _eval_trio,
    "fig06c": _eval_trio,
    "fig07": _eval_fig07,
    "fig08a": _eval_throughput,
    "fig08b": _eval_throughput,
    "fig08c": _eval_throughput,
    "fig09": _eval_fig09,
    "fig10": _eval_fig10,
    "fig11": _eval_fig11,
    "fig12": _eval_trio,
    "fig13": _eval_throughput,
    "fig14": _eval_fig14,
    "sec48a": _eval_sec48a,
    "sec48b": _eval_sec48b,
    "sec48c": _eval_sec48c,
}


def render_comparison(result, checks: List[ShapeCheck]) -> str:
    """Markdown block for one experiment in EXPERIMENTS.md."""
    lines = [f"### {result.title}", ""]
    reported = PAPER_REPORTED.get(result.experiment_id)
    if reported:
        lines.append(f"*Paper:* {reported}")
        lines.append("")
    lines.append("```")
    lines.append(result.table)
    lines.append("```")
    if checks:
        lines.append("")
        lines.append("| shape claim | measured | holds |")
        lines.append("|---|---|---|")
        for check in checks:
            mark = "yes" if check.holds else "**no**"
            lines.append(f"| {check.description} | {check.measured} "
                         f"| {mark} |")
    lines.append("")
    return "\n".join(lines)
