"""Experiment presets and workload enumeration.

Section 4.1: 90 ordered pairs (one QoS + one non-QoS kernel) from the 10
Parboil benchmarks, 60 trios, QoS goals swept 50-95 % of isolated IPC in 5 %
steps (pairs and 1-QoS trios) and (25,25)-(70,70) for 2-QoS trios, 2M-cycle
simulations with 10K-cycle epochs.

The *paper* preset reproduces that verbatim; the *fast* preset — the default
for the benchmark suite — shrinks the machine (preserving the 4:1 SM:MC
ratio), the simulated window, and the sweep sizes so the pure-Python
simulator regenerates every figure in minutes.  Selection of the pair/trio
subsets is deterministic and class-balanced (C+C / C+M / M+C / M+M all
represented).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.config import FAST_GPU, PAPER_GPU, PASCAL56_GPU, GPUConfig
from repro.kernels import PARBOIL_NAMES, intensity_class


def all_pairs(names: Sequence[str] = PARBOIL_NAMES) -> List[Tuple[str, str]]:
    """All ordered (QoS, non-QoS) pairs: 10 x 9 = 90 for the full suite."""
    return [(qos, nonqos) for qos in names for nonqos in names if qos != nonqos]


def all_trios(names: Sequence[str] = PARBOIL_NAMES,
              limit: int = 60) -> List[Tuple[str, str, str]]:
    """Benchmark trios.  C(10,3) = 120 unordered combinations exist; the
    paper tested 60 "of all possible combinations" without listing them, so
    we deterministically take every second combination in lexicographic
    order, which keeps the intensity-class mix representative."""
    combos = list(itertools.combinations(sorted(names), 3))
    if limit >= len(combos):
        return combos
    step = len(combos) / limit
    return [combos[int(i * step)] for i in range(limit)]


def _balanced_pair_subset(count: int) -> List[Tuple[str, str]]:
    """A deterministic subset of the 90 pairs, balanced two ways: across the
    four C/M pairing classes and across which benchmark plays the QoS role
    (taking the head of each class bucket would test only the
    alphabetically-first QoS kernels)."""
    pairs = all_pairs()
    buckets = {"C+C": [], "C+M": [], "M+C": [], "M+M": []}
    for qos, nonqos in pairs:
        key = f"{intensity_class(qos)}+{intensity_class(nonqos)}"
        buckets[key].append((qos, nonqos))
    subset: List[Tuple[str, str]] = []
    picked = {key: 0 for key in buckets}
    while len(subset) < count:
        for key in ("C+C", "C+M", "M+C", "M+M"):
            bucket = buckets[key]
            if len(subset) >= count:
                break
            # Stride through the bucket so successive picks use different
            # QoS kernels (each QoS kernel contributes a contiguous run).
            per_class = max(1, count // 4)
            position = (picked[key] * len(bucket)) // per_class % len(bucket)
            candidate = bucket[position]
            if candidate not in subset:
                subset.append(candidate)
            else:
                fallback = next(pair for pair in bucket
                                if pair not in subset)
                subset.append(fallback)
            picked[key] += 1
    return subset


@dataclass(frozen=True)
class ExperimentPreset:
    """Everything an experiment needs to know about scale."""

    name: str
    gpu: GPUConfig
    gpu_many_sm: GPUConfig
    cycles: int
    pairs: Tuple[Tuple[str, str], ...]
    trios: Tuple[Tuple[str, str, str], ...]
    pair_goals: Tuple[float, ...]
    trio2_goals: Tuple[float, ...]

    def describe(self) -> str:
        return (f"preset {self.name}: {self.gpu.num_sms} SMs, "
                f"{self.cycles} cycles, {len(self.pairs)} pairs, "
                f"{len(self.trios)} trios, {len(self.pair_goals)} goals")


_PAPER_GOALS = tuple(round(0.50 + 0.05 * i, 2) for i in range(10))
_PAPER_TRIO2_GOALS = tuple(round(0.25 + 0.05 * i, 2) for i in range(10))

PAPER_PRESET = ExperimentPreset(
    name="paper",
    gpu=PAPER_GPU,
    gpu_many_sm=PASCAL56_GPU,
    cycles=2_000_000,
    pairs=tuple(all_pairs()),
    trios=tuple(all_trios(limit=60)),
    pair_goals=_PAPER_GOALS,
    trio2_goals=_PAPER_TRIO2_GOALS,
)

# The fast analogue of the Section 4.6 many-SM machine: twice the SMs of
# FAST_GPU with two warp schedulers per SM, like PASCAL56 vs PAPER.
_FAST_MANY_SM = FAST_GPU.scaled(
    num_sms=8, num_mcs=2,
    sm=FAST_GPU.sm.__class__(warp_schedulers=2),
)

FAST_PRESET = ExperimentPreset(
    name="fast",
    gpu=FAST_GPU,
    gpu_many_sm=_FAST_MANY_SM,
    cycles=24_000,
    pairs=tuple(_balanced_pair_subset(12)),
    trios=tuple(all_trios(limit=6)),
    pair_goals=(0.50, 0.65, 0.80, 0.95),
    trio2_goals=(0.25, 0.40, 0.55, 0.70),
)

# A minimal preset for the test suite: two goals, four pairs, two trios.
SMOKE_PRESET = ExperimentPreset(
    name="smoke",
    gpu=FAST_GPU,
    gpu_many_sm=_FAST_MANY_SM,
    cycles=10_000,
    pairs=tuple(_balanced_pair_subset(4)),
    trios=tuple(all_trios(limit=2)),
    pair_goals=(0.50, 0.80),
    trio2_goals=(0.25, 0.50),
)

#: Named co-run workloads for the controller evaluation harness
#: (``repro controllers bench|compare``): (name, kernel names, QoS count).
#: Chosen to cover the intensity-class mix — compute-bound QoS over a
#: memory hog, compute-vs-memory both ways, and a trio with one QoS kernel
#: against two mixed background kernels.
CONTROLLER_WORKLOADS: Tuple[Tuple[str, Tuple[str, ...], int], ...] = (
    ("sgemm+lbm", ("sgemm", "lbm"), 1),
    ("mri-q+spmv", ("mri-q", "spmv"), 1),
    ("tpacf+stencil", ("tpacf", "stencil"), 1),
    ("sad+histo+lbm", ("sad", "histo", "lbm"), 1),
)


_PRESETS = {p.name: p for p in (PAPER_PRESET, FAST_PRESET, SMOKE_PRESET)}


def experiment_preset(name: str) -> ExperimentPreset:
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment preset {name!r}; choose from {sorted(_PRESETS)}"
        ) from None
