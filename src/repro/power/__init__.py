"""GPUWattch-style event-based power model (Section 4.7)."""

from repro.power.model import EnergyBreakdown, PowerModel, instructions_per_watt

__all__ = ["EnergyBreakdown", "PowerModel", "instructions_per_watt"]
