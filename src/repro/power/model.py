"""An event-energy power model in the spirit of GPUWattch.

GPUWattch derives per-event energies from McPAT-style circuit models; we use
published per-event energy magnitudes for a 16 nm-class GPU (pJ per
instruction / cache access / DRAM access) plus static leakage per SM.  The
paper's Figure 14 metric — instructions per Watt — compares *relative*
efficiency of management schemes on the same machine, so the model's job is
to weight dynamic activity (issue slots, cache traffic, DRAM traffic) and
idle leakage correctly against each other, not to predict absolute Watts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.sim.stats import SimulationResult

# Per-event dynamic energies, picojoules.
ENERGY_PJ = {
    "warp_instruction": 60.0,   # fetch/decode/issue/execute, one warp op
    "thread_lane": 8.0,         # per active lane ALU energy
    "l1_access": 40.0,
    "l2_access": 90.0,
    "dram_access": 1300.0,
    "noc_transfer": 55.0,
}

#: Static (leakage + constant clocking) power per SM, Watts.
SM_STATIC_W = 1.1
#: Fraction of per-SM static power that cannot be clock-gated away when the
#: SM is idle (leakage, retention).  GPUWattch models idle-unit gating; the
#: paper's Section 4.7 leans on exactly this effect ("creating
#: opportunities for power gating").
SM_UNGATED_FRACTION = 0.35
#: Baseline chip-level static power (MCs, scheduler, PHYs), Watts.
CHIP_STATIC_W = 12.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by component for one simulation run."""

    core_dynamic: float
    l1: float
    l2: float
    dram: float
    noc: float
    static: float

    @property
    def total(self) -> float:
        return (self.core_dynamic + self.l1 + self.l2 + self.dram
                + self.noc + self.static)

    def as_dict(self) -> dict:
        return {
            "core_dynamic_j": self.core_dynamic,
            "l1_j": self.l1,
            "l2_j": self.l2,
            "dram_j": self.dram,
            "noc_j": self.noc,
            "static_j": self.static,
            "total_j": self.total,
        }


class PowerModel:
    """Computes energy and inst/Watt for a :class:`SimulationResult`."""

    def __init__(self, config: GPUConfig):
        self.config = config

    def energy(self, result: SimulationResult) -> EnergyBreakdown:
        pj = 1e-12
        warp_insts = 0
        thread_insts = 0
        requests = 0
        for kernel in result.kernels:
            thread_insts += kernel.retired_thread_insts
            warp_insts += kernel.retired_thread_insts // 32 + 1
            requests += kernel.memory["requests"]
        mem = result.memory_aggregate
        l1_accesses = mem["l1_hits"] + mem["l1_misses"]
        l2_accesses = mem["l2_hits"] + mem["l2_misses"]
        dram_accesses = mem["l2_misses"]
        core = (warp_insts * ENERGY_PJ["warp_instruction"]
                + thread_insts * ENERGY_PJ["thread_lane"]) * pj
        l1 = l1_accesses * ENERGY_PJ["l1_access"] * pj
        l2 = l2_accesses * ENERGY_PJ["l2_access"] * pj
        dram = dram_accesses * ENERGY_PJ["dram_access"] * pj
        noc = (mem["l1_misses"] + l2_accesses) * ENERGY_PJ["noc_transfer"] * pj
        seconds = result.cycles / (self.config.core_freq_mhz * 1e6)
        activity = result.extra.get("mean_sm_activity", 1.0)
        gating = SM_UNGATED_FRACTION + (1.0 - SM_UNGATED_FRACTION) * activity
        static = (SM_STATIC_W * self.config.num_sms * gating
                  + CHIP_STATIC_W) * seconds
        return EnergyBreakdown(core_dynamic=core, l1=l1, l2=l2, dram=dram,
                               noc=noc, static=static)

    def average_power_w(self, result: SimulationResult) -> float:
        seconds = result.cycles / (self.config.core_freq_mhz * 1e6)
        return self.energy(result).total / seconds

    def instructions_per_watt(self, result: SimulationResult) -> float:
        return instructions_per_watt(result, self.average_power_w(result))


def instructions_per_watt(result: SimulationResult, power_w: float) -> float:
    """Figure 14's efficiency metric: retired thread insts per Watt-cycle,
    expressed as instructions per Joule-second normalised to run time."""
    if power_w <= 0:
        raise ValueError("power must be positive")
    total = sum(kernel.retired_thread_insts for kernel in result.kernels)
    return total / (power_w * result.cycles)
