"""Whole-tree symbol table and call graph for the flow analyses.

The syntactic rules of :mod:`repro.analysis.rules` look at one expression
at a time; the flow rules (FLOW/EFFECT/FLOAT) need to know *who calls
whom* so taint and effects can cross function boundaries.  This module
builds that statically from a :class:`~repro.analysis.core.Project`:

* :class:`FunctionInfo` / :class:`ClassInfo` — every ``def`` and
  ``class`` in the analyzed tree, addressable by **qualified name**
  (``repro.sim.policy.PolicyContext.set_quota``);
* :class:`CallGraph` — the symbol table plus call-site resolution:
  :meth:`CallGraph.resolve_call` maps a call expression to a
  :class:`CallTarget`, understanding import aliases (via
  :attr:`ModuleInfo.aliases`), module-level function aliasing
  (``f = helper``), ``self.method()`` dispatch through the class and its
  project-local bases, constructor calls (``Foo()`` →
  ``Foo.__init__``), ``super().method()``, and — when the caller passes
  ``local_types`` (the flow engine's variable→class bindings) —
  ``obj.method()`` on variables of statically known class;
* caller/callee edges (:meth:`CallGraph.callers_of`) that the
  interprocedural fixpoint in :mod:`repro.analysis.flow` uses as its
  worklist schedule.

Resolution is deliberately best-effort: anything it cannot pin down comes
back as an ``unknown-method`` / ``unknown`` target and the flow engine
falls back to conservative heuristics.  Like everything in the analyzer,
this is stdlib-only and never imports the code it describes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.core import ModuleInfo, Project, dotted_name

#: Decorators that change how a def's parameters bind.
_STATIC_DECORATORS = {"staticmethod"}
_CLASS_DECORATORS = {"classmethod"}


@dataclass
class FunctionInfo:
    """One ``def`` in the analyzed tree."""

    qname: str
    name: str
    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Qualified name of the owning class, None for module-level functions.
    class_qname: Optional[str] = None
    #: Parameter names in positional order (``self``/``cls`` included).
    params: Tuple[str, ...] = ()
    #: Decorator names as written (dotted where applicable).
    decorators: Tuple[str, ...] = ()
    line: int = 0

    @property
    def is_method(self) -> bool:
        return self.class_qname is not None

    @property
    def binds_instance(self) -> bool:
        """Whether the first parameter is the instance/class receiver."""
        if not self.is_method or not self.params:
            return False
        simple = {decorator.split(".")[-1] for decorator in self.decorators}
        return not (simple & _STATIC_DECORATORS)

    @property
    def receiver_param(self) -> Optional[str]:
        return self.params[0] if self.binds_instance else None


@dataclass
class ClassInfo:
    """One ``class`` in the analyzed tree."""

    qname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    #: Base names resolved to absolute dotted form where possible.
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass(frozen=True)
class CallTarget:
    """Resolution result for one call expression.

    ``kind`` is one of:

    * ``"function"`` — a project function/method; ``qname`` addresses it;
    * ``"constructor"`` — a project class; ``qname`` is the class (its
      ``__init__``, when defined, is the callee body);
    * ``"external"`` — resolved to an absolute dotted name outside the
      analyzed tree (``hashlib.sha256``, ``time.time``);
    * ``"unknown-method"`` — a method call whose receiver class is
      unknown; ``qname`` is just the attribute name (``"append"``);
    * ``"unknown"`` — nothing usable (call on a subscript, lambda, ...).
    """

    kind: str
    qname: str

    @property
    def is_project(self) -> bool:
        return self.kind in ("function", "constructor")


def _function_params(node) -> Tuple[str, ...]:
    args = node.args
    names = [arg.arg for arg in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(arg.arg for arg in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _decorator_names(node) -> Tuple[str, ...]:
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target)
        if dotted:
            names.append(dotted)
    return tuple(names)


class CallGraph:
    """Symbol table + call resolution over one :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module name -> local symbol -> qualified name (functions and
        #: classes defined at module top level, plus ``f = g`` aliases).
        self.module_scope: Dict[str, Dict[str, str]] = {}
        for module in project.modules:
            self._index_module(module)
        self._callers: Optional[Dict[str, Set[str]]] = None

    # ------------------------------------------------------------- indexing

    def _index_module(self, module: ModuleInfo) -> None:
        scope: Dict[str, str] = {}
        self.module_scope[module.name] = scope
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._index_function(module, node, class_qname=None)
                scope[node.name] = info.qname
            elif isinstance(node, ast.ClassDef):
                info = self._index_class(module, node)
                scope[node.name] = info.qname
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                # Module-level aliasing: ``run = _run_impl``.
                target, value = node.targets[0], node.value
                if (isinstance(target, ast.Name)
                        and isinstance(value, ast.Name)
                        and value.id in scope):
                    scope[target.id] = scope[value.id]

    def _index_function(self, module: ModuleInfo, node,
                        class_qname: Optional[str]) -> FunctionInfo:
        owner = class_qname if class_qname else module.name
        info = FunctionInfo(
            qname=f"{owner}.{node.name}", name=node.name, module=module,
            node=node, class_qname=class_qname,
            params=_function_params(node),
            decorators=_decorator_names(node), line=node.lineno)
        self.functions[info.qname] = info
        return info

    def _index_class(self, module: ModuleInfo,
                     node: ast.ClassDef) -> ClassInfo:
        qname = f"{module.name}.{node.name}"
        bases = []
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            bases.append(self._resolve_symbol(module, dotted) or dotted)
        info = ClassInfo(qname=qname, name=node.name, module=module,
                         node=node, bases=tuple(bases))
        self.classes[qname] = info
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._index_function(module, statement,
                                              class_qname=qname)
                info.methods[statement.name] = method
        return info

    # ----------------------------------------------------------- resolution

    def _resolve_symbol(self, module: ModuleInfo,
                        dotted: str) -> Optional[str]:
        """Absolute qualified name for a dotted reference in ``module``.

        Tries, in order: module-local top-level symbols, import aliases
        (``np.random.default_rng`` → ``numpy.random.default_rng``), and —
        when the alias lands inside the project — the project symbol it
        names (``from repro.sim.policy import PolicyContext`` →
        ``repro.sim.policy.PolicyContext``).
        """
        head, _, rest = dotted.partition(".")
        scope = self.module_scope.get(module.name, {})
        if head in scope:
            base = scope[head]
            return f"{base}.{rest}" if rest else base
        origin = module.aliases.get(head)
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin

    def lookup_method(self, class_qname: str,
                      method: str) -> Optional[FunctionInfo]:
        """Resolve ``method`` on a class, walking project-local bases."""
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def class_of(self, qname: str) -> Optional[ClassInfo]:
        return self.classes.get(qname)

    def resolve_call(self, module: ModuleInfo, call: ast.Call,
                     enclosing: Optional[FunctionInfo] = None,
                     local_types: Optional[Mapping[str, str]] = None
                     ) -> CallTarget:
        """Best-effort resolution of ``call``'s target.

        ``enclosing`` enables ``self.method()`` / ``super().method()``
        dispatch; ``local_types`` (variable name → class qname) enables
        ``obj.method()`` on variables the flow engine knows the class of.
        """
        func = call.func
        # super().method()
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and enclosing is not None and enclosing.class_qname):
            owner = self.classes.get(enclosing.class_qname)
            if owner is not None:
                for base in owner.bases:
                    found = self.lookup_method(base, func.attr)
                    if found is not None:
                        return CallTarget("function", found.qname)
            return CallTarget("unknown-method", func.attr)
        dotted = dotted_name(func)
        if dotted is None:
            return CallTarget("unknown", "")
        head, _, rest = dotted.partition(".")
        # self.method() / cls.method()
        if (enclosing is not None and enclosing.class_qname
                and rest and "." not in rest
                and head == enclosing.receiver_param):
            found = self.lookup_method(enclosing.class_qname, rest)
            if found is not None:
                return CallTarget("function", found.qname)
            return CallTarget("unknown-method", rest)
        # obj.method() with a statically known receiver class
        if (local_types and rest and "." not in rest
                and head in local_types):
            found = self.lookup_method(local_types[head], rest)
            if found is not None:
                return CallTarget("function", found.qname)
            return CallTarget("unknown-method", rest)
        resolved = self._resolve_symbol(module, dotted)
        if resolved is None:
            if isinstance(func, ast.Attribute):
                return CallTarget("unknown-method", func.attr)
            return CallTarget("unknown", dotted)
        if resolved in self.functions:
            return CallTarget("function", resolved)
        if resolved in self.classes:
            return CallTarget("constructor", resolved)
        # ``from pkg import name`` gives pkg.name even when ``name`` is a
        # symbol of pkg's __init__ re-export; try the tail as a project
        # symbol before declaring it external.
        base, _, tail = resolved.rpartition(".")
        exporting = self.project.module(base)
        if exporting is not None:
            origin = exporting.aliases.get(tail)
            if origin is not None:
                if origin in self.functions:
                    return CallTarget("function", origin)
                if origin in self.classes:
                    return CallTarget("constructor", origin)
        if isinstance(func, ast.Attribute) and resolved.split(".")[0] in (
                self.module_scope):
            # A dotted chain rooted at a project symbol we could not pin
            # down (e.g. an attribute on a project class object).
            return CallTarget("unknown-method", func.attr)
        return CallTarget("external", resolved)

    def callee_body(self, target: CallTarget) -> Optional[FunctionInfo]:
        """The function body a project target executes (a constructor's
        ``__init__`` when defined)."""
        if target.kind == "function":
            return self.functions.get(target.qname)
        if target.kind == "constructor":
            return self.lookup_method(target.qname, "__init__")
        return None

    # ---------------------------------------------------------------- edges

    def _annotation_class(self, module: ModuleInfo, annotation) -> Optional[str]:
        """Project class qname named by a parameter annotation, if any.

        Handles both plain names (``ctx: PolicyContext``) and string
        annotations (``ctx: "PolicyContext"``).
        """
        if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str):
            text = annotation.value.strip()
            if not text.replace(".", "").replace("_", "").isalnum():
                return None
            try:
                annotation = ast.parse(text, mode="eval").body
            except SyntaxError:
                return None
        dotted = dotted_name(annotation)
        if dotted is None:
            return None
        resolved = self._resolve_symbol(module, dotted) or dotted
        return resolved if resolved in self.classes else None

    def local_types_for(self, info: FunctionInfo) -> Dict[str, str]:
        """Variable → class qname bindings from parameter annotations
        (``ctx: PolicyContext``) and simple constructor assignments
        (``ctx = PolicyContext(engine)``) in one function.

        Conservative single-binding contract: a name rebound to anything
        that is not the same constructor is dropped.
        """
        types: Dict[str, str] = {}
        dropped: Set[str] = set()
        arguments = info.node.args
        for arg in (arguments.posonlyargs + arguments.args
                    + arguments.kwonlyargs):
            if arg.annotation is None:
                continue
            qname = self._annotation_class(info.module, arg.annotation)
            if qname is not None:
                types[arg.arg] = qname
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            qname = None
            if isinstance(node.value, ast.Call):
                resolved = self.resolve_call(info.module, node.value,
                                             enclosing=info)
                if resolved.kind == "constructor":
                    qname = resolved.qname
            if qname is None:
                dropped.add(target.id)
            elif types.get(target.id, qname) != qname:
                dropped.add(target.id)
            else:
                types[target.id] = qname
        return {name: qname for name, qname in types.items()
                if name not in dropped}

    def iter_calls(self, info: FunctionInfo) -> Iterator[
            Tuple[ast.Call, CallTarget]]:
        """Every call expression in a function body with its resolution."""
        local_types = self.local_types_for(info)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(info.module, node,
                                              enclosing=info,
                                              local_types=local_types)

    def callers_of(self, qname: str) -> Set[str]:
        """Qualified names of functions whose bodies may call ``qname``."""
        if self._callers is None:
            callers: Dict[str, Set[str]] = {}
            for caller in self.functions.values():
                for _node, target in self.iter_calls(caller):
                    body = self.callee_body(target)
                    if body is not None:
                        callers.setdefault(body.qname, set()).add(
                            caller.qname)
            self._callers = callers
        return self._callers.get(qname, set())

    def functions_of_module(self, module_name: str) -> List[FunctionInfo]:
        return [info for info in self.functions.values()
                if info.module.name == module_name]


def build_callgraph(project: Project) -> CallGraph:
    return CallGraph(project)
