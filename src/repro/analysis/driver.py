"""Analysis driver: collect sources, run rules, apply suppressions.

:func:`analyze_paths` is the programmatic entry point (the CLI and the
test suite both sit on it); :func:`check_source` is the one-snippet
convenience the analyzer's own tests use.
"""

from __future__ import annotations

import ast
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.core import (
    ERROR,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    all_rules,
    module_name_for,
)

#: Rule id used for files the parser rejects (not suppressible by design —
#: a file that does not parse cannot carry a trustworthy noqa comment).
PARSE_ERROR_RULE = "E999"

_SKIP_DIR_NAMES = {"__pycache__"}
_SKIP_DIR_SUFFIXES = (".egg-info",)

#: Environment override for the flow-summary cache: ``0``/``off`` (or
#: empty) disables it, any other value relocates the cache directory.
ENV_FLOW_CACHE = "REPRO_LINT_CACHE"
_CACHE_OFF_VALUES = {"", "0", "off", "no", "false"}


def default_flow_cache_dir(
        root: Optional[pathlib.Path]) -> Optional[pathlib.Path]:
    """Where interprocedural summaries cache for a repo-checkout run:
    ``benchmarks/.cache/analysis/`` next to the other derived artifacts
    (the case cache, the experiment store), or nowhere when ``root``
    does not look like a checkout."""
    if root is None:
        return None
    root = pathlib.Path(root)
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / ".cache" / "analysis"
    return None


def resolve_flow_cache_dir(root: Optional[pathlib.Path] = None,
                           explicit: Optional[pathlib.Path] = None,
                           enabled: bool = True) -> Optional[pathlib.Path]:
    """The flow-cache directory to use, or ``None`` for uncached runs.

    Precedence: ``enabled=False`` wins, then an ``explicit`` directory,
    then :data:`ENV_FLOW_CACHE`, then :func:`default_flow_cache_dir`.
    """
    if not enabled:
        return None
    if explicit is not None:
        return pathlib.Path(explicit)
    env = os.environ.get(ENV_FLOW_CACHE)
    if env is not None:
        if env.strip().lower() in _CACHE_OFF_VALUES:
            return None
        return pathlib.Path(env)
    return default_flow_cache_dir(root)


def iter_python_files(paths: Iterable[pathlib.Path]) -> List[pathlib.Path]:
    """Every ``.py`` file under ``paths``, sorted, cache dirs skipped."""
    files: List[pathlib.Path] = []
    for path in paths:
        path = pathlib.Path(path)
        if path.is_dir():
            for source in sorted(path.rglob("*.py")):
                parts = source.parts
                if any(part in _SKIP_DIR_NAMES
                       or part.endswith(_SKIP_DIR_SUFFIXES)
                       for part in parts):
                    continue
                files.append(source)
        elif path.suffix == ".py":
            files.append(path)
    unique: Dict[pathlib.Path, None] = {}
    for source in files:
        unique.setdefault(source.resolve(), None)
    return sorted(unique)


def display_path(path: pathlib.Path, root: Optional[pathlib.Path]) -> str:
    path = path.resolve()
    if root is not None:
        try:
            return path.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro: noqa`` comment.
    suppressed: List[Finding] = field(default_factory=list)
    modules: List[ModuleInfo] = field(default_factory=list)
    #: ``{"modules", "computed", "cached"}`` from the interprocedural
    #: flow engine, or ``None`` when no flow-backed rule ran.
    flow_stats: Optional[Dict[str, int]] = None

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings
                if finding.severity == ERROR]


def load_project(paths: Sequence[pathlib.Path],
                 root: Optional[pathlib.Path] = None
                 ) -> "tuple[Project, List[Finding]]":
    """Parse every file under ``paths``; syntax errors become findings."""
    modules: List[ModuleInfo] = []
    parse_findings: List[Finding] = []
    for source_path in iter_python_files(paths):
        display = display_path(source_path, root)
        try:
            source = source_path.read_text()
            tree = ast.parse(source, filename=str(source_path))
        except (SyntaxError, ValueError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            parse_findings.append(Finding(
                rule=PARSE_ERROR_RULE, severity=ERROR, path=display,
                line=line, message=f"file does not parse: {error}"))
            continue
        modules.append(ModuleInfo(path=source_path, display=display,
                                  source=source, tree=tree,
                                  name=module_name_for(source_path)))
    return Project(modules), parse_findings


def select_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """The registered rules, optionally restricted to ``rule_ids``.

    Raises ``ValueError`` naming the unknown ids (and the known catalog)
    when a requested id does not exist.
    """
    registry = all_rules()
    if rule_ids is None:
        return [registry[rule_id] for rule_id in sorted(registry)]
    unknown = sorted(set(rule_ids) - set(registry))
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; known rules: "
            f"{', '.join(sorted(registry))}")
    return [registry[rule_id] for rule_id in sorted(set(rule_ids))]


def analyze_paths(paths: Sequence[pathlib.Path],
                  root: Optional[pathlib.Path] = None,
                  rule_ids: Optional[Sequence[str]] = None,
                  flow_cache: bool = True,
                  flow_cache_dir: Optional[pathlib.Path] = None
                  ) -> AnalysisResult:
    """Run the (selected) rule set over every python file under ``paths``.

    Findings on lines carrying a matching ``# repro: noqa[=RULE,...]``
    comment land in :attr:`AnalysisResult.suppressed` instead of
    :attr:`AnalysisResult.findings`.  Parse failures are reported as
    :data:`PARSE_ERROR_RULE` findings and are never suppressible.

    Interprocedural rules (FLOW/FLOAT/EFFECT) share one engine run per
    project; its per-module summaries persist under the directory
    :func:`resolve_flow_cache_dir` picks (pass ``flow_cache=False`` or
    set ``REPRO_LINT_CACHE=0`` for a cold run every time).
    """
    rules = select_rules(rule_ids)
    project, parse_findings = load_project(paths, root=root)
    cache_dir = resolve_flow_cache_dir(root=root, explicit=flow_cache_dir,
                                       enabled=flow_cache)
    if cache_dir is not None:
        project.flow_cache_dir = cache_dir
    raw: List[Finding] = []
    for rule in rules:
        if rule.scope == "project":
            raw.extend(rule.check_project(project))
        else:
            for module in project.modules:
                raw.extend(rule.check_module(module))
    result = AnalysisResult(modules=project.modules)
    flow = getattr(project, "_flow_analysis", None)
    if flow is not None:
        result.flow_stats = dict(flow.stats)
    result.findings.extend(parse_findings)
    for finding in raw:
        module = project.by_display.get(finding.path)
        if module is not None and module.suppresses(finding):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return result


def check_source(source: str, path: str = "snippet.py",
                 name: Optional[str] = None,
                 rule_ids: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one in-memory snippet (module-scope rules only see one module;
    project-scope rules run too but skip when their anchor modules are
    absent).  ``name`` defaults to the stem of ``path``."""
    rules = select_rules(rule_ids)
    tree = ast.parse(source, filename=path)
    module = ModuleInfo(path=pathlib.Path(path), display=path, source=source,
                        tree=tree, name=name or pathlib.Path(path).stem)
    project = Project([module])
    findings: List[Finding] = []
    for rule in rules:
        if rule.scope == "project":
            findings.extend(rule.check_project(project))
        else:
            findings.extend(rule.check_module(module))
    return sorted(
        (finding for finding in findings if not module.suppresses(finding)),
        key=lambda f: (f.line, f.rule, f.message))
