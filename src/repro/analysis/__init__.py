"""``repro.analysis`` — a static determinism & layering linter ("repro lint").

The reproduction's credibility rests on invariants that used to be enforced
only dynamically and piecemeal: bit-identical results across the event/scan
cores and serial/parallel runners, policies that never poke the engine, a
content-hash cache whose code salt covers every result-affecting module,
and a telemetry schema the JSONL exporter can always round-trip.  This
package checks those properties statically over the whole tree:

* :mod:`repro.analysis.core` — the framework: findings, rules, modules,
  the registry, ``# repro: noqa=RULE`` suppressions;
* :mod:`repro.analysis.rules` — the built-in rule catalog (determinism,
  layering contracts, cache-salt coverage, telemetry-schema sync);
* :mod:`repro.analysis.baseline` — grandfathered findings that
  ``--strict`` tolerates;
* :mod:`repro.analysis.driver` — :func:`analyze_paths` /
  :func:`check_source`, the programmatic entry points;
* :mod:`repro.analysis.cli` — the ``repro lint`` subcommand.

Nothing in the simulator runtime imports this package (enforced by the
``runtime-analysis-independence`` contract — by the linter itself).
"""

from repro.analysis.core import (
    ALL_RULES,
    ERROR,
    WARNING,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    all_rules,
    register,
)
from repro.analysis.driver import (
    AnalysisResult,
    analyze_paths,
    check_source,
    select_rules,
)

__all__ = [
    "ALL_RULES",
    "ERROR",
    "WARNING",
    "AnalysisResult",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "analyze_paths",
    "check_source",
    "register",
    "select_rules",
]
