"""``repro lint`` — the analyzer's command-line front end.

Examples::

    repro-gpu-qos lint                       # lint src/ + examples/
    repro-gpu-qos lint --strict              # CI mode: exit 1 on new findings
    repro-gpu-qos lint --rule DET003 src     # one rule, explicit paths
    repro-gpu-qos lint --format json         # machine-readable report
    repro-gpu-qos lint --list-rules          # the rule catalog
    repro-gpu-qos lint --write-baseline      # grandfather current findings
    repro-lint --strict                      # dedicated console entry

Exit codes: 0 clean (or findings without ``--strict``), 1 new findings
under ``--strict``, 2 usage errors.  Findings on a baseline entry (see
``--baseline``) or on a line with ``# repro: noqa=RULE`` never fail the
run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.core import all_rules
from repro.analysis.driver import analyze_paths, select_rules


def default_targets(cwd: Optional[pathlib.Path] = None) -> List[pathlib.Path]:
    """``src/`` + ``examples/`` when run from a checkout, else the
    installed package itself."""
    cwd = pathlib.Path.cwd() if cwd is None else cwd
    if (cwd / "src" / "repro").is_dir():
        targets = [cwd / "src"]
        if (cwd / "examples").is_dir():
            targets.append(cwd / "examples")
        return targets
    return [pathlib.Path(__file__).resolve().parents[1]]


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos lint",
        description="Statically check the reproduction's determinism, "
                    "layering, cache-salt and telemetry-schema invariants")
    parser.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="files or directories to lint (default: src/ and examples/ "
             "under the current directory)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any non-baselined, non-suppressed finding remains")
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="ID", default=None,
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="baseline file of grandfathered findings (default: "
             f"{baseline_mod.DEFAULT_BASELINE_NAME} in the current "
             "directory, when present)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings and exit 0")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (default: human)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--explain", metavar="ID", default=None,
        help="print one rule's full documentation (rationale and an "
             "example source→sink trace) and exit")
    parser.add_argument(
        "--no-flow-cache", action="store_false", dest="flow_cache",
        help="recompute interprocedural flow summaries instead of "
             "reusing benchmarks/.cache/analysis/ (REPRO_LINT_CACHE=0 "
             "does the same; a path value relocates the cache)")
    return parser


def _print_rule_catalog() -> None:
    registry = all_rules()
    for rule_id in sorted(registry):
        rule = registry[rule_id]
        scope = "project" if rule.scope == "project" else "module"
        print(f"{rule_id}  [{rule.severity}/{scope}]  {rule.summary}")


def _print_rule_explain(rule_id: str) -> int:
    registry = all_rules()
    rule = registry.get(rule_id.upper())
    if rule is None:
        print(f"error: unknown rule id {rule_id!r}; known rules: "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    scope = "project" if rule.scope == "project" else "module"
    print(f"{rule.id}  [{rule.severity}/{scope}]")
    print(f"{rule.summary}")
    body = getattr(rule, "explain", None) or (rule.__doc__ or "").strip()
    if body:
        print()
        print(body.rstrip())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        _print_rule_catalog()
        return 0
    if args.explain:
        return _print_rule_explain(args.explain)

    try:
        rules = select_rules(args.rules)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cwd = pathlib.Path.cwd()
    paths = [pathlib.Path(path) for path in args.paths] or default_targets(cwd)
    missing = [path for path in paths if not path.exists()]
    if missing:
        print("error: no such path: "
              + ", ".join(str(path) for path in missing), file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = cwd / baseline_mod.DEFAULT_BASELINE_NAME
        baseline_path = candidate if candidate.exists() else None
    elif not baseline_path.exists() and not args.write_baseline:
        print(f"error: baseline file {baseline_path} does not exist "
              "(use --write-baseline to create it)", file=sys.stderr)
        return 2

    result = analyze_paths(paths, root=cwd,
                           rule_ids=[rule.id for rule in rules],
                           flow_cache=args.flow_cache)

    if args.write_baseline:
        target = baseline_path or cwd / baseline_mod.DEFAULT_BASELINE_NAME
        count = baseline_mod.write_baseline(target, result.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {target}", file=sys.stderr)
        return 0

    entries: List[dict] = []
    if baseline_path is not None:
        try:
            entries = baseline_mod.load_baseline(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    fingerprints = baseline_mod.baseline_fingerprints(entries)
    new, baselined = baseline_mod.split_by_baseline(result.findings,
                                                    fingerprints)
    stale = baseline_mod.unused_entries(entries, result.findings)

    if args.format == "json":
        print(json.dumps({
            "findings": [
                {"rule": finding.rule, "severity": finding.severity,
                 "path": finding.path, "line": finding.line,
                 "message": finding.message, "baselined": False}
                for finding in new
            ] + [
                {"rule": finding.rule, "severity": finding.severity,
                 "path": finding.path, "line": finding.line,
                 "message": finding.message, "baselined": True}
                for finding in baselined
            ],
            "counts": {
                "new": len(new),
                "baselined": len(baselined),
                "suppressed": len(result.suppressed),
                "stale_baseline_entries": len(stale),
                "modules": len(result.modules),
            },
            "flow_cache": result.flow_stats,
            "strict": bool(args.strict),
        }, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.format())
        for finding in baselined:
            print(f"{finding.format()}  (baselined)")
        summary = (f"{len(new)} finding{'s' if len(new) != 1 else ''} "
                   f"({len(baselined)} baselined, "
                   f"{len(result.suppressed)} noqa-suppressed) across "
                   f"{len(result.modules)} modules")
        if result.flow_stats is not None:
            summary += (f"; flow summaries: "
                        f"{result.flow_stats['computed']} computed, "
                        f"{result.flow_stats['cached']} cached")
        print(summary, file=sys.stderr)
        if stale:
            print(f"note: {len(stale)} baseline entr"
                  f"{'y is' if len(stale) == 1 else 'ies are'} no longer "
                  "matched by any finding; regenerate with --write-baseline",
                  file=sys.stderr)

    if args.strict and new:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
