"""Baseline store: grandfathered findings that ``--strict`` tolerates.

A baseline is a checked-in JSON file listing findings that existed when a
rule was introduced and have been consciously deferred (each entry carries
a ``justification``).  ``repro lint --strict`` fails only on findings *not*
in the baseline, so new rules can land without blocking on fixing the
whole backlog at once — while ratcheting: removing the underlying code
removes the finding, and ``--write-baseline`` regenerates the file so the
entry disappears rather than lingering.

Entries match findings by fingerprint — ``(rule, path, message)``, no line
number — so unrelated edits that shift code do not invalidate them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up at the lint root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

Fingerprint = Tuple[str, str, str]


def load_baseline(path: pathlib.Path) -> List[Dict[str, str]]:
    """Baseline entries from ``path`` (raises ValueError on a bad file)."""
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: baseline must be a JSON object")
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {payload.get('version')!r} does not "
            f"match expected {BASELINE_VERSION}")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline 'entries' must be a list")
    for entry in entries:
        if not isinstance(entry, dict) or not all(
                isinstance(entry.get(key), str)
                for key in ("rule", "path", "message")):
            raise ValueError(
                f"{path}: each baseline entry needs string 'rule', 'path' "
                "and 'message' fields")
    return entries


def baseline_fingerprints(entries: Iterable[Dict[str, str]]) -> Set[Fingerprint]:
    return {(entry["rule"], entry["path"], entry["message"])
            for entry in entries}


def split_by_baseline(findings: Sequence[Finding],
                      fingerprints: Set[Fingerprint]):
    """``(new, baselined)`` partition of ``findings``."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        (baselined if finding.fingerprint in fingerprints
         else new).append(finding)
    return new, baselined


def unused_entries(entries: Sequence[Dict[str, str]],
                   findings: Sequence[Finding]) -> List[Dict[str, str]]:
    """Baseline entries that no current finding matches (fixed code whose
    grandfathering should be dropped)."""
    live = {finding.fingerprint for finding in findings}
    return [entry for entry in entries
            if (entry["rule"], entry["path"], entry["message"]) not in live]


def write_baseline(path: pathlib.Path, findings: Sequence[Finding],
                   justification: str = "grandfathered by --write-baseline"
                   ) -> int:
    """Serialise ``findings`` as the new baseline; returns the entry count."""
    entries = [
        {"rule": finding.rule, "path": finding.path,
         "message": finding.message, "justification": justification}
        for finding in sorted(findings,
                              key=lambda f: (f.path, f.rule, f.message))
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)
