"""Shared machinery of the ``repro lint`` static analyzer.

The analyzer is a small AST-walking lint framework purpose-built for this
reproduction's invariants (see :mod:`repro.analysis.rules`):

* :class:`ModuleInfo` — one parsed source file: its dotted module name,
  AST (with a lazily-built parent map), import-alias table and per-line
  ``# repro: noqa=RULE`` suppressions;
* :class:`Project` — every analyzed module, addressable by dotted name,
  which is what cross-module rules (cache-salt coverage, telemetry schema
  sync) operate on;
* :class:`Rule` — base class; a rule either checks one module at a time
  (``scope = "module"``) or the whole project (``scope = "project"``) and
  yields :class:`Finding`\\ s;
* the rule registry (:func:`register`, :func:`all_rules`) that the driver
  and CLI enumerate.

Everything here is stdlib-only and independent of the simulator runtime,
so the linter can analyze broken or partial trees (fixtures, mid-refactor
checkouts) without importing them.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Severity labels.  ``ERROR`` findings are invariant violations; ``WARNING``
#: findings are hazards that may be legitimate but deserve a look (both fail
#: ``--strict`` unless suppressed or baselined — severity is a label for the
#: reader, not an exit-code class).
ERROR = "error"
WARNING = "warning"

#: Sentinel: a bare ``# repro: noqa`` suppresses every rule on its line.
ALL_RULES = "*"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*=\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file and line.

    ``fingerprint`` (rule, path, message) deliberately excludes the line
    number so baseline entries survive unrelated edits that shift code.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}] {self.message}"


class ModuleInfo:
    """One parsed python source file plus the lookups rules keep needing."""

    def __init__(self, path: pathlib.Path, display: str, source: str,
                 tree: ast.Module, name: str):
        self.path = path
        #: Root-relative posix path used in findings and baselines.
        self.display = display
        self.source = source
        self.tree = tree
        #: Dotted module name (``repro.sim.engine``), derived from the
        #: ``__init__.py`` chain above the file.
        self.name = name
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._aliases: Optional[Dict[str, str]] = None
        self._noqa: Optional[Dict[int, frozenset]] = None

    # ------------------------------------------------------------ AST helpers

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module root)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent_of(node)
        while current is not None:
            yield current
            current = self.parent_of(current)

    @property
    def aliases(self) -> Dict[str, str]:
        """Local name -> absolute dotted origin, from import statements.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        time as now`` maps ``now -> time.time``.  Bare ``import a.b``
        binds only ``a``, which maps to itself.
        """
        if self._aliases is None:
            aliases: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            aliases[alias.asname] = alias.name
                        else:
                            head = alias.name.split(".")[0]
                            aliases[head] = head
                elif isinstance(node, ast.ImportFrom):
                    base = self.resolve_import_from(node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        aliases[alias.asname or alias.name] = (
                            f"{base}.{alias.name}")
            self._aliases = aliases
        return self._aliases

    def resolve_import_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from X import ...`` statement
        (resolving explicit-relative imports against this module's name)."""
        if node.level == 0:
            return node.module
        parts = self.name.split(".")
        if self.path.name == "__init__.py":
            parts.append("")  # the package itself counts as one level
        if node.level > len(parts):
            return node.module
        base_parts = parts[:len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(part for part in base_parts if part) or None

    def imported_modules(self) -> List[Tuple[str, int]]:
        """Every absolute module name this file imports, with line numbers.

        ``from pkg import name`` is reported as ``pkg.name`` *and* ``pkg``
        cannot be distinguished statically, so the caller gets the joined
        form; consumers that care (the salt-coverage closure) try the
        joined form first and fall back to the base module.
        """
        found: List[Tuple[str, int]] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                found.extend((alias.name, node.lineno) for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        found.append((base, node.lineno))
                    else:
                        found.append((f"{base}.{alias.name}", node.lineno))
        return found

    def resolved_call_name(self, node: ast.Call) -> Optional[str]:
        """Absolute dotted name of a call target, or None.

        ``np.random.choice(...)`` resolves to ``numpy.random.choice`` when
        the module imported ``numpy as np``; a call on a local object
        (``rng.choice(...)``) resolves to None unless ``rng`` is an import
        alias.
        """
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin

    # ----------------------------------------------------------- suppressions

    def noqa_rules(self, line: int) -> frozenset:
        """Rule ids suppressed on ``line`` (may contain :data:`ALL_RULES`)."""
        if self._noqa is None:
            noqa: Dict[int, frozenset] = {}
            for lineno, text in enumerate(self.source.splitlines(), start=1):
                match = _NOQA_RE.search(text)
                if not match:
                    continue
                rules = match.group("rules")
                if rules is None:
                    noqa[lineno] = frozenset((ALL_RULES,))
                else:
                    noqa[lineno] = frozenset(
                        rule.strip() for rule in rules.split(","))
            self._noqa = noqa
        return self._noqa.get(line, frozenset())

    def suppresses(self, finding: Finding) -> bool:
        suppressed = self.noqa_rules(finding.line)
        return ALL_RULES in suppressed or finding.rule in suppressed


class Project:
    """Every module under analysis, addressable by dotted name."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: List[ModuleInfo] = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {
            module.name: module for module in self.modules}
        self.by_display: Dict[str, ModuleInfo] = {
            module.display: module for module in self.modules}

    def module(self, name: str) -> Optional[ModuleInfo]:
        return self.by_name.get(name)

    def has_module(self, name: str) -> bool:
        return name in self.by_name


class Rule:
    """Base lint rule.  Subclasses set the class attributes and override
    :meth:`check_module` (``scope = "module"``) or :meth:`check_project`
    (``scope = "project"``, for cross-module invariants)."""

    id: str = ""
    severity: str = ERROR
    scope: str = "module"
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(rule=self.id, severity=self.severity,
                       path=module.display, line=line, message=message)


# ---------------------------------------------------------------- registry

_REGISTRY: Dict[str, Rule] = {}


def register(rule_class):
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_class


def all_rules() -> Dict[str, Rule]:
    """The registry, importing the built-in rule modules on first use."""
    from repro.analysis import rules as _rules  # noqa: F401 (registration)
    return dict(_REGISTRY)


# ------------------------------------------------------------- AST utilities

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def attribute_base(node: ast.AST) -> Optional[str]:
    """The root Name of an attribute chain (``ctx`` for ``ctx.epoch.ipc``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name implied by the ``__init__.py`` chain above a file."""
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem
