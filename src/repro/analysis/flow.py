"""Interprocedural dataflow: taint, shapes, effects, and summaries.

This is the engine under the FLOW/EFFECT/FLOAT rules.  Per function it
runs a worklist dataflow over a small CFG, abstracting every value as an
:class:`AbsValue` — a set of taint :class:`Tag`\\ s (where did this value
come from: wall clock, unseeded RNG, ``id()``, a filesystem listing, set
iteration, or a *parameter*) plus a set of **shapes** (is it an unordered
set, a filesystem listing, a parallel-worker result list).  Parameters
enter tainted with their own provenance, so one pass per function yields
both the local findings *and* the function's :class:`FunctionFacts`
summary: what it returns (in terms of its parameters and of fresh
sources), which parameters flow into which sinks inside it, and its
effects (reads / mutates / IO).  An interprocedural fixpoint
(:class:`ProjectFlowAnalysis`) iterates summaries to convergence using
:meth:`~repro.analysis.callgraph.CallGraph.callers_of` as its schedule,
then takes one reporting pass that materialises findings with full
source→sink traces.

Sanitizers are modeled, not pattern-matched: ``sorted(...)`` strips
order provenance, ``math.fsum(...)`` makes a float reduction
order-robust, and a seeded RNG never becomes a source in the first
place — so the "same path but mediated" twin of a finding analyses
clean instead of being special-cased.

Per-module results are cached under ``benchmarks/.cache/analysis/``
keyed by a content hash of the module, its project-import closure, and
the analyzer itself; a warm ``repro lint`` recomputes only what changed.

Everything here is stdlib-only and best-effort: unknown calls
conservatively merge their argument taints, unknown receivers fall back
to name heuristics, and nested ``def``\\ s are treated as opaque.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    CallTarget,
    FunctionInfo,
    build_callgraph,
)
from repro.analysis.core import ModuleInfo, Project, dotted_name

# NOTE: rules/__init__ imports determinism before the flow rules, so these
# tables are always initialised by the time this module loads.
from repro.analysis.rules.determinism import (  # noqa: E402
    _LISTING_CALLS,
    _LISTING_METHODS,
    _WALL_CLOCK,
    _WALL_CLOCK_ARGLESS,
    UnseededRandomRule,
)

#: Traces stop growing past this many hops (keeps recursion convergent).
MAX_TRACE_HOPS = 8

#: Taint kinds whose *order* is the hazard vs. whose *value* is.
ORDER_KINDS = frozenset({"fs-order", "set-order"})
VALUE_KINDS = frozenset({"time", "rng", "id"})

#: Shapes: structural facts about a value that matter to order-sensitive
#: consumers.  ``@ret``-suffixed variants mark shapes that crossed a call
#: boundary (came out of a helper) — the syntactic DET rules are blind to
#: those, so FLOAT001 only defers to DET007 on the bare ``parallel`` shape.
SHAPE_SET = "set"
SHAPE_LISTING = "listing"
SHAPE_PARALLEL = "parallel"

#: Substrings marking a call as identity-critical (cache keys, spec
#: hashes, digest construction) — same convention as DET008.
IDENTITY_MARKERS = ("digest", "hash", "key")

#: Call names that record telemetry / trace output (FLOW003 sinks).
TELEMETRY_SINKS = frozenset({
    "note_quota", "write_trace", "EpochRecord", "KernelEpochRecord",
    "TBMove", "EpochSample",
})

#: ``pool.map``-style producers: element order is the runner's business.
_PARALLEL_PRODUCERS = frozenset({"sweep", "map", "starmap"})
_UNORDERED_PRODUCERS = frozenset({"imap_unordered"})

_SANITIZER_DOC = ("wrap in sorted(...), accumulate with math.fsum(...), "
                  "or seed the source")


@dataclass(frozen=True)
class Tag:
    """One unit of provenance attached to an abstract value."""

    kind: str  # "time" | "rng" | "id" | "fs-order" | "set-order" | "param"
    desc: str
    path: str
    line: int
    trace: Tuple[str, ...] = ()
    param: int = -1  # >= 0: parameter provenance (index into params)

    @property
    def is_param(self) -> bool:
        return self.param >= 0

    def hop(self, text: str) -> "Tag":
        if len(self.trace) >= MAX_TRACE_HOPS:
            return self
        return Tag(self.kind, self.desc, self.path, self.line,
                   self.trace + (text,), self.param)

    def chain(self, sink: str) -> str:
        parts = [f"{self.desc} [{self.path}:{self.line}]"]
        parts.extend(self.trace)
        parts.append(sink)
        return " -> ".join(parts)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "desc": self.desc, "path": self.path,
                "line": self.line, "trace": list(self.trace),
                "param": self.param}

    @staticmethod
    def from_dict(payload: dict) -> "Tag":
        return Tag(payload["kind"], payload["desc"], payload["path"],
                   payload["line"], tuple(payload["trace"]),
                   payload["param"])


def normalize_tags(taints) -> frozenset:
    """One tag per (kind, desc, location, param): keep the shortest trace.

    Joins would otherwise retain one trace variant per call path, which
    explodes on diamond-shaped call graphs; any single witness trace is
    enough for a finding.
    """
    best: Dict[tuple, Tag] = {}
    for tag in taints:
        key = (tag.kind, tag.desc, tag.path, tag.line, tag.param)
        kept = best.get(key)
        if kept is None or (len(tag.trace), tag.trace) < (len(kept.trace),
                                                          kept.trace):
            best[key] = tag
    return frozenset(best.values())


@dataclass(frozen=True)
class AbsValue:
    """Abstract value: taint provenance plus structural shapes."""

    taints: frozenset = frozenset()
    shapes: frozenset = frozenset()

    def join(self, other: "AbsValue") -> "AbsValue":
        if not other.taints and not other.shapes:
            return self
        if not self.taints and not self.shapes:
            return other
        return AbsValue(normalize_tags(self.taints | other.taints),
                        self.shapes | other.shapes)

    @property
    def real_tags(self) -> List[Tag]:
        return sorted((tag for tag in self.taints if not tag.is_param),
                      key=lambda t: (t.path, t.line, t.kind, t.desc))

    @property
    def param_tags(self) -> List[Tag]:
        return sorted((tag for tag in self.taints if tag.is_param),
                      key=lambda t: t.param)


EMPTY = AbsValue()


def union_values(values: Sequence[AbsValue]) -> AbsValue:
    result = EMPTY
    for value in values:
        result = result.join(value)
    return result


@dataclass(frozen=True)
class ParamSink:
    """"Parameter ``param`` reaches sink ``sink`` inside this function"."""

    param: int
    rule: str
    sink: str
    path: str
    line: int
    trace: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"param": self.param, "rule": self.rule, "sink": self.sink,
                "path": self.path, "line": self.line,
                "trace": list(self.trace)}

    @staticmethod
    def from_dict(payload: dict) -> "ParamSink":
        return ParamSink(payload["param"], payload["rule"], payload["sink"],
                         payload["path"], payload["line"],
                         tuple(payload["trace"]))


@dataclass(frozen=True)
class FunctionFacts:
    """Interprocedural summary of one function."""

    #: Abstract return value; ``param``-kind tags mean "returns a value
    #: derived from parameter i".
    ret: AbsValue = EMPTY
    #: Sinks inside this function that its parameters flow into.
    param_sinks: frozenset = frozenset()
    #: Effects.
    reads: bool = False
    io: bool = False
    #: Mutation roots: ``"param:<name>"`` or ``"global"``.
    mutates: frozenset = frozenset()

    def to_dict(self) -> dict:
        return {
            "ret_taints": [tag.to_dict() for tag in sorted(
                self.ret.taints, key=lambda t: (t.path, t.line, t.kind,
                                                t.desc, t.param))],
            "ret_shapes": sorted(self.ret.shapes),
            "param_sinks": [sink.to_dict() for sink in sorted(
                self.param_sinks,
                key=lambda s: (s.param, s.rule, s.path, s.line))],
            "reads": self.reads, "io": self.io,
            "mutates": sorted(self.mutates),
        }

    @staticmethod
    def from_dict(payload: dict) -> "FunctionFacts":
        return FunctionFacts(
            ret=AbsValue(
                frozenset(Tag.from_dict(tag)
                          for tag in payload["ret_taints"]),
                frozenset(payload["ret_shapes"])),
            param_sinks=frozenset(ParamSink.from_dict(sink)
                                  for sink in payload["param_sinks"]),
            reads=payload["reads"], io=payload["io"],
            mutates=frozenset(payload["mutates"]))


EMPTY_FACTS = FunctionFacts()

#: Purity labels, most severe first.
PURE = "PURE"
READS_STATE = "READS_STATE"
MUTATES_ENGINE = "MUTATES_ENGINE"
IO = "IO"


def classify(facts: FunctionFacts) -> str:
    """Purity label for a function summary (IO > MUTATES > READS > PURE)."""
    if facts.io:
        return IO
    if facts.mutates:
        return MUTATES_ENGINE
    if facts.reads:
        return READS_STATE
    return PURE


# --------------------------------------------------------------------- CFG


class _Block:
    __slots__ = ("index", "steps", "succ")

    def __init__(self, index: int):
        self.index = index
        self.steps: List[tuple] = []
        self.succ: List["_Block"] = []


class _CFG:
    def __init__(self) -> None:
        self.blocks: List[_Block] = []
        self.entry = self.new()
        self.exit = self.new()

    def new(self) -> _Block:
        block = _Block(len(self.blocks))
        self.blocks.append(block)
        return block


def build_cfg(body: Sequence[ast.stmt]) -> _CFG:
    """A statement-level CFG good enough for taint joins.

    Branches join, loops iterate (the worklist runs the back edge to a
    fixpoint), ``try`` handlers conservatively join the states before and
    after the protected body.  Nested ``def``/``class`` are opaque.
    """
    cfg = _CFG()
    tail = _emit(cfg, body, cfg.entry, [])
    if tail is not None:
        tail.succ.append(cfg.exit)
    return cfg


def _emit(cfg: _CFG, stmts: Sequence[ast.stmt], current: Optional[_Block],
          loops: List[Tuple[_Block, _Block]]) -> Optional[_Block]:
    for stmt in stmts:
        if current is None:  # unreachable code after return/raise/break
            return None
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            current.steps.append(("stmt", stmt))
        elif isinstance(stmt, ast.Expr):
            current.steps.append(("expr", stmt.value, stmt))
        elif isinstance(stmt, ast.Return):
            current.steps.append(("return", stmt.value, stmt))
            current.succ.append(cfg.exit)
            current = None
        elif isinstance(stmt, ast.Raise):
            for child in (stmt.exc, stmt.cause):
                if child is not None:
                    current.steps.append(("expr", child, stmt))
            current.succ.append(cfg.exit)
            current = None
        elif isinstance(stmt, ast.Break):
            if loops:
                current.succ.append(loops[-1][1])
            current = None
        elif isinstance(stmt, ast.Continue):
            if loops:
                current.succ.append(loops[-1][0])
            current = None
        elif isinstance(stmt, ast.If):
            current.steps.append(("expr", stmt.test, stmt))
            then_entry = cfg.new()
            else_entry = cfg.new()
            current.succ.extend((then_entry, else_entry))
            then_exit = _emit(cfg, stmt.body, then_entry, loops)
            else_exit = _emit(cfg, stmt.orelse, else_entry, loops)
            current = cfg.new()
            for exit_block in (then_exit, else_exit):
                if exit_block is not None:
                    exit_block.succ.append(current)
            if then_exit is None and else_exit is None:
                current = None
        elif isinstance(stmt, ast.While):
            header = cfg.new()
            current.succ.append(header)
            header.steps.append(("expr", stmt.test, stmt))
            body_entry = cfg.new()
            after = cfg.new()
            header.succ.extend((body_entry, after))
            body_exit = _emit(cfg, stmt.body, body_entry,
                              loops + [(header, after)])
            if body_exit is not None:
                body_exit.succ.append(header)
            current = _emit(cfg, stmt.orelse, after, loops) if stmt.orelse \
                else after
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = cfg.new()
            current.succ.append(header)
            header.steps.append(("bind", stmt.target, stmt.iter, stmt))
            body_entry = cfg.new()
            after = cfg.new()
            header.succ.extend((body_entry, after))
            body_exit = _emit(cfg, stmt.body, body_entry,
                              loops + [(header, after)])
            if body_exit is not None:
                body_exit.succ.append(header)
            current = _emit(cfg, stmt.orelse, after, loops) if stmt.orelse \
                else after
        elif isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            before = current
            body_entry = cfg.new()
            before.succ.append(body_entry)
            body_exit = _emit(cfg, stmt.body, body_entry, loops)
            after = cfg.new()
            if stmt.orelse and body_exit is not None:
                orelse_exit = _emit(cfg, stmt.orelse, body_exit, loops)
                if orelse_exit is not None:
                    orelse_exit.succ.append(after)
            elif body_exit is not None:
                body_exit.succ.append(after)
            preds = [before] + ([body_exit] if body_exit is not None else [])
            for handler in stmt.handlers:
                handler_entry = cfg.new()
                for pred in preds:
                    pred.succ.append(handler_entry)
                handler_exit = _emit(cfg, handler.body, handler_entry, loops)
                if handler_exit is not None:
                    handler_exit.succ.append(after)
            current = after
            if stmt.finalbody:
                current = _emit(cfg, stmt.finalbody, after, loops)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                current.steps.append(("withitem", item, stmt))
            current = _emit(cfg, stmt.body, current, loops)
        elif isinstance(stmt, ast.Assert):
            current.steps.append(("expr", stmt.test, stmt))
            if stmt.msg is not None:
                current.steps.append(("expr", stmt.msg, stmt))
        elif stmt.__class__.__name__ == "Match":
            current.steps.append(("expr", stmt.subject, stmt))
            after = cfg.new()
            current.succ.append(after)
            for case in stmt.cases:
                case_entry = cfg.new()
                current.succ.append(case_entry)
                case_exit = _emit(cfg, case.body, case_entry, loops)
                if case_exit is not None:
                    case_exit.succ.append(after)
            current = after
        else:
            # Imports, Global/Nonlocal, Pass, Delete, nested def/class:
            # no dataflow contribution at this level.
            continue
    return current


# ------------------------------------------------------------ call helpers


def map_call_args(call: ast.Call, callee: FunctionInfo,
                  is_constructor: bool) -> Dict[int, ast.expr]:
    """Callee parameter index → caller argument expression.

    Bound method calls put the receiver expression at index 0;
    constructor calls leave index 0 (``self``) unmapped.  ``*args`` stops
    positional mapping; unknown keywords are skipped.
    """
    mapping: Dict[int, ast.expr] = {}
    offset = 0
    if is_constructor:
        offset = 1
    elif callee.binds_instance:
        offset = 1
        if isinstance(call.func, ast.Attribute):
            mapping[0] = call.func.value
    index = offset
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            break
        if index < len(callee.params):
            mapping[index] = arg
        index += 1
    for keyword in call.keywords:
        if keyword.arg is None:
            continue
        try:
            mapping[callee.params.index(keyword.arg)] = keyword.value
        except ValueError:
            continue
    return mapping


def order_tags_for(shapes: frozenset, path: str, line: int,
                   context: str) -> Set[Tag]:
    """Order-hazard tags implied by iterating / serialising ``shapes``."""
    tags: Set[Tag] = set()
    for shape in shapes:
        base = shape.split("@")[0]
        via = " returned by a helper" if shape.endswith("@ret") else ""
        if base == SHAPE_SET:
            tags.add(Tag("set-order",
                         f"{context} over an unordered set{via}",
                         path, line))
        elif base == SHAPE_LISTING:
            tags.add(Tag("fs-order",
                         f"{context} over a filesystem-order listing{via}",
                         path, line))
    return tags


def _shape_text(shapes: frozenset) -> str:
    names = sorted({shape.split("@")[0] for shape in shapes})
    translated = {SHAPE_SET: "an unordered set",
                  SHAPE_LISTING: "a filesystem-order listing",
                  SHAPE_PARALLEL: "parallel-worker results"}
    via = " (returned by a helper)" if any(
        shape.endswith("@ret") for shape in shapes) else ""
    return " / ".join(translated.get(name, name) for name in names) + via


# -------------------------------------------------------- taint analysis


class _FunctionAnalysis:
    """One function's worklist dataflow (also used for module top level)."""

    def __init__(self, engine: "ProjectFlowAnalysis", module: ModuleInfo,
                 body: Sequence[ast.stmt], params: Tuple[str, ...],
                 qname: str, info: Optional[FunctionInfo], line: int):
        self.engine = engine
        self.module = module
        self.body = body
        self.params = params
        self.qname = qname
        self.info = info
        self.line = line
        self.path = module.display
        self.cfg = engine.cfg_for(qname, body)
        self.local_types = engine.local_types(info) if info else {}
        self._ret = EMPTY
        self._param_sinks: Set[ParamSink] = set()
        self._findings: List[dict] = []
        self._report = False
        self._loop_shapes: Dict[int, frozenset] = {}
        self._float_names: Set[str] = set()

    # ------------------------------------------------------------ driver

    def run(self, report: bool = False
            ) -> Tuple[AbsValue, Set[ParamSink], List[dict]]:
        entry_env: Dict[str, AbsValue] = {}
        for index, name in enumerate(self.params):
            entry_env[name] = AbsValue(frozenset({Tag(
                "param", f"parameter {name!r}", self.path, self.line,
                param=index)}))
        envs: Dict[int, Dict[str, AbsValue]] = {self.cfg.entry.index:
                                                entry_env}
        if report:
            self._collect_float_names()
        # Converge block-entry environments.
        worklist = [self.cfg.entry]
        iterations = 0
        limit = 50 * max(1, len(self.cfg.blocks))
        while worklist and iterations < limit:
            iterations += 1
            block = worklist.pop()
            env = self._transfer(block, dict(envs.get(block.index, {})))
            for successor in block.succ:
                known = envs.get(successor.index)
                merged = self._join_env(known, env)
                if merged is not known:
                    envs[successor.index] = merged
                    worklist.append(successor)
        # Reporting pass over converged entries (blocks in creation order
        # so loop headers record shapes before their bodies are visited).
        self._ret = EMPTY
        self._param_sinks = set()
        self._findings = []
        self._report = report
        for block in self.cfg.blocks:
            if block.index not in envs and block is not self.cfg.entry:
                continue
            self._transfer(block, dict(envs.get(block.index, {})))
        self._report = False
        findings = self._dedupe(self._findings)
        return self._ret, set(self._param_sinks), findings

    @staticmethod
    def _join_env(known: Optional[Dict[str, AbsValue]],
                  env: Dict[str, AbsValue]
                  ) -> Optional[Dict[str, AbsValue]]:
        if known is None:
            return dict(env)
        merged = None
        for name, value in env.items():
            old = known.get(name, EMPTY)
            new = old.join(value)
            if new != old:
                if merged is None:
                    merged = dict(known)
                merged[name] = new
        return merged if merged is not None else known

    @staticmethod
    def _dedupe(findings: List[dict]) -> List[dict]:
        seen: Set[tuple] = set()
        unique = []
        for finding in findings:
            key = (finding["rule"], finding["line"], finding["message"])
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return sorted(unique, key=lambda f: (f["line"], f["rule"],
                                             f["message"]))

    # ---------------------------------------------------------- transfer

    def _transfer(self, block: _Block,
                  env: Dict[str, AbsValue]) -> Dict[str, AbsValue]:
        for step in block.steps:
            kind = step[0]
            if kind == "stmt":
                stmt = step[1]
                if isinstance(stmt, ast.Assign):
                    value = self._eval(stmt.value, env)
                    for target in stmt.targets:
                        self._bind(target, value, env)
                elif isinstance(stmt, ast.AnnAssign):
                    if stmt.value is not None:
                        self._bind(stmt.target,
                                   self._eval(stmt.value, env), env)
                else:  # AugAssign
                    self._aug_assign(stmt, env)
            elif kind == "expr":
                self._eval(step[1], env)
            elif kind == "bind":
                target, iterable, node = step[1], step[2], step[3]
                value = self._eval(iterable, env)
                self._loop_shapes[id(node)] = value.shapes
                element = AbsValue(frozenset(
                    set(value.taints)
                    | order_tags_for(value.shapes, self.path,
                                     iterable.lineno, "iteration")))
                self._bind(target, element, env)
            elif kind == "withitem":
                item = step[1]
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
            elif kind == "return":
                value = self._eval(step[1], env) if step[1] is not None \
                    else EMPTY
                self._ret = self._ret.join(value)
        return env

    def _bind(self, target: ast.AST, value: AbsValue,
              env: Dict[str, AbsValue]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = AbsValue(value.taints)
            for item in target.elts:
                self._bind(item, element, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, env)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)):
            # Field-sensitive only one level deep, within one function:
            # ``self._t0 = time.time()`` is visible to later reads here.
            env[f"{target.value.id}.{target.attr}"] = value

    def _aug_assign(self, stmt: ast.AugAssign,
                    env: Dict[str, AbsValue]) -> None:
        value = self._eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Name):
            env[target.id] = env.get(target.id, EMPTY).join(value)
            if self._report and isinstance(stmt.op, ast.Add):
                self._check_float_accumulation(stmt, target.id)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)):
            key = f"{target.value.id}.{target.attr}"
            env[key] = env.get(key, EMPTY).join(value)

    # ------------------------------------------------------------ eval

    def _eval(self, node: Optional[ast.AST],
              env: Dict[str, AbsValue]) -> AbsValue:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                field = env.get(f"{node.value.id}.{node.attr}")
                if field is not None:
                    return field
            return AbsValue(self._eval(node.value, env).taints)
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, env)
            index = self._eval(node.slice, env)
            return AbsValue(base.taints | index.taints)
        if isinstance(node, (ast.List, ast.Tuple)):
            return union_values([self._eval(e, env) for e in node.elts])
        if isinstance(node, ast.Set):
            inner = union_values([self._eval(e, env) for e in node.elts])
            return AbsValue(inner.taints, inner.shapes | {SHAPE_SET})
        if isinstance(node, ast.Dict):
            parts = [self._eval(k, env) for k in node.keys if k is not None]
            parts += [self._eval(v, env) for v in node.values]
            return AbsValue(union_values(parts).taints)
        if isinstance(node, ast.JoinedStr):
            return AbsValue(union_values(
                [self._eval(v, env) for v in node.values]).taints)
        if isinstance(node, ast.FormattedValue):
            value = self._eval(node.value, env)
            return AbsValue(value.taints | order_tags_for(
                value.shapes, self.path, node.lineno, "string formatting"))
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            shapes = frozenset()
            if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor,
                                    ast.Sub)):
                shapes = left.shapes | right.shapes
            return AbsValue(left.taints | right.taints, shapes)
        if isinstance(node, ast.BoolOp):
            return union_values([self._eval(v, env) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.Compare):
            parts = [self._eval(node.left, env)]
            parts += [self._eval(c, env) for c in node.comparators]
            return AbsValue(union_values(parts).taints)
        if isinstance(node, ast.IfExp):
            return self._eval(node.body, env).join(
                self._eval(node.orelse, env))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._ret = self._ret.join(self._eval(node.value, env))
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind(node.target, value, env)
            return value
        if isinstance(node, ast.Slice):
            return union_values([self._eval(part, env) for part in
                                 (node.lower, node.upper, node.step)
                                 if part is not None])
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        return EMPTY

    def _eval_comprehension(self, node, env: Dict[str, AbsValue]
                            ) -> AbsValue:
        inner = dict(env)
        order: Set[Tag] = set()
        shapes: Set[str] = set()
        for generator in node.generators:
            iterable = self._eval(generator.iter, inner)
            order |= order_tags_for(iterable.shapes, self.path,
                                    generator.iter.lineno, "comprehension")
            shapes |= set(iterable.shapes)
            element = AbsValue(frozenset(set(iterable.taints) | order))
            self._bind(generator.target, element, inner)
            for condition in generator.ifs:
                self._eval(condition, inner)
        if isinstance(node, ast.DictComp):
            produced = self._eval(node.key, inner).join(
                self._eval(node.value, inner))
            shapes = set()  # dict iteration order is insertion order
        else:
            produced = self._eval(node.elt, inner)
            if isinstance(node, ast.SetComp):
                shapes = {SHAPE_SET}
        return AbsValue(frozenset(set(produced.taints) | order),
                        frozenset(shapes))

    # ------------------------------------------------------------- calls

    def _resolve(self, call: ast.Call) -> CallTarget:
        return self.engine.resolve(self.module, call, self.info,
                                   self.local_types)

    def _eval_call(self, call: ast.Call,
                   env: Dict[str, AbsValue]) -> AbsValue:
        arg_values = [self._eval(arg, env) for arg in call.args]
        kw_values = [self._eval(kw.value, env) for kw in call.keywords]
        # Every argument is evaluated exactly once; interprocedural
        # substitution looks values up here instead of re-evaluating
        # (re-evaluation is exponential on nested call expressions).
        value_of: Dict[int, AbsValue] = {}
        for expr, value in zip(call.args, arg_values):
            value_of[id(expr)] = value
        for keyword, value in zip(call.keywords, kw_values):
            value_of[id(keyword.value)] = value
        if isinstance(call.func, ast.Attribute):
            receiver_expr = call.func.value
            value_of[id(receiver_expr)] = self._eval(receiver_expr, env)
        merged = union_values(arg_values + kw_values)
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        result = self._builtin_call(call, name, arg_values, merged, env)
        target = None
        if result is None:
            target = self._resolve(call)
            if target.kind == "external":
                result = self._external_call(call, target.qname,
                                             arg_values, merged)
            elif target.is_project:
                result = self._project_call(call, target, value_of, merged)
            else:
                result = self._opaque_call(call, name, arg_values, merged,
                                           value_of)
        self._check_sinks(call, name, arg_values, kw_values, env, target)
        return result

    def _builtin_call(self, call: ast.Call, name: str,
                      args: List[AbsValue], merged: AbsValue,
                      env: Dict[str, AbsValue]) -> Optional[AbsValue]:
        if not isinstance(call.func, ast.Name):
            return None
        first = args[0] if args else EMPTY
        if name == "sorted":
            return AbsValue(frozenset(
                tag for tag in first.taints if tag.kind not in ORDER_KINDS))
        if name == "id":
            return AbsValue(frozenset({Tag(
                "id", "id() (address-dependent)", self.path, call.lineno)}))
        if name in ("set", "frozenset"):
            return AbsValue(merged.taints, first.shapes | {SHAPE_SET})
        if name in ("list", "tuple", "reversed", "iter"):
            return first
        if name in ("enumerate", "zip"):
            return union_values(args)
        if name in ("str", "repr", "format"):
            return AbsValue(merged.taints | order_tags_for(
                merged.shapes, self.path, call.lineno, "string formatting"))
        if name in ("int", "float", "bool", "len", "abs", "round", "divmod",
                    "getattr", "min", "max", "sum", "any", "all"):
            return AbsValue(merged.taints)
        if name in ("dict",):
            return AbsValue(merged.taints)
        if name in ("print", "input", "open"):
            return EMPTY
        return None

    def _external_call(self, call: ast.Call, resolved: str,
                       args: List[AbsValue], merged: AbsValue) -> AbsValue:
        if resolved in _WALL_CLOCK or resolved in _WALL_CLOCK_ARGLESS:
            return AbsValue(frozenset({Tag(
                "time", f"wall-clock read {resolved}()", self.path,
                call.lineno)}))
        if UnseededRandomRule._diagnose(call, resolved) is not None:
            return AbsValue(frozenset({Tag(
                "rng", f"unseeded RNG {resolved}()", self.path,
                call.lineno)}))
        if resolved.startswith(("uuid.uuid", "secrets.")) \
                or resolved == "os.urandom":
            return AbsValue(frozenset({Tag(
                "rng", f"entropy source {resolved}()", self.path,
                call.lineno)}))
        if resolved in _LISTING_CALLS:
            return AbsValue(frozenset({Tag(
                "fs-order", f"filesystem-order listing {resolved}()",
                self.path, call.lineno)}), frozenset({SHAPE_LISTING}))
        if resolved == "math.fsum":
            first = args[0] if args else EMPTY
            return AbsValue(frozenset(
                tag for tag in first.taints if tag.kind not in ORDER_KINDS))
        return AbsValue(merged.taints)

    def _project_call(self, call: ast.Call, target: CallTarget,
                      value_of: Dict[int, AbsValue],
                      merged: AbsValue) -> AbsValue:
        callee = self.engine.callgraph.callee_body(target)
        if callee is None:
            return AbsValue(merged.taints)
        facts = self.engine.facts.get(callee.qname, EMPTY_FACTS)
        mapping = map_call_args(call, callee,
                                target.kind == "constructor")
        short = callee.qname.rsplit(".", 2)
        short = ".".join(short[-2:]) if callee.is_method else short[-1]
        site = f"[{self.path}:{call.lineno}]"
        taints: Set[Tag] = set()
        shapes: Set[str] = set()
        for tag in facts.ret.taints:
            if tag.is_param:
                expr = mapping.get(tag.param)
                if expr is None:
                    continue
                value = value_of.get(id(expr), EMPTY)
                hop = f"through {short}() {site}"
                for inner in value.taints:
                    moved = inner.hop(hop)
                    taints.add(Tag(moved.kind, moved.desc, moved.path,
                                   moved.line, (moved.trace
                                                + tag.trace)[:MAX_TRACE_HOPS],
                                   moved.param))
                shapes |= set(value.shapes)
            else:
                taints.add(tag.hop(f"returned via {short}() {site}"))
        for shape in facts.ret.shapes:
            shapes.add(shape if shape.endswith("@ret") else f"{shape}@ret")
        if target.kind == "constructor":
            # The instance carries whatever was stored into it.
            taints |= set(merged.taints)
        self._apply_param_sinks(call, facts, mapping, value_of, short,
                                site)
        return AbsValue(normalize_tags(taints), frozenset(shapes))

    def _apply_param_sinks(self, call: ast.Call, facts: FunctionFacts,
                           mapping: Dict[int, ast.expr],
                           value_of: Dict[int, AbsValue], short: str,
                           site: str) -> None:
        for sink in facts.param_sinks:
            expr = mapping.get(sink.param)
            if expr is None:
                continue
            value = value_of.get(id(expr), EMPTY)
            hop = f"passed to {short}() {site}"
            for tag in value.taints:
                if tag.is_param:
                    self._param_sinks.add(ParamSink(
                        tag.param, sink.rule, sink.sink, sink.path,
                        sink.line,
                        (tag.trace + (hop,) + sink.trace)[:MAX_TRACE_HOPS]))
                elif self._report:
                    tail = " -> ".join(
                        (hop,) + sink.trace
                        + (f"reaches {sink.sink} [{sink.path}:{sink.line}]",))
                    self._add_finding(sink.rule, call.lineno,
                                      tag.chain(tail))
            # Order shapes entering a sink-bearing helper: flag too.
            if self._report:
                for tag in order_tags_for(value.shapes, self.path,
                                          call.lineno, "serialisation"):
                    tail = " -> ".join(
                        (hop,) + sink.trace
                        + (f"reaches {sink.sink} [{sink.path}:{sink.line}]",))
                    self._add_finding(sink.rule, call.lineno,
                                      tag.chain(tail))

    def _opaque_call(self, call: ast.Call, name: str,
                     args: List[AbsValue], merged: AbsValue,
                     value_of: Dict[int, AbsValue]) -> AbsValue:
        receiver = EMPTY
        if isinstance(call.func, ast.Attribute):
            receiver = value_of.get(id(call.func.value), EMPTY)
        if name in _LISTING_METHODS:
            return AbsValue(frozenset({Tag(
                "fs-order", f"filesystem-order listing .{name}()",
                self.path, call.lineno)}), frozenset({SHAPE_LISTING}))
        if name in _PARALLEL_PRODUCERS:
            return AbsValue(merged.taints | receiver.taints,
                            frozenset({SHAPE_PARALLEL}))
        if name in _UNORDERED_PRODUCERS:
            return AbsValue(merged.taints | receiver.taints,
                            frozenset({SHAPE_SET}))
        if name == "join" and isinstance(call.func, ast.Attribute):
            first = args[0] if args else EMPTY
            taints = set(merged.taints) | set(receiver.taints)
            taints |= order_tags_for(first.shapes, self.path, call.lineno,
                                     "str.join")
            return AbsValue(frozenset(taints))
        if name == "format":
            return AbsValue(merged.taints | receiver.taints
                            | order_tags_for(merged.shapes, self.path,
                                             call.lineno,
                                             "string formatting"))
        # An unknown method is assumed to return a transformation of its
        # receiver and arguments, so shapes survive too — otherwise a
        # ``.encode()`` between a helper and a digest would launder
        # unordered provenance.
        return AbsValue(merged.taints | receiver.taints,
                        merged.shapes | receiver.shapes)

    # ------------------------------------------------------------- sinks

    def _check_sinks(self, call: ast.Call, name: str,
                     args: List[AbsValue], kw_values: List[AbsValue],
                     env: Dict[str, AbsValue],
                     target: Optional[CallTarget]) -> None:
        values = list(zip(call.args, args)) + \
            list(zip([kw.value for kw in call.keywords], kw_values))
        if target is not None:
            self._check_identity_sink(call, name, values, target)
            self._check_telemetry_sink(call, name, values, target)
        self._check_sort_key(call, name, env)
        if self._report and name == "sum" and isinstance(call.func,
                                                         ast.Name):
            self._check_float_sum(call, args)

    def _sink_hit(self, rule: str, sink: str, call: ast.Call,
                  values: List[Tuple[ast.expr, AbsValue]],
                  verdict: str) -> None:
        for expr, value in values:
            tags = set(tag for tag in value.taints if not tag.is_param)
            tags |= order_tags_for(value.shapes, self.path, expr.lineno,
                                   "serialisation")
            for tag in sorted(tags, key=lambda t: (t.path, t.line, t.kind,
                                                   t.desc)):
                if self._report:
                    tail = f"{verdict} {sink} [{self.path}:{call.lineno}]"
                    self._add_finding(rule, call.lineno, tag.chain(tail))
            for tag in value.param_tags:
                self._param_sinks.add(ParamSink(
                    tag.param, rule, sink, self.path, call.lineno,
                    tag.trace))

    def _check_identity_sink(self, call: ast.Call, name: str,
                             values, target: CallTarget) -> None:
        if not values:
            return
        is_sink = False
        if target.kind == "external" and target.qname.startswith("hashlib."):
            is_sink = True
        lowered = name.lower()
        if any(marker in lowered for marker in IDENTITY_MARKERS):
            is_sink = True
        if (name == "update" and isinstance(call.func, ast.Attribute)):
            receiver = dotted_name(call.func.value) or ""
            lowered_receiver = receiver.lower()
            if any(marker in lowered_receiver
                   for marker in ("digest", "hash", "sha", "md5", "hasher")):
                is_sink = True
            else:
                return
        if not is_sink or target.is_project:
            # Project-defined digest helpers are handled through their
            # own bodies (hashlib inside them is the real sink).
            return
        self._sink_hit("FLOW001", f"identity sink {name}()", call, values,
                       "feeds")

    def _check_telemetry_sink(self, call: ast.Call, name: str,
                              values, target: CallTarget) -> None:
        if not values:
            return
        is_sink = name in TELEMETRY_SINKS
        if not is_sink:
            is_sink = (target.kind == "constructor"
                       and target.qname.rsplit(".", 1)[-1].endswith(
                           "Record"))
        if is_sink:
            self._sink_hit("FLOW003", f"telemetry record {name}()", call,
                           values, "recorded by")

    def _check_sort_key(self, call: ast.Call, name: str,
                        env: Dict[str, AbsValue]) -> None:
        if name not in ("sorted", "min", "max", "sort"):
            return
        key_expr = next((kw.value for kw in call.keywords
                         if kw.arg == "key"), None)
        if key_expr is None:
            return
        sink = f"sort key of {name}()"
        if isinstance(key_expr, ast.Lambda):
            inner = dict(env)
            for arg in key_expr.args.args:
                inner[arg.arg] = EMPTY
            value = self._eval(key_expr.body, inner)
        elif dotted_name(key_expr) is not None and not isinstance(
                key_expr, ast.Name):
            value = EMPTY
        else:
            # A named function used as key: its summary's fresh sources
            # make the ordering nondeterministic.
            value = EMPTY
            if isinstance(key_expr, ast.Name):
                scope = self.engine.callgraph.module_scope.get(
                    self.module.name, {})
                qname = scope.get(key_expr.id)
                if qname is not None:
                    facts = self.engine.facts.get(qname, EMPTY_FACTS)
                    value = AbsValue(frozenset(
                        tag for tag in facts.ret.taints
                        if not tag.is_param))
        self._sink_hit("FLOW002", sink, call,
                       [(key_expr, value)], "orders via")

    # ----------------------------------------------------------- FLOAT001

    def _collect_float_names(self) -> None:
        for stmt in ast.walk(ast.Module(body=list(self.body),
                                        type_ignores=[])):
            value = None
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                value = stmt.value
                annotation = dotted_name(stmt.annotation)
                if annotation == "float" and isinstance(target, ast.Name):
                    self._float_names.add(target.id)
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Constant) and isinstance(
                    value.value, float):
                self._float_names.add(target.id)
            elif (isinstance(value, ast.Call)
                  and isinstance(value.func, ast.Name)
                  and value.func.id == "float"):
                self._float_names.add(target.id)

    def _check_float_accumulation(self, stmt: ast.AugAssign,
                                  name: str) -> None:
        if name not in self._float_names:
            return
        for ancestor in self.module.ancestors(stmt):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                break
            if not isinstance(ancestor, (ast.For, ast.AsyncFor)):
                continue
            shapes = self._loop_shapes.get(id(ancestor), frozenset())
            if shapes:
                self._add_finding(
                    "FLOAT001", stmt.lineno,
                    f"order-sensitive float accumulation: {name!r} is "
                    f"summed with += over {_shape_text(shapes)}; float "
                    "addition is not associative — use math.fsum(...) "
                    "over a sorted(...) iterable")
                return

    def _check_float_sum(self, call: ast.Call,
                         args: List[AbsValue]) -> None:
        if not args:
            return
        shapes = set(args[0].shapes)
        # The syntactic DET007 already owns the directly-visible
        # parallel-results case; FLOAT001 covers everything it cannot
        # see (unordered inputs, and shapes that crossed a helper).
        shapes.discard(SHAPE_PARALLEL)
        order_taints = [tag for tag in args[0].taints
                        if tag.kind in ORDER_KINDS]
        if shapes:
            self._add_finding(
                "FLOAT001", call.lineno,
                f"sum() over {_shape_text(frozenset(shapes))}: float "
                "addition is order-sensitive — use math.fsum(...) or "
                "sort first")
        elif order_taints:
            tag = order_taints[0]
            self._add_finding(
                "FLOAT001", call.lineno,
                tag.chain(f"summed by sum() [{self.path}:{call.lineno}] "
                          "— use math.fsum(...) or sort first"))

    def _add_finding(self, rule: str, line: int, message: str) -> None:
        self._findings.append({"rule": rule, "line": line,
                               "message": message})


# ----------------------------------------------------------------- effects


#: Method names that (by convention) mutate their receiver when the
#: receiver cannot be resolved to a project class.
_MUTATOR_EXACT = frozenset({
    "append", "appendleft", "add", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "sort", "reverse", "discard",
    "setdefault", "put", "send", "requeue",
})
_MUTATOR_PREFIXES = (
    "set_", "add_", "mark_", "note_", "record_", "request_", "register",
    "release_", "push_", "flush_", "wake_", "claim_", "enqueue_",
    "reset_", "inc_", "dec_", "finish_",
)

#: Method names that are IO no matter the receiver.
_IO_METHODS = frozenset({
    "write", "writelines", "read", "readline", "readlines", "flush",
    "close", "mkdir", "rmdir", "unlink", "touch", "rename", "replace",
    "write_text", "read_text", "write_bytes", "read_bytes", "commit",
    "execute", "executemany", "executescript", "fetchone", "fetchall",
    "fetchmany", "connect", "communicate",
})

_IO_EXTERNAL_PREFIXES = (
    "shutil.", "subprocess.", "sqlite3.", "socket.", "tempfile.",
    "urllib.", "http.",
)

_OWNING_BUILTINS = frozenset({
    "list", "dict", "set", "tuple", "frozenset", "sorted", "str", "int",
    "float", "bool", "bytes", "bytearray", "enumerate", "zip", "reversed",
    "min", "max", "sum", "len", "abs", "round", "range", "map", "filter",
    "repr", "format", "divmod", "iter", "next", "vars", "type",
})


class _EffectWalker:
    """Flow-insensitive effect inference for one function."""

    def __init__(self, engine: "ProjectFlowAnalysis", info: FunctionInfo):
        self.engine = engine
        self.info = info
        self.params = set(info.params)
        self.globals_declared: Set[str] = set()
        self.roots: Dict[str, Set[str]] = {}

    def run(self) -> Tuple[bool, bool, frozenset]:
        body = self.info.node.body
        for node in self._walk(body):
            if isinstance(node, ast.Global):
                self.globals_declared.update(node.names)
        self._solve_roots(body)
        reads = False
        io = False
        mutates: Set[str] = set()
        for node in self._walk(body):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                 ast.Delete)):
                targets = getattr(node, "targets", None) or \
                    [getattr(node, "target", None)]
                for target in targets:
                    if target is None:
                        continue
                    mutates |= self._target_mutations(target)
            if isinstance(node, ast.Call):
                call_reads, call_io, call_mutates = self._call_effects(node)
                reads = reads or call_reads
                io = io or call_io
                mutates |= call_mutates
            if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load):
                if self._expr_roots(node.value) & self._state_roots():
                    reads = True
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load):
                if node.id in self.globals_declared:
                    reads = True
        return reads, io, frozenset(mutates)

    def _walk(self, body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        """Walk the function body without descending into nested defs."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                stack.append(child)

    def _state_roots(self) -> Set[str]:
        return {f"param:{name}" for name in self.params} | {"global"}

    def _solve_roots(self, body: Sequence[ast.stmt]) -> None:
        assignments: List[Tuple[str, ast.AST]] = []
        for node in self._walk(body):
            if isinstance(node, ast.Assign):
                # Only plain name (re)bindings alias their value; storing
                # into ``container[k]`` / ``obj.attr`` does not make the
                # container alias what was stored.
                for target in node.targets:
                    for name_node in self._flat_names(target):
                        assignments.append((name_node, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    assignments.append((node.target.id, node.value))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in self._flat_names(node.target):
                    assignments.append((name_node, node.iter))
            elif isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name):
                assignments.append((node.target.id, node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        assignments.append((item.optional_vars.id,
                                            item.context_expr))
        for _ in range(10):
            changed = False
            for name, value in assignments:
                roots = self._expr_roots(value)
                known = self.roots.setdefault(name, set())
                if not roots <= known:
                    known |= roots
                    changed = True
            if not changed:
                break

    @staticmethod
    def _flat_names(target: ast.AST) -> List[str]:
        names: List[str] = []
        stack: List[ast.AST] = [target]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Name):
                names.append(node.id)
            elif isinstance(node, (ast.Tuple, ast.List)):
                stack.extend(node.elts)
            elif isinstance(node, ast.Starred):
                stack.append(node.value)
        return names

    def _expr_roots(self, node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Name):
            if node.id in self.params:
                return {f"param:{node.id}"}
            if node.id in self.globals_declared:
                return {"global"}
            if node.id in self.roots:
                return set(self.roots[node.id])
            scope = self.engine.callgraph.module_scope.get(
                self.info.module.name, {})
            if node.id in scope or node.id in _OWNING_BUILTINS:
                return {"local"}
            if node.id in self.info.module.aliases:
                return {"global"}
            # Unknown bare name: module-level state, conservatively.
            return {"global"}
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self._expr_roots(node.value)
        if isinstance(node, ast.Call):
            return {"local"}
        if isinstance(node, (ast.BoolOp,)):
            roots: Set[str] = set()
            for value in node.values:
                roots |= self._expr_roots(value)
            return roots
        if isinstance(node, ast.IfExp):
            return self._expr_roots(node.body) | self._expr_roots(
                node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self._expr_roots(node.value)
        return {"local"}

    def _target_mutations(self, target: ast.AST) -> Set[str]:
        mutations: Set[str] = set()
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                mutations |= self._target_mutations(element)
            return mutations
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                mutations.add("global")
            return mutations
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            for root in self._expr_roots(target.value):
                if root != "local":
                    mutations.add(root)
        return mutations

    def _call_effects(self, call: ast.Call
                      ) -> Tuple[bool, bool, Set[str]]:
        reads = False
        io = False
        mutates: Set[str] = set()
        target = self.engine.resolve(
            self.info.module, call, self.info,
            self.engine.local_types(self.info))
        name = call.func.attr if isinstance(call.func, ast.Attribute) \
            else (call.func.id if isinstance(call.func, ast.Name) else "")
        if target.is_project:
            callee = self.engine.callgraph.callee_body(target)
            if callee is not None:
                facts = self.engine.facts.get(callee.qname, EMPTY_FACTS)
                reads = facts.reads
                io = facts.io
                mapping = map_call_args(call, callee,
                                        target.kind == "constructor")
                for token in facts.mutates:
                    if token == "global":
                        mutates.add("global")
                        continue
                    param_name = token.split(":", 1)[1]
                    try:
                        index = callee.params.index(param_name)
                    except ValueError:
                        continue
                    expr = mapping.get(index)
                    if expr is None:
                        continue
                    for root in self._expr_roots(expr):
                        if root != "local":
                            mutates.add(root)
            return reads, io, mutates
        if target.kind == "external":
            qname = target.qname
            if qname.startswith("os.") and not qname.startswith("os.path."):
                io = True
            elif qname.startswith(_IO_EXTERNAL_PREFIXES):
                io = True
            elif qname in ("json.dump",):
                io = True
            return reads, io, mutates
        if name in ("print", "input", "open", "breakpoint"):
            io = True
            return reads, io, mutates
        if isinstance(call.func, ast.Attribute):
            if name in _IO_METHODS:
                io = True
            if name in _MUTATOR_EXACT or name.startswith(_MUTATOR_PREFIXES):
                for root in self._expr_roots(call.func.value):
                    if root != "local":
                        mutates.add(root)
        return reads, io, mutates


# ----------------------------------------------------------- project engine


def _analysis_salt() -> str:
    """Content hash of the analyzer itself: any rule/engine edit
    invalidates every cached module summary."""
    package_root = pathlib.Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(source.name.encode())
        try:
            digest.update(source.read_bytes())
        except OSError:
            continue
    return digest.hexdigest()


_SALT_CACHE: List[str] = []


def analysis_salt() -> str:
    if not _SALT_CACHE:
        _SALT_CACHE.append(_analysis_salt())
    return _SALT_CACHE[0]


class ProjectFlowAnalysis:
    """Summaries + flow findings for one whole project.

    Construction runs the interprocedural fixpoint (reusing per-module
    cached results when ``cache_dir`` is given) and then a reporting
    pass.  ``facts`` maps function qualified names to
    :class:`FunctionFacts`; ``module_findings`` maps module display paths
    to raw finding dicts the FLOW/FLOAT rules re-emit.
    """

    def __init__(self, project: Project,
                 cache_dir: Optional[pathlib.Path] = None):
        self.project = project
        self.callgraph = build_callgraph(project)
        self.facts: Dict[str, FunctionFacts] = {}
        self.module_findings: Dict[str, List[dict]] = {}
        self.stats = {"modules": len(project.modules), "computed": 0,
                      "cached": 0}
        self._cfgs: Dict[str, _CFG] = {}
        self._types: Dict[str, Dict[str, str]] = {}
        self._resolved: Dict[int, CallTarget] = {}
        self._run(pathlib.Path(cache_dir) if cache_dir else None)

    # ------------------------------------------------------------ helpers

    def resolve(self, module: ModuleInfo, call: ast.Call,
                info: Optional[FunctionInfo],
                local_types: Mapping[str, str]) -> CallTarget:
        """Memoised call resolution (a call node resolves once; the
        fixpoint revisits functions many times)."""
        target = self._resolved.get(id(call))
        if target is None:
            target = self.callgraph.resolve_call(
                module, call, enclosing=info, local_types=local_types)
            self._resolved[id(call)] = target
        return target

    def cfg_for(self, qname: str, body: Sequence[ast.stmt]) -> _CFG:
        cfg = self._cfgs.get(qname)
        if cfg is None:
            cfg = build_cfg(body)
            self._cfgs[qname] = cfg
        return cfg

    def local_types(self, info: Optional[FunctionInfo]) -> Dict[str, str]:
        if info is None:
            return {}
        types = self._types.get(info.qname)
        if types is None:
            types = self.callgraph.local_types_for(info)
            self._types[info.qname] = types
        return types

    def _analysis_for(self, info: FunctionInfo) -> _FunctionAnalysis:
        return _FunctionAnalysis(
            self, info.module, info.node.body, info.params, info.qname,
            info, info.line)

    def _module_level(self, module: ModuleInfo) -> _FunctionAnalysis:
        return _FunctionAnalysis(
            self, module, module.tree.body, (),
            f"{module.name}.<module>", None, 1)

    # -------------------------------------------------------------- keys

    def _module_keys(self) -> Dict[str, str]:
        """Content key per module: own source + project import closure."""
        source_hash = {
            module.display: hashlib.sha256(
                module.source.encode()).hexdigest()
            for module in self.project.modules}
        direct: Dict[str, Set[str]] = {}
        for module in self.project.modules:
            deps: Set[str] = set()
            for dotted, _line in module.imported_modules():
                dep = self.project.module(dotted)
                if dep is None:
                    # ``from pkg.mod import name`` reports pkg.mod.name
                    # for some spellings; try the parent too.
                    dep = self.project.module(dotted.rpartition(".")[0])
                if dep is not None and dep.display != module.display:
                    deps.add(dep.display)
            direct[module.display] = deps
        # Transitive closure by iterated union: a recursive walk with a
        # visited guard would truncate closures at import-cycle
        # back-edges depending on traversal order, making the cache key
        # vary with per-process set iteration order.
        closures: Dict[str, Set[str]] = {
            display: set(deps) for display, deps in direct.items()}
        changed = True
        while changed:
            changed = False
            for deps in closures.values():
                extra: Set[str] = set()
                for dep in sorted(deps):
                    extra |= closures.get(dep, set())
                if not extra <= deps:
                    deps |= extra
                    changed = True

        def closure(display: str) -> Set[str]:
            return closures.get(display, set())

        salt = analysis_salt()
        keys: Dict[str, str] = {}
        for module in self.project.modules:
            digest = hashlib.sha256()
            digest.update(salt.encode())
            digest.update(source_hash[module.display].encode())
            for dep in sorted(closure(module.display)):
                digest.update(dep.encode())
                digest.update(source_hash.get(dep, "").encode())
            keys[module.display] = digest.hexdigest()
        return keys

    @staticmethod
    def _cache_file(cache_dir: pathlib.Path, display: str) -> pathlib.Path:
        stem = hashlib.sha256(display.encode()).hexdigest()[:24]
        return cache_dir / f"{stem}.json"

    # --------------------------------------------------------------- run

    def _run(self, cache_dir: Optional[pathlib.Path]) -> None:
        keys = self._module_keys()
        cached_displays: Set[str] = set()
        if cache_dir is not None:
            for module in self.project.modules:
                payload = self._load_cache(cache_dir, module, keys)
                if payload is None:
                    continue
                cached_displays.add(module.display)
                self.module_findings[module.display] = payload["findings"]
                for qname, facts in payload["facts"].items():
                    self.facts[qname] = FunctionFacts.from_dict(facts)
        fresh = [module for module in self.project.modules
                 if module.display not in cached_displays]
        self.stats["cached"] = len(cached_displays)
        self.stats["computed"] = len(fresh)
        fresh_functions = [
            info for module in fresh
            for info in self.callgraph.functions_of_module(module.name)
            if info.module.display == module.display]
        for info in fresh_functions:
            self.facts.setdefault(info.qname, EMPTY_FACTS)
        recompute = {info.qname for info in fresh_functions}
        # Interprocedural fixpoint over the fresh set.
        pending = list(reversed(fresh_functions))
        queued = {info.qname for info in pending}
        by_qname = {info.qname: info for info in fresh_functions}
        while pending:
            info = pending.pop()
            queued.discard(info.qname)
            facts = self._summarise(info)
            if facts != self.facts.get(info.qname):
                self.facts[info.qname] = facts
                for caller in self.callgraph.callers_of(info.qname):
                    if caller in recompute and caller not in queued:
                        queued.add(caller)
                        pending.append(by_qname[caller])
        # Reporting pass: findings with converged summaries.
        for module in fresh:
            findings: List[dict] = []
            for info in self.callgraph.functions_of_module(module.name):
                if info.module.display != module.display:
                    continue
                _ret, _sinks, raw = self._analysis_for(info).run(
                    report=True)
                findings.extend(raw)
            _ret, _sinks, raw = self._module_level(module).run(report=True)
            findings.extend(raw)
            findings = _FunctionAnalysis._dedupe(findings)
            self.module_findings[module.display] = findings
            if cache_dir is not None:
                self._store_cache(cache_dir, module, keys[module.display])

    def _summarise(self, info: FunctionInfo) -> FunctionFacts:
        ret, sinks, _ = self._analysis_for(info).run(report=False)
        reads, io, mutates = _EffectWalker(self, info).run()
        return FunctionFacts(ret=ret, param_sinks=frozenset(sinks),
                             reads=reads, io=io, mutates=mutates)

    def _load_cache(self, cache_dir: pathlib.Path, module: ModuleInfo,
                    keys: Dict[str, str]) -> Optional[dict]:
        path = self._cache_file(cache_dir, module.display)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("key") != keys.get(module.display):
            return None
        if payload.get("display") != module.display:
            return None
        return payload

    def _store_cache(self, cache_dir: pathlib.Path, module: ModuleInfo,
                     key: str) -> None:
        facts = {}
        for info in self.callgraph.functions_of_module(module.name):
            if info.module.display != module.display:
                continue
            facts[info.qname] = self.facts.get(
                info.qname, EMPTY_FACTS).to_dict()
        payload = {"version": 1, "display": module.display, "key": key,
                   "facts": facts,
                   "findings": self.module_findings.get(module.display,
                                                        [])}
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._cache_file(cache_dir, module.display)
            path.write_text(json.dumps(payload, sort_keys=True))
        except OSError:
            pass

    # ----------------------------------------------------------- queries

    def findings_for(self, rule_id: str
                     ) -> Iterator[Tuple[ModuleInfo, int, str]]:
        for display in sorted(self.module_findings):
            module = self.project.by_display.get(display)
            if module is None:
                continue
            for finding in self.module_findings[display]:
                if finding["rule"] == rule_id:
                    yield module, finding["line"], finding["message"]

    def facts_for(self, qname: str) -> FunctionFacts:
        return self.facts.get(qname, EMPTY_FACTS)

    def classification(self, qname: str) -> str:
        return classify(self.facts_for(qname))


def project_flow(project: Project) -> ProjectFlowAnalysis:
    """The (memoised) flow analysis for a project.

    The driver may set ``project.flow_cache_dir`` before rules run; all
    flow-backed rules then share one engine run per project.
    """
    analysis = getattr(project, "_flow_analysis", None)
    if analysis is None:
        cache_dir = getattr(project, "flow_cache_dir", None)
        analysis = ProjectFlowAnalysis(project, cache_dir=cache_dir)
        project._flow_analysis = analysis
    return analysis
