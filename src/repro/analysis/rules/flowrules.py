"""Flow-sensitive determinism rules (FLOW001-003, FLOAT001).

These are the interprocedural counterparts of the syntactic DET rules:
instead of pattern-matching one expression, they re-emit findings from
the project-wide taint analysis in :mod:`repro.analysis.flow`, so one
helper function of indirection between ``time.time()`` and a cache-key
digest no longer hides the bug.  Every finding message carries the full
source→sink trace (``repro lint --explain FLOW001`` shows an example).

The rules themselves are thin: the engine runs once per project (shared
across all four rules and the EFFECT rules via
:func:`~repro.analysis.flow.project_flow`) and each rule yields the raw
findings recorded under its id.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import ERROR, WARNING, Finding, Project, Rule, register


class _ProjectFlowRule(Rule):
    """Base: re-emit the flow engine's findings for this rule id."""

    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        # Imported here, not at module level: flow.py reuses the
        # determinism rule tables, so a module-level import would cycle
        # through the rules package back into a half-initialized flow.
        from repro.analysis.flow import project_flow
        flow = project_flow(project)
        for module, line, message in flow.findings_for(self.id):
            yield self.finding(module, line, message)


@register
class TaintedIdentityRule(_ProjectFlowRule):
    id = "FLOW001"
    severity = ERROR
    summary = ("nondeterministic value reaches an identity sink "
               "(digest/hash/cache-key construction), tracked through "
               "assignments, f-strings, returns and call summaries")
    explain = """\
Cache keys, spec hashes and experiment ids must be pure functions of
the experiment content: the persistent case cache, the SQLite
experiment store and sweep resume all assume that re-deriving the key
reproduces it bit-identically.  DET001/DET002/DET008 catch a wall-clock
or RNG read *syntactically at* the sink; FLOW001 follows the value
through locals, f-strings, returns and helper calls, so indirection no
longer hides the bug.

Sources: wall-clock reads, unseeded RNGs, ``id()``, filesystem-order
listings, set-order iteration.  Sinks: ``hashlib.*`` calls, calls whose
name contains ``digest``/``hash``/``key``, and ``.update(...)`` on a
digest-named object.  Sanitizers end the taint: ``sorted(...)`` strips
order provenance, a seeded RNG is never a source.

Example finding (two helpers between source and sink):

    wall-clock read time.time() [pipeline.py:6]
      -> returned via stamp() [pipeline.py:12]
      -> through label() [pipeline.py:12]
      -> passed to case_key() [pipeline.py:18]
      -> reaches identity sink sha256() [pipeline.py:15]

Fix by deriving the value from run *content* (spec fields, seeds,
sorted inputs), not from when/where the run happens."""


@register
class TaintedSortKeyRule(_ProjectFlowRule):
    id = "FLOW002"
    severity = ERROR
    summary = ("nondeterministic sort key: the key= of "
               "sorted/sort/min/max evaluates a tainted value, so the "
               "resulting order varies between runs")
    explain = """\
Result ordering feeds figures, sweep grids and the experiment store, so
an ordering decided by a nondeterministic key silently reorders results
between identical runs.  DET004 catches the literal ``key=id``; FLOW002
evaluates the key expression — a lambda body or a named helper's return
summary — under the taint environment, so ``key=lambda k: id(k)`` or a
helper that reads the clock is caught too.

Example finding:

    id() (address-dependent) [order.py:12]
      -> orders via sort key of sorted() [order.py:12]

Fix by keying on stable content (names, indices, spec fields)."""


@register
class TaintedTelemetryRule(_ProjectFlowRule):
    id = "FLOW003"
    severity = ERROR
    summary = ("nondeterministic value recorded into telemetry "
               "(EpochRecord fields, note_quota, write_trace): traces "
               "must replay bit-identically")
    explain = """\
Telemetry is part of the reproduction's observable output: the JSONL
exporter promises that two identical runs produce byte-identical
traces, and the differential tests compare records across engine
cores.  A wall-clock or RNG-derived value stored into an epoch record
breaks that silently — the schema still validates.

Sinks: telemetry record constructors (``EpochRecord``,
``KernelEpochRecord``, ``TBMove``, any project ``*Record`` class),
``note_quota`` and ``write_trace``.

Example finding:

    wall-clock read time.time() [collector.py:15]
      -> recorded by telemetry record note_quota() [collector.py:15]

Fix by recording simulation-derived quantities (cycles, epoch indices,
counters); wall-clock provenance belongs in the meta header, keyed as
operator information, never in per-epoch records."""


@register
class FloatAccumulationRule(_ProjectFlowRule):
    id = "FLOAT001"
    severity = WARNING
    summary = ("order-sensitive float accumulation (+=/sum) over an "
               "unordered or helper-produced parallel iterable: float "
               "addition is not associative — use math.fsum or sort "
               "first")
    explain = """\
Float addition is not associative: summing the same values in a
different order changes the last few bits, which is exactly the kind
of drift the record-identity tests exist to catch.  DET007 flags the
directly visible ``sum(pool.map(...))``; FLOAT001 uses the dataflow
shapes, so it also catches

* ``+=`` accumulation of a float inside a loop over a set or a
  filesystem listing,
* ``sum(...)`` over an unordered iterable, including one returned by a
  helper function (where the syntactic rule is blind).

Example finding:

    order-sensitive float accumulation: 'total' is summed with += over
    an unordered set; float addition is not associative — use
    math.fsum(...) over a sorted(...) iterable

``math.fsum`` is correctly rounded and therefore order-robust; sorting
the iterable first pins the order instead.  Both are modeled as
sanitizers, so the mediated twin of a finding analyses clean."""
