"""Layering rules: declarative import contracts + the PolicyContext seam.

PR 3 split the simulator into an engine that owns the machine and policies
that own decisions, talking only through
:class:`repro.sim.policy.PolicyContext`.  ``tests/test_layering.py``
enforced one edge of that with a hand-rolled AST walk; these rules are the
general form:

* ``LAY001`` — :data:`IMPORT_CONTRACTS`, a table of (governed packages,
  forbidden imports, rationale).  Adding an architectural edge is one new
  table row, not a new test;
* ``LAY002`` — policy code must never *assign* attributes on its
  ``PolicyContext`` (the view is an observation surface, not a mailbox);
* ``LAY003`` — policy code must never reach into underscore-private
  context internals (``ctx._engine`` would reopen the hole PR 3 closed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import (
    ERROR,
    Finding,
    ModuleInfo,
    Rule,
    attribute_base,
    register,
)


@dataclass(frozen=True)
class ImportContract:
    """One architectural edge: modules under ``packages`` must not import
    anything under ``forbidden``."""

    name: str
    packages: Tuple[str, ...]
    forbidden: Tuple[str, ...]
    rationale: str


IMPORT_CONTRACTS: Tuple[ImportContract, ...] = (
    ImportContract(
        name="policy-engine-independence",
        packages=("repro.qos", "repro.baselines", "repro.sharing",
                  "repro.controllers", "repro.trace", "repro.sim.policy"),
        forbidden=("repro.sim.engine",),
        rationale=("policies, quota controllers and trace tooling observe "
                   "and actuate only through "
                   "repro.sim.policy.PolicyContext; the engine imports "
                   "them, never the reverse"),
    ),
    ImportContract(
        name="engine-harness-independence",
        packages=("repro.sim",),
        forbidden=("repro.harness", "repro.osched", "repro.trace",
                   "repro.serve"),
        rationale=("the simulator core must stay runnable without the "
                   "experiment harness, cluster scheduler, exporters or "
                   "the serving layer (serve drives the engine through "
                   "launch_at/on_kernel_retired, never the reverse)"),
    ),
    ImportContract(
        name="serve-layering",
        packages=("repro.serve",),
        forbidden=("repro.analysis", "repro.harness.parallel",
                   "repro.harness.experiments"),
        rationale=("the serving layer sits inside the code-salt closure "
                   "(serve results are cached): it may build on the "
                   "simulator, qos machinery, osched predictor and the "
                   "salted harness modules (runner/cache/expdb), but "
                   "pulling in the linter or the unsalted pool/figure "
                   "drivers would either drag unsalted code into results "
                   "or invert the tooling layering"),
    ),
    ImportContract(
        name="expdb-engine-independence",
        packages=("repro.harness.expdb",),
        forbidden=("repro.sim", "repro.kernels", "repro.qos",
                   "repro.baselines", "repro.sharing", "repro.controllers",
                   "repro.power", "repro.config", "repro.isa",
                   "repro.harness.runner", "repro.harness.cache",
                   "repro.harness.parallel", "repro.harness.experiments"),
        rationale=("the experiment store deals only in plain JSON payloads "
                   "and cache-key pointers; keeping it free of simulator, "
                   "config and runner imports means a store can be opened, "
                   "inspected and garbage-collected without loading the "
                   "simulation stack (and can never influence results)"),
    ),
    ImportContract(
        name="runtime-analysis-independence",
        packages=("repro.config", "repro.isa", "repro.kernels", "repro.sim",
                  "repro.qos", "repro.baselines", "repro.sharing",
                  "repro.controllers", "repro.power", "repro.harness",
                  "repro.trace", "repro.osched", "repro.serve"),
        forbidden=("repro.analysis",),
        rationale=("the linter is development tooling; runtime modules must "
                   "never depend on it (only the CLI dispatches into it)"),
    ),
)


def _governed_by(module_name: str, prefix: str) -> bool:
    return module_name == prefix or module_name.startswith(prefix + ".")


def contracts_for(module_name: str) -> List[ImportContract]:
    return [contract for contract in IMPORT_CONTRACTS
            if any(_governed_by(module_name, package)
                   for package in contract.packages)]


@register
class ImportContractRule(Rule):
    id = "LAY001"
    severity = ERROR
    summary = ("forbidden cross-layer import (see IMPORT_CONTRACTS): e.g. "
               "policy packages importing repro.sim.engine")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        contracts = contracts_for(module.name)
        if not contracts:
            return
        for imported, lineno in module.imported_modules():
            for contract in contracts:
                for forbidden in contract.forbidden:
                    if _governed_by(imported, forbidden):
                        yield self.finding(
                            module, lineno,
                            f"imports {imported}, forbidden by the "
                            f"'{contract.name}' contract: "
                            f"{contract.rationale}")


#: Packages whose code runs on the policy side of the PolicyContext seam.
POLICY_SIDE_PACKAGES: Tuple[str, ...] = (
    "repro.qos", "repro.baselines", "repro.sharing", "repro.controllers",
    "repro.trace")


def _is_policy_side(module_name: str) -> bool:
    return any(_governed_by(module_name, package)
               for package in POLICY_SIDE_PACKAGES)


def _context_param_names(function: ast.AST) -> Set[str]:
    """Parameters of ``function`` that are (by name or annotation) a
    :class:`PolicyContext`."""
    names: Set[str] = set()
    args = function.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        if arg.arg == "ctx":
            names.add(arg.arg)
        elif arg.annotation is not None:
            try:
                annotation = ast.unparse(arg.annotation)
            except Exception:  # pragma: no cover - malformed annotation
                continue
            if "PolicyContext" in annotation:
                names.add(arg.arg)
    return names


class _ContextSeamRule(Rule):
    """Shared traversal: visit every function in policy-side modules that
    takes a PolicyContext and run :meth:`check_function` over its body."""

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _is_policy_side(module.name):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ctx_names = _context_param_names(node)
            if ctx_names:
                yield from self.check_function(module, node, ctx_names)

    def check_function(self, module: ModuleInfo, function: ast.AST,
                       ctx_names: Set[str]) -> Iterator[Finding]:
        raise NotImplementedError


@register
class ContextAttributeAssignmentRule(_ContextSeamRule):
    id = "LAY002"
    severity = ERROR
    summary = ("attribute assignment into a PolicyContext: policies actuate "
               "through its methods (set_quota, set_tb_target, ...), never "
               "by poking state into the view")

    def check_function(self, module: ModuleInfo, function: ast.AST,
                       ctx_names: Set[str]) -> Iterator[Finding]:
        for node in ast.walk(function):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and attribute_base(target) in ctx_names):
                    yield self.finding(
                        module, target.lineno,
                        f"assigns {ast.unparse(target)}: policies must "
                        "actuate through PolicyContext methods (set_quota, "
                        "set_tb_target, request_preemption, ...), never by "
                        "writing attributes into the context")


@register
class ContextPrivateAccessRule(_ContextSeamRule):
    id = "LAY003"
    severity = ERROR
    summary = ("underscore-private access on a PolicyContext (e.g. "
               "ctx._engine): use the public observation surface")

    def check_function(self, module: ModuleInfo, function: ast.AST,
                       ctx_names: Set[str]) -> Iterator[Finding]:
        for node in ast.walk(function):
            if (isinstance(node, ast.Attribute)
                    and node.attr.startswith("_")
                    and not node.attr.startswith("__")
                    and isinstance(node.value, ast.Name)
                    and node.value.id in ctx_names):
                yield self.finding(
                    module, node.lineno,
                    f"touches private PolicyContext internals "
                    f"({node.value.id}.{node.attr}); only the public "
                    "observation/actuation surface is part of the "
                    "engine-policy contract")
