"""Cache-salt coverage: the content-hash cache must see every result-
affecting module.

:mod:`repro.harness.cache` keys persistent case records by a *code salt* —
a digest of the source files listed in its ``_SALTED`` tuple.  If a module
that can change simulation outcomes is missing from that list, editing it
leaves the salt unchanged and the cache silently serves stale results:
exactly the failure a reproduction cannot afford.

``SALT001`` rebuilds the ground truth statically: it takes the transitive
import closure of the result-producing roots (``repro.sim.engine``,
``repro.harness.runner`` and ``repro.serve.runner`` — co-run and serving
results are cached under the same salt) over the analyzed tree, expands
``_SALTED``
against the same tree, and flags every closure module whose source file the
salt does not cover.  ``SALT002`` flags salt entries that no longer exist
on disk (a stale entry is dead weight and usually means a rename slipped
through).  Both read the ``_SALTED`` tuple from the *analyzed* AST — not
the imported package — so fixture trees and mid-refactor checkouts lint
correctly.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import ERROR, WARNING, Project, Rule, register

#: Module owning the ``_SALTED`` tuple.
CACHE_MODULE = "repro.harness.cache"

#: Result-producing entry points whose static import closure defines the
#: set of modules that can affect cached outcomes.
CLOSURE_ROOTS: Tuple[str, ...] = ("repro.sim.engine", "repro.harness.runner",
                                  "repro.serve.runner")

_SALT_TUPLE_NAME = "_SALTED"


def _find_salt_tuple(cache_module) -> Optional[Tuple[List[str], int]]:
    """``(entries, lineno)`` of the module-level ``_SALTED`` assignment."""
    for node in cache_module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id == _SALT_TUPLE_NAME):
            continue
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return None
        entries = []
        for element in node.value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            entries.append(element.value)
        return entries, node.lineno
    return None


def _transitive_closure(project: Project, roots: List[str],
                        top_package: str) -> Set[str]:
    """Module names reachable from ``roots`` via static imports, restricted
    to modules of ``top_package`` that are present in the project."""
    seen: Set[str] = set()
    queue = [root for root in roots if project.has_module(root)]
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        module = project.module(name)
        if module is None:
            continue
        for imported, _lineno in module.imported_modules():
            if not (imported == top_package
                    or imported.startswith(top_package + ".")):
                continue
            # `from pkg import name` arrives as pkg.name: prefer the module
            # if one exists, otherwise fall back to the containing package.
            if project.has_module(imported):
                queue.append(imported)
            else:
                base = imported.rpartition(".")[0]
                if base and project.has_module(base):
                    queue.append(base)
    return seen


def _salted_files(project: Project, cache_module,
                  entries: List[str]) -> Tuple[Set[str], List[str]]:
    """Expand ``_SALTED`` entries against the analyzed tree.

    Returns ``(covered, missing)``: ``covered`` is the set of
    package-relative posix paths the salt digests, ``missing`` the entries
    that match nothing on disk.
    """
    package_root = cache_module.path.resolve().parents[1]
    covered: Set[str] = set()
    missing: List[str] = []
    for entry in entries:
        path = package_root / entry
        if path.is_dir():
            sources = sorted(path.rglob("*.py"))
        elif path.is_file():
            sources = [path]
        else:
            missing.append(entry)
            continue
        covered.update(source.relative_to(package_root).as_posix()
                       for source in sources)
    return covered, missing


@register
class SaltCoverageRule(Rule):
    id = "SALT001"
    severity = ERROR
    scope = "project"
    summary = ("cache code salt does not cover a result-affecting module "
               "(transitively imported by the engine/runner): stale cached "
               "results would be served after editing it")

    def check_project(self, project: Project) -> Iterator[Finding]:
        cache_module = project.module(CACHE_MODULE)
        if cache_module is None:
            return
        located = _find_salt_tuple(cache_module)
        if located is None:
            yield self.finding(
                cache_module, 1,
                f"could not locate a literal {_SALT_TUPLE_NAME} tuple in "
                f"{CACHE_MODULE}; the salt-coverage check needs one")
            return
        entries, lineno = located
        covered, _missing = _salted_files(project, cache_module, entries)
        package_root = cache_module.path.resolve().parents[1]
        top_package = CACHE_MODULE.split(".")[0]
        closure = _transitive_closure(project, list(CLOSURE_ROOTS),
                                      top_package)
        for name in sorted(closure):
            module = project.module(name)
            if module is None:
                continue
            try:
                relative = (module.path.resolve()
                            .relative_to(package_root).as_posix())
            except ValueError:
                continue  # outside the package (cannot be salted by path)
            if relative not in covered:
                yield self.finding(
                    cache_module, lineno,
                    f"{name} ({relative}) is transitively imported by the "
                    f"result-producing roots {', '.join(CLOSURE_ROOTS)} but "
                    f"is not covered by {_SALT_TUPLE_NAME}; editing it "
                    "would not invalidate cached case records")


@register
class SaltStaleEntryRule(Rule):
    id = "SALT002"
    severity = WARNING
    scope = "project"
    summary = ("cache code salt lists a path that no longer exists "
               "(renamed or deleted module)")

    def check_project(self, project: Project) -> Iterator[Finding]:
        cache_module = project.module(CACHE_MODULE)
        if cache_module is None:
            return
        located = _find_salt_tuple(cache_module)
        if located is None:
            return  # SALT001 already reports the missing tuple
        entries, lineno = located
        _covered, missing = _salted_files(project, cache_module, entries)
        for entry in missing:
            yield self.finding(
                cache_module, lineno,
                f"{_SALT_TUPLE_NAME} entry {entry!r} matches no file or "
                "directory under the package; remove or update the stale "
                "entry")
