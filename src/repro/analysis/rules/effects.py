"""Effect/purity contracts on the architecture's seams (EFFECT001-003).

The flow engine (:mod:`repro.analysis.flow`) classifies every function
as PURE / READS_STATE / MUTATES_ENGINE / IO from an interprocedural
effect summary: which parameters (or globals) it mutates, whether it
performs IO, transitively through project calls.  These rules pin the
seams the repo's PRs deliberately built:

* ``EFFECT001`` — telemetry export paths (``repro.sim.telemetry``,
  ``repro.trace.jsonl``/``render``) accumulate into *themselves* and
  write to their streams, but never mutate engine state handed to them:
  observability must stay observationally free.
* ``EFFECT002`` — ``PolicyContext`` observation methods are
  side-effect-free; only the declared actuation methods may mutate.
  The seam's whole point (PR 3) is that policies cannot perturb the
  engine by *looking* at it.
* ``EFFECT003`` — policy-side code that holds a ``PolicyContext``
  actuates only through it (mutating ``self`` and ``ctx`` is its job;
  mutating anything else, or doing IO, reaches around the seam), and
  the batch core's sync-in (``BatchState.probe``) stays read-only so
  the probe can never diverge batch from event execution.

Like every project rule, each contract skips silently when its anchor
modules are absent, so fixture trees and snippets lint cleanly.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.analysis.core import ERROR, Finding, Project, Rule, register
from repro.analysis.rules.layering import (
    POLICY_SIDE_PACKAGES,
    _context_param_names,
)

# NB: ``repro.analysis.flow`` is imported inside the check methods —
# flow.py itself imports the determinism rule tables, so a module-level
# import here would cycle through the rules package.

#: PolicyContext methods that exist to mutate (the actuation surface +
#: construction + the engine-driven epoch bookkeeping hook).
POLICY_CONTEXT_ACTUATORS = frozenset({
    "__init__", "_advance_epoch", "add_quota", "flush_l1", "note_quota",
    "request_epoch_at", "request_preemption", "set_quota",
    "set_tb_target", "wake_all",
})

#: Telemetry/trace export modules governed by EFFECT001.
TELEMETRY_EXPORT_MODULES = (
    "repro.sim.telemetry", "repro.trace.jsonl", "repro.trace.render",
)

#: Batch-core sync-in methods that must stay read-only (EFFECT003).
BATCH_SYNC_IN = ("repro.sim.batch.BatchState.probe",)


def _mutation_text(tokens: List[str]) -> str:
    pretty = []
    for token in tokens:
        if token == "global":
            pretty.append("module-global state")
        else:
            pretty.append(f"parameter {token.split(':', 1)[1]!r}")
    return ", ".join(pretty)


@register
class TelemetryExportEffectRule(Rule):
    id = "EFFECT001"
    severity = ERROR
    scope = "project"
    summary = ("telemetry export paths must not mutate engine state: "
               "recorders accumulate into themselves and exporters "
               "write streams, nothing else changes")
    explain = """\
PR 3's telemetry is *observationally free*: enabling a recorder or
exporting a trace must not change a single simulation record.  The
exporter modules therefore get an inferred-effect contract: a function
in repro.sim.telemetry / repro.trace.jsonl / repro.trace.render may
mutate its own object (``self``) and perform IO (that is its job), but
may not mutate any other parameter or module-global state — a recorder
that pokes the engine object it was handed would make telemetry
participation change results.

Example finding:

    EFFECT001 telemetry export path mutates engine state:
    TelemetryRecorder.open_epoch mutates parameter 'engine'
    (telemetry must stay observationally free)

Fix by copying what you need into the record instead of writing back."""

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.flow import project_flow
        if not any(project.module(name) is not None
                   for name in TELEMETRY_EXPORT_MODULES):
            return
        flow = project_flow(project)
        for qname, info in sorted(flow.callgraph.functions.items()):
            if not any(info.module.name == name
                       or info.module.name.startswith(name + ".")
                       for name in TELEMETRY_EXPORT_MODULES):
                continue
            facts = flow.facts_for(qname)
            receiver = info.receiver_param
            banned = sorted(
                token for token in facts.mutates
                if token != (f"param:{receiver}" if receiver else None))
            if banned:
                yield self.finding(
                    info.module, info.line,
                    f"telemetry export path mutates engine state: "
                    f"{_short(qname)} mutates {_mutation_text(banned)} "
                    "(telemetry must stay observationally free)")


@register
class PolicyContextPurityRule(Rule):
    id = "EFFECT002"
    severity = ERROR
    scope = "project"
    summary = ("PolicyContext observation methods are side-effect-free; "
               "only the declared actuation methods mutate")
    explain = """\
The PolicyContext seam exposes two method families: observations
(quota_attainment, live_tb_count, ...) that policies may call freely
while deciding, and actuations (set_quota, request_preemption, ...)
that apply a decision.  The observation family must be inferred
side-effect-free — no mutation of anything, no IO — because policies
call observers at arbitrary points and an observer with a side effect
would make *reading* the engine change it.  The actuation surface is
the explicit allowlist POLICY_CONTEXT_ACTUATORS in
repro.analysis.rules.effects; extending the seam means extending the
list (a one-line, reviewable change).

Example finding:

    EFFECT002 PolicyContext.quota_attainment is an observation method
    but mutates parameter 'self'; observation must be side-effect-free
    (actuators are declared in POLICY_CONTEXT_ACTUATORS)"""

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.flow import project_flow
        if project.module("repro.sim.policy") is None:
            return
        flow = project_flow(project)
        prefix = "repro.sim.policy.PolicyContext."
        for qname, info in sorted(flow.callgraph.functions.items()):
            if not qname.startswith(prefix):
                continue
            method = qname[len(prefix):]
            if method in POLICY_CONTEXT_ACTUATORS:
                continue
            facts = flow.facts_for(qname)
            problems = []
            if facts.mutates:
                problems.append(
                    f"mutates {_mutation_text(sorted(facts.mutates))}")
            if facts.io:
                problems.append("performs IO")
            if problems:
                yield self.finding(
                    info.module, info.line,
                    f"PolicyContext.{method} is an observation method "
                    f"but {' and '.join(problems)}; observation must be "
                    "side-effect-free (actuators are declared in "
                    "POLICY_CONTEXT_ACTUATORS)")


@register
class PolicySeamEffectRule(Rule):
    id = "EFFECT003"
    severity = ERROR
    scope = "project"
    summary = ("policy-side code actuates only through the seam (self + "
               "ctx mutation, no IO), and the batch core's sync-in "
               "probe stays read-only")
    explain = """\
Two contracts with one theme — decisions flow through the seam:

* A policy-side function (repro.qos / repro.baselines / repro.sharing /
  repro.controllers / repro.trace) that takes a PolicyContext may
  mutate its own state and actuate through the context, but an
  inferred mutation of anything else — or IO — means it is reaching
  around the seam the layering rules fence syntactically.
* ``BatchState.probe`` is the batch core's sync-in: it inspects warp
  hot state to decide whether a vectorised window may open.  It must
  be inferred mutation-free, because a probe that changes state makes
  the batch core diverge from the event core it must replay exactly.

Example finding:

    EFFECT003 QoSPolicy.on_epoch_start takes a PolicyContext but
    mutates module-global state; policy decisions must actuate only
    via self/ctx (the PolicyContext seam)"""

    def check_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.flow import project_flow
        flow = None
        if any(module.name.startswith(POLICY_SIDE_PACKAGES)
               for module in project.modules):
            flow = project_flow(project)
            yield from self._check_policy_side(flow)
        if project.module("repro.sim.batch") is not None:
            flow = flow or project_flow(project)
            yield from self._check_sync_in(flow)

    def _check_policy_side(self, flow) -> Iterator[Finding]:
        for qname, info in sorted(flow.callgraph.functions.items()):
            if not info.module.name.startswith(POLICY_SIDE_PACKAGES):
                continue
            ctx_names = _context_param_names(info.node)
            if not ctx_names:
                continue
            facts = flow.facts_for(qname)
            allowed: Set[str] = {f"param:{name}" for name in ctx_names}
            if info.receiver_param:
                allowed.add(f"param:{info.receiver_param}")
            banned = sorted(set(facts.mutates) - allowed)
            problems = []
            if banned:
                problems.append(f"mutates {_mutation_text(banned)}")
            if facts.io:
                problems.append("performs IO")
            if problems:
                yield self.finding(
                    info.module, info.line,
                    f"{_short(qname)} takes a PolicyContext but "
                    f"{' and '.join(problems)}; policy decisions must "
                    "actuate only via self/ctx (the PolicyContext seam)")

    def _check_sync_in(self, flow) -> Iterator[Finding]:
        for qname in BATCH_SYNC_IN:
            info = flow.callgraph.functions.get(qname)
            if info is None:
                continue
            facts = flow.facts_for(qname)
            problems = []
            if facts.mutates:
                problems.append(
                    f"mutates {_mutation_text(sorted(facts.mutates))}")
            if facts.io:
                problems.append("performs IO")
            if problems:
                yield self.finding(
                    info.module, info.line,
                    f"batch-core sync-in {_short(qname)} must be "
                    f"read-only but {' and '.join(problems)}; a probe "
                    "with side effects diverges batch from event "
                    "execution")


def _short(qname: str) -> str:
    parts = qname.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) >= 2 else qname
