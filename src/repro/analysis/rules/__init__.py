"""Built-in rule set of the ``repro lint`` analyzer.

Importing this package registers every rule with the
:mod:`repro.analysis.core` registry.  The catalog:

========  =========  ==========================================================
id        severity   invariant
========  =========  ==========================================================
DET001    error      no wall-clock reads on result paths
DET002    error      no process-global / unseeded RNGs
DET003    error      no iteration over sets (hash-randomised order)
DET004    error      no ordering by ``id()``
DET005    error      no filesystem-order directory listings without ``sorted``
DET006    warning    ``.keys()`` iteration: sort when order can matter
LAY001    error      declarative import contracts (policy/engine/harness edges)
LAY002    error      no attribute assignment into a ``PolicyContext``
LAY003    error      no underscore-private access on a ``PolicyContext``
SALT001   error      cache code salt covers every result-affecting module
SALT002   warning    no stale entries in the cache code salt
SCHEMA001 error      telemetry dataclasses match the JSONL validation tables
========  =========  ==========================================================
"""

from repro.analysis.rules import determinism, layering, saltcov, schema
from repro.analysis.rules.layering import (
    IMPORT_CONTRACTS,
    POLICY_SIDE_PACKAGES,
    ImportContract,
    contracts_for,
)

__all__ = [
    "IMPORT_CONTRACTS",
    "POLICY_SIDE_PACKAGES",
    "ImportContract",
    "contracts_for",
    "determinism",
    "layering",
    "saltcov",
    "schema",
]
