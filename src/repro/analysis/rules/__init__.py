"""Built-in rule set of the ``repro lint`` analyzer.

Importing this package registers every rule with the
:mod:`repro.analysis.core` registry.  The catalog:

========  =========  ==========================================================
id        severity   invariant
========  =========  ==========================================================
DET001    error      no wall-clock reads on result paths
DET002    error      no process-global / unseeded RNGs
DET003    error      no iteration over sets (hash-randomised order)
DET004    error      no ordering by ``id()``
DET005    error      no filesystem-order directory listings without ``sorted``
DET006    warning    ``.keys()`` iteration: sort when order can matter
DET007    warning    no plain ``sum`` over parallel-worker results
DET008    error      timestamps never feed identity (ORDER BY / hashed keys)
FLOW001   error      no nondeterminism reaching identity sinks (interproc.)
FLOW002   error      no nondeterministic sort keys (flow-evaluated)
FLOW003   error      no nondeterminism recorded into telemetry
FLOAT001  warning    no order-sensitive float accumulation over unordered input
EFFECT001 error      telemetry export paths never mutate engine state
EFFECT002 error      PolicyContext observation methods are side-effect-free
EFFECT003 error      policy code actuates via the seam; batch sync-in is pure
LAY001    error      declarative import contracts (policy/engine/harness edges)
LAY002    error      no attribute assignment into a ``PolicyContext``
LAY003    error      no underscore-private access on a ``PolicyContext``
SALT001   error      cache code salt covers every result-affecting module
SALT002   warning    no stale entries in the cache code salt
SCHEMA001 error      telemetry dataclasses match the JSONL validation tables
========  =========  ==========================================================
"""

# Import order matters: the flow engine reuses determinism's source
# tables and the EFFECT rules reuse layering's seam helpers, so those
# two modules must initialise before flowrules/effects.
from repro.analysis.rules import determinism, layering  # noqa: F401
from repro.analysis.rules import effects, flowrules, saltcov, schema
from repro.analysis.rules.effects import POLICY_CONTEXT_ACTUATORS
from repro.analysis.rules.layering import (
    IMPORT_CONTRACTS,
    POLICY_SIDE_PACKAGES,
    ImportContract,
    contracts_for,
)

__all__ = [
    "IMPORT_CONTRACTS",
    "POLICY_CONTEXT_ACTUATORS",
    "POLICY_SIDE_PACKAGES",
    "ImportContract",
    "contracts_for",
    "determinism",
    "effects",
    "flowrules",
    "layering",
    "saltcov",
    "schema",
]
