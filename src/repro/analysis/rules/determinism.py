"""Determinism rules: the simulator must be a pure function of its inputs.

Bit-identical replay is a load-bearing property here — the event/scan core
equivalence, serial/parallel runner equivalence and the content-hash case
cache (PRs 1-3) all assume that re-running a case reproduces it exactly.
These rules flag the classic ways python code silently breaks that:

* ``DET001`` — wall-clock reads (``time.time``, argless ``datetime.now``);
* ``DET002`` — process-global or unseeded RNGs;
* ``DET003`` — iterating a ``set`` (order varies under hash randomisation);
* ``DET004`` — ordering by ``id()`` (address-dependent);
* ``DET005`` — filesystem-order directory listings without ``sorted``;
* ``DET006`` — ``dict.keys()`` iteration (warning: order is insertion
  history, which is easy to perturb from call sites);
* ``DET007`` — ``sum(...)`` of floats over parallel-worker-produced
  results (warning: float addition is order-sensitive; ``math.fsum`` is
  correctly rounded and therefore order-robust);
* ``DET008`` — timestamps feeding result ordering or content identity:
  ``ORDER BY <timestamp column>`` in SQL string constants, or a
  timestamp-named key inside a dict passed to a digest/hash/key function.
  The experiment store records wall-clock columns for operators; the moment
  one leaks into an ``ORDER BY`` that feeds results, or into a hashed
  payload, identical runs stop being identical.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from repro.analysis.core import (
    ERROR,
    WARNING,
    Finding,
    ModuleInfo,
    Rule,
    register,
)

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
}

#: ``datetime.now(tz)`` is as non-deterministic as the argless form, but the
#: issue here is *any* wall-clock read feeding results; both are flagged.
_WALL_CLOCK_ARGLESS = {"datetime.datetime.now"}

#: Module-level :mod:`random` functions — they share one process-global,
#: time-seeded generator, so any use is both unseeded and cross-coupled.
_GLOBAL_RANDOM_FNS = {
    "random", "uniform", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "randbytes",
}

#: numpy constructors that are fine *when given a seed argument*.
_NUMPY_SEEDABLE = {"default_rng", "RandomState", "Generator", "SeedSequence"}

_LISTING_CALLS = {
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
}

#: Path-object methods that yield entries in filesystem order.
_LISTING_METHODS = {"glob", "rglob", "iterdir"}


def _sorted_ancestor(module: ModuleInfo, node: ast.AST) -> bool:
    """True when ``node`` sits (at any depth) inside a ``sorted(...)`` call."""
    for ancestor in module.ancestors(node):
        if (isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == "sorted"):
            return True
        if isinstance(ancestor, ast.stmt):
            break
    return False


@register
class WallClockRule(Rule):
    id = "DET001"
    severity = ERROR
    summary = ("wall-clock read (time.time / datetime.now): results must "
               "not depend on when a run happens")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolved_call_name(node)
            if resolved is None:
                continue
            if resolved in _WALL_CLOCK or resolved in _WALL_CLOCK_ARGLESS:
                yield self.finding(
                    module, node.lineno,
                    f"wall-clock read {resolved}(): simulation inputs and "
                    "outputs must not depend on real time (pass timestamps "
                    "in, or suppress for reporting-only timing)")


@register
class UnseededRandomRule(Rule):
    id = "DET002"
    severity = ERROR
    summary = ("process-global or unseeded RNG: use random.Random(seed) / "
               "numpy default_rng(seed) so runs replay bit-identically")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolved_call_name(node)
            if resolved is None:
                continue
            message = self._diagnose(node, resolved)
            if message:
                yield self.finding(module, node.lineno, message)

    @staticmethod
    def _diagnose(node: ast.Call, resolved: str) -> Optional[str]:
        has_args = bool(node.args or node.keywords)
        if resolved.startswith("random."):
            tail = resolved[len("random."):]
            if tail in _GLOBAL_RANDOM_FNS:
                return (f"{resolved}() draws from the process-global RNG; "
                        "construct an explicitly seeded random.Random(seed)")
            if tail == "Random" and not has_args:
                return ("random.Random() with no seed is seeded from the OS; "
                        "pass a deterministic seed")
            if tail == "seed" and not has_args:
                return ("random.seed() with no argument seeds from the "
                        "clock; pass a deterministic seed")
        if resolved.startswith("numpy.random."):
            tail = resolved[len("numpy.random."):]
            if tail in _NUMPY_SEEDABLE:
                if not has_args:
                    return (f"{resolved}() with no seed is entropy-seeded; "
                            "pass a deterministic seed")
                return None
            return (f"{resolved}() uses numpy's global RNG state; use a "
                    "seeded numpy.random.default_rng(seed) instance")
        return None


class _SetScope:
    """Names in one lexical scope whose value is statically known set-ish.

    Conservative two-pass per scope: a name counts only when every simple
    assignment to it in the scope is a set literal/comprehension or a
    ``set()``/``frozenset()`` call, so rebinding to a list disqualifies it.
    """

    def __init__(self) -> None:
        self.setish: Set[str] = set()
        self.disqualified: Set[str] = set()

    def observe(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if _is_setish_expr(value, self):
            self.setish.add(target.id)
        else:
            self.disqualified.add(target.id)

    def is_setish_name(self, name: str) -> bool:
        return name in self.setish and name not in self.disqualified


def _is_setish_expr(node: ast.AST, scope: _SetScope) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name):
        return scope.is_setish_name(node.id)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_setish_expr(node.left, scope)
                or _is_setish_expr(node.right, scope))
    return False


@register
class SetIterationRule(Rule):
    id = "DET003"
    severity = ERROR
    summary = ("iteration over a set: order varies with hash randomisation; "
               "wrap in sorted(...) before it can feed any decision")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree)

    def _check_scope(self, module: ModuleInfo,
                     scope_node: ast.AST) -> Iterator[Finding]:
        scope = _SetScope()
        body_nodes = []
        nested = []
        stack = list(ast.iter_child_nodes(scope_node))
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                nested.append(node)
                continue
            body_nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        for node in body_nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                scope.observe(node.targets[0], node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                scope.observe(node.target, node.value)
        for node in body_nodes:
            iterables = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if (_is_setish_expr(iterable, scope)
                        and not _sorted_ancestor(module, iterable)):
                    yield self.finding(
                        module, iterable.lineno,
                        "iterating over a set is order-nondeterministic "
                        "under hash randomisation; iterate sorted(...) "
                        "instead")
        for node in nested:
            yield from self._check_scope(module, node)


@register
class IdOrderingRule(Rule):
    id = "DET004"
    severity = ERROR
    summary = ("ordering by id(): object addresses differ between runs; "
               "sort by a stable key")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if self._is_id_key(keyword.value):
                    yield self.finding(
                        module, node.lineno,
                        "key=id orders by memory address, which changes "
                        "between runs; use a stable attribute instead")

    @staticmethod
    def _is_id_key(value: ast.AST) -> bool:
        if isinstance(value, ast.Name) and value.id == "id":
            return True
        if isinstance(value, ast.Lambda):
            body = value.body
            return (isinstance(body, ast.Call)
                    and isinstance(body.func, ast.Name)
                    and body.func.id == "id")
        return False


@register
class FilesystemOrderRule(Rule):
    id = "DET005"
    severity = ERROR
    summary = ("directory listing in filesystem order: wrap os.listdir / "
               "glob / Path.glob in sorted(...)")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolved_call_name(node)
            label = None
            if resolved in _LISTING_CALLS:
                label = resolved
            elif (resolved is None and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _LISTING_METHODS):
                label = f".{node.func.attr}"
            if label is None:
                continue
            if _sorted_ancestor(module, node):
                continue
            yield self.finding(
                module, node.lineno,
                f"{label}() yields entries in filesystem order, which "
                "varies between machines and runs; wrap the listing in "
                "sorted(...)")


@register
class DictKeysIterationRule(Rule):
    id = "DET006"
    severity = WARNING
    summary = (".keys() iteration: order is insertion history; sort it if "
               "the loop feeds an ordering decision")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iterables = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if (isinstance(iterable, ast.Call)
                        and isinstance(iterable.func, ast.Attribute)
                        and iterable.func.attr == "keys"
                        and not iterable.args and not iterable.keywords
                        and not _sorted_ancestor(module, iterable)):
                    yield self.finding(
                        module, iterable.lineno,
                        "iterating .keys() pins the order to insertion "
                        "history; iterate sorted(d) when order can affect "
                        "results (or drop .keys() if order is irrelevant)")


#: Methods that fan work out over parallel workers (or batch runners that
#: may): the iterables they return are the classic place where a plain
#: ``sum()`` bakes the accumulation order into a float result.
_PARALLEL_PRODUCER_METHODS = {
    "sweep", "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "map_async",
}


class _ParallelScope:
    """Names in one lexical scope bound to parallel-producer results.

    Mirrors :class:`_SetScope`'s conservative two-pass contract: a name
    counts only when every simple assignment to it in the scope is a
    parallel-producer call (optionally wrapped in ``list``/``tuple``), so
    rebinding to anything else disqualifies it.
    """

    def __init__(self) -> None:
        self.parallel: Set[str] = set()
        self.disqualified: Set[str] = set()

    def observe(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if _is_parallel_producer(value, self):
            self.parallel.add(target.id)
        else:
            self.disqualified.add(target.id)

    def is_parallel_name(self, name: str) -> bool:
        return name in self.parallel and name not in self.disqualified


def _is_parallel_producer(node: ast.AST, scope: _ParallelScope) -> bool:
    if isinstance(node, ast.Name):
        return scope.is_parallel_name(node.id)
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("list", "tuple") and \
            node.args:
        return _is_parallel_producer(node.args[0], scope)
    return (isinstance(func, ast.Attribute)
            and func.attr in _PARALLEL_PRODUCER_METHODS)


def _iterates_parallel(node: ast.AST, scope: _ParallelScope) -> bool:
    """True when ``node`` (a ``sum`` argument) draws its iteration order
    from a parallel-producer result: the result itself, or a
    comprehension/generator over one."""
    if _is_parallel_producer(node, scope):
        return True
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return any(_is_parallel_producer(gen.iter, scope)
                   for gen in node.generators)
    return False


@register
class FloatAccumulationOrderRule(Rule):
    id = "DET007"
    severity = WARNING
    summary = ("sum() over parallel-worker results: float addition is "
               "order-sensitive; accumulate with math.fsum(...) so the "
               "total does not depend on completion/iteration order")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree)

    def _check_scope(self, module: ModuleInfo,
                     scope_node: ast.AST) -> Iterator[Finding]:
        scope = _ParallelScope()
        body_nodes = []
        nested = []
        stack = list(ast.iter_child_nodes(scope_node))
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                nested.append(node)
                continue
            body_nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        for node in body_nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                scope.observe(node.targets[0], node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                scope.observe(node.target, node.value)
        for node in body_nodes:
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum" and node.args):
                continue
            if _iterates_parallel(node.args[0], scope):
                yield self.finding(
                    module, node.lineno,
                    "sum() accumulates floats in iteration order over a "
                    "parallel-producer result (.sweep/.map/...); the total "
                    "then encodes that order — use math.fsum(...) for an "
                    "order-robust, correctly-rounded accumulation")
        for node in nested:
            yield from self._check_scope(module, node)


#: Column/key names that carry wall-clock values in this codebase (the
#: experiment store's operator-facing columns plus the generic spellings).
_TIMESTAMP_NAMES = ("claimed_at", "created_at", "finished_at", "started_at",
                    "timestamp", "updated_at")

#: Three-step match, tuned against prose false positives (docstrings are
#: string constants too): the string must contain an SQL verb, and a
#: timestamp name must appear in the column-list run directly after
#: ``ORDER BY`` (word characters, dots, commas, whitespace — how real SQL
#: spells it).  Documentation like ``ORDER BY <timestamp column>`` fails
#: both the verb gate and the column-list capture.
_SQL_VERB = re.compile(r"\b(SELECT|INSERT|UPDATE|DELETE|CREATE)\b")

_ORDER_BY_COLUMNS = re.compile(r"ORDER\s+BY\s+([\w.\s,]+)", re.IGNORECASE)

_TIMESTAMP_COLUMN = re.compile(
    r"\b(" + "|".join(_TIMESTAMP_NAMES) + r")\b", re.IGNORECASE)

#: A call is identity-forming when its name says it digests, hashes or keys
#: its payload (``_digest``, ``case_key``, ``experiment_spec_hash``, ...).
_IDENTITY_CALL_MARKERS = ("digest", "hash", "key")


@register
class TimestampIdentityRule(Rule):
    id = "DET008"
    severity = ERROR
    summary = ("timestamp feeding result ordering or content identity: "
               "ORDER BY <timestamp column> in SQL, or a timestamp key in "
               "a digest/hash/key payload")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and _SQL_VERB.search(node.value)):
                for order_by in _ORDER_BY_COLUMNS.finditer(node.value):
                    match = _TIMESTAMP_COLUMN.search(order_by.group(1))
                    if match:
                        yield self.finding(
                            module, node.lineno,
                            f"SQL orders rows by wall-clock column "
                            f"'{match.group(1)}'; rows that feed results "
                            "must be ordered by content-derived columns "
                            "(ids, indices), never by when they were "
                            "written")
                        break
            if isinstance(node, ast.Call):
                yield from self._check_identity_call(module, node)

    def _check_identity_call(self, module: ModuleInfo,
                             node: ast.Call) -> Iterator[Finding]:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name is None:
            return
        lowered = name.lower()
        if not any(marker in lowered for marker in _IDENTITY_CALL_MARKERS):
            return
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            if not isinstance(argument, ast.Dict):
                continue
            for key in argument.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value in _TIMESTAMP_NAMES):
                    yield self.finding(
                        module, key.lineno,
                        f"dict passed to {name}() carries timestamp key "
                        f"'{key.value}': wall-clock values in a hashed "
                        "payload make identical inputs hash differently "
                        "on every run")
