"""Telemetry-schema sync: the dataclasses and the JSONL schema must agree.

:mod:`repro.sim.telemetry` owns both the typed per-epoch records
(:class:`EpochRecord`, :class:`KernelEpochRecord`, :class:`TBMove`) and the
field tables (``_EPOCH_INT_FIELDS`` etc.) that :func:`validate_epoch_dict`
checks JSONL traces against.  Adding a dataclass field without updating the
tables would let the exporter write records the validator can no longer
round-trip — and the strict reader (:mod:`repro.trace.jsonl`) would reject
every new trace.

``SCHEMA001`` checks, statically:

* ``EpochRecord`` fields == ``_EPOCH_INT_FIELDS`` + ``kernels`` +
  ``tb_moves``;
* ``KernelEpochRecord`` fields == ``name`` + int + float + optional
  tables;
* ``TBMove`` fields == ``_TB_MOVE_FIELDS``;
* the JSONL exporter actually imports ``validate_epoch_dict`` (otherwise
  the schema guarantee is decorative).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.core import ERROR, Finding, Project, Rule, register

TELEMETRY_MODULE = "repro.sim.telemetry"
JSONL_MODULE = "repro.trace.jsonl"

#: dataclass -> (field tables summed, implicit fields) that must equal it.
_EPOCH_TABLES = ("_EPOCH_INT_FIELDS",)
_EPOCH_IMPLICIT = ("kernels", "tb_moves")
_KERNEL_TABLES = ("_KERNEL_INT_FIELDS", "_KERNEL_FLOAT_FIELDS",
                  "_KERNEL_OPT_FIELDS")
_KERNEL_IMPLICIT = ("name",)
_TB_MOVE_TABLES = ("_TB_MOVE_FIELDS",)


def _dataclass_fields(tree: ast.Module, class_name: str) -> Optional[
        Tuple[List[str], int]]:
    """Annotated field names of a (data)class body, with its line number."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = [statement.target.id for statement in node.body
                      if isinstance(statement, ast.AnnAssign)
                      and isinstance(statement.target, ast.Name)]
            return fields, node.lineno
    return None


def _string_tuple(tree: ast.Module, name: str) -> Optional[List[str]]:
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return None
        values = []
        for element in node.value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            values.append(element.value)
        return values
    return None


@register
class TelemetrySchemaSyncRule(Rule):
    id = "SCHEMA001"
    severity = ERROR
    scope = "project"
    summary = ("telemetry dataclass fields out of sync with the JSONL "
               "validation tables (validate_epoch_dict would reject or "
               "under-check exported traces)")

    def check_project(self, project: Project) -> Iterator[Finding]:
        telemetry = project.module(TELEMETRY_MODULE)
        if telemetry is None:
            return
        tree = telemetry.tree
        checks = (
            ("EpochRecord", _EPOCH_TABLES, _EPOCH_IMPLICIT),
            ("KernelEpochRecord", _KERNEL_TABLES, _KERNEL_IMPLICIT),
            ("TBMove", _TB_MOVE_TABLES, ()),
        )
        for class_name, table_names, implicit in checks:
            located = _dataclass_fields(tree, class_name)
            if located is None:
                yield self.finding(
                    telemetry, 1,
                    f"expected dataclass {class_name} in "
                    f"{TELEMETRY_MODULE}; the schema-sync check needs it")
                continue
            fields, lineno = located
            table_fields: List[str] = list(implicit)
            tables_ok = True
            for table_name in table_names:
                values = _string_tuple(tree, table_name)
                if values is None:
                    yield self.finding(
                        telemetry, lineno,
                        f"expected a literal string tuple {table_name} in "
                        f"{TELEMETRY_MODULE} (validation table for "
                        f"{class_name})")
                    tables_ok = False
                    continue
                table_fields.extend(values)
            if not tables_ok:
                continue
            missing = [field for field in fields
                       if field not in table_fields]
            extra = [field for field in table_fields
                     if field not in fields]
            duplicated = sorted({field for field in table_fields
                                 if table_fields.count(field) > 1})
            if missing:
                yield self.finding(
                    telemetry, lineno,
                    f"{class_name} field(s) {missing} are not covered by "
                    f"the validation tables ({', '.join(table_names)}); "
                    "exported traces would not be schema-checked for them")
            if extra:
                yield self.finding(
                    telemetry, lineno,
                    f"validation table entr(ies) {extra} name no "
                    f"{class_name} field; the validator would reject every "
                    "record the dataclass actually produces")
            if duplicated:
                yield self.finding(
                    telemetry, lineno,
                    f"field(s) {duplicated} appear in more than one "
                    f"validation table for {class_name}")
        yield from self._check_exporter(project)

    def _check_exporter(self, project: Project) -> Iterator[Finding]:
        jsonl = project.module(JSONL_MODULE)
        if jsonl is None:
            return
        imported = {name for name, _lineno in jsonl.imported_modules()}
        validator = f"{TELEMETRY_MODULE}.validate_epoch_dict"
        if validator not in imported and TELEMETRY_MODULE not in imported:
            yield self.finding(
                jsonl, 1,
                f"{JSONL_MODULE} does not import validate_epoch_dict from "
                f"{TELEMETRY_MODULE}; traces it reads would bypass the "
                "record schema check")
