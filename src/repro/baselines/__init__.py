"""Baseline sharing/QoS policies the paper compares against.

* :class:`SpartPolicy` — spatial partitioning with hill-climbing QoS
  (Aguilera et al. [3]): the previous best, one SM-count knob per kernel.
* :class:`repro.sim.SharingPolicy` (the base class) — unmanaged SMK
  fine-grained sharing: every kernel greedily fills every SM, no QoS.
"""

from repro.baselines.spart import SpartPolicy

__all__ = ["SpartPolicy"]
