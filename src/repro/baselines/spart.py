"""Spart: spatially partitioned multitasking with hill-climbing QoS.

Re-implementation of the paper's primary baseline [3] (Aguilera et al.,
"QoS-aware dynamic resource allocation for spatial-multitasking GPUs"):
every SM runs exactly one kernel; QoS is pursued by moving whole SMs between
kernels with a hill-climbing search driven by a linear performance model
(IPC is assumed proportional to SM count).  Its structural weaknesses — one
coarse knob, an SM is indivisible between a QoS and a non-QoS kernel, no
control over memory bandwidth — are exactly what the paper's fine-grained
design removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.policy import PolicyContext, SharingPolicy

#: Relative surplus a QoS kernel must keep after losing one SM for the
#: hill climber to hand that SM back to a non-QoS kernel.  The linear
#: IPC-per-SM model underestimates co-runner bandwidth interference
#: (Section 5 notes the model "heavily depends on the sharer kernels"), so
#: the margin is generous to damp give-back/steal oscillation.
GIVE_BACK_MARGIN = 1.25

#: Epochs to wait after a repartition before the next hill-climbing step,
#: letting the cumulative IPC measurement settle on the new configuration.
SETTLE_EPOCHS = 2


class SpartPolicy(SharingPolicy):
    """Spatial partitioning + hill climbing (the paper's 'Spart')."""

    uses_quotas = False
    name = "spart"

    def __init__(self, adjust_interval: int = 1):
        if adjust_interval <= 0:
            raise ValueError("adjust_interval must be positive")
        self.adjust_interval = adjust_interval
        self.owner: List[int] = []          # SM id -> kernel idx
        self.qos_indices: List[int] = []
        self.nonqos_indices: List[int] = []
        self.goals: Dict[int, float] = {}
        self.ipc_history: Dict[int, float] = {}
        self.moves = 0
        self._settle_until_epoch = 0

    # --------------------------------------------------------------- setup

    def setup(self, ctx: PolicyContext) -> None:
        for idx, launch in enumerate(ctx.kernels):
            if launch.is_qos:
                self.qos_indices.append(idx)
                self.goals[idx] = launch.ipc_goal
            else:
                self.nonqos_indices.append(idx)
            self.ipc_history[idx] = 0.0
        num_sms = ctx.num_sms
        num_kernels = ctx.num_kernels
        if num_kernels > num_sms:
            raise ValueError("spatial partitioning needs at least one SM per kernel")
        share = num_sms // num_kernels
        counts = {idx: share for idx in range(num_kernels)}
        leftover = num_sms - share * num_kernels
        # Remaining SMs go to QoS kernels first: they carry requirements.
        for idx in (self.qos_indices + self.nonqos_indices)[:leftover]:
            counts[idx] += 1
        self.owner = []
        for idx in range(num_kernels):
            self.owner.extend([idx] * counts[idx])
        self._apply_partition(ctx)

    def _apply_partition(self, ctx: PolicyContext) -> None:
        max_tbs = ctx.config.sm.max_tbs
        for sm_id, owner_idx in enumerate(self.owner):
            for kernel_idx in range(ctx.num_kernels):
                target = max_tbs if kernel_idx == owner_idx else 0
                ctx.set_tb_target(sm_id, kernel_idx, target)

    # --------------------------------------------------------------- epochs

    def on_epoch_start(self, ctx: PolicyContext, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index == 0:
            return
        view = ctx.epoch
        for idx in range(ctx.num_kernels):
            self.ipc_history[idx] = view.cumulative_ipc[idx]
        if epoch_index % self.adjust_interval != 0:
            return
        if ctx.preemption_pending or epoch_index < self._settle_until_epoch:
            return  # let the previous repartition settle first
        if self._hill_climb(ctx):
            self._settle_until_epoch = epoch_index + SETTLE_EPOCHS

    def sm_count(self, kernel_idx: int) -> int:
        return self.owner.count(kernel_idx)

    def _hill_climb(self, ctx: PolicyContext) -> bool:
        """One hill-climbing move: grow a lagging QoS kernel, or shrink an
        over-achieving one in favour of the non-QoS partition.  Returns
        True when a repartition happened."""
        lagging = [idx for idx in self.qos_indices
                   if self.ipc_history[idx] < self.goals[idx]]
        if lagging:
            # Grow the furthest-behind kernel first.
            lagging.sort(key=lambda idx: self.ipc_history[idx] / self.goals[idx])
            for idx in lagging:
                donor = self._choose_donor(idx)
                if donor is not None:
                    self._transfer_sm(ctx, donor, idx)
                    return True
            return False
        return self._maybe_give_back(ctx)

    def _choose_donor(self, beneficiary: int) -> Optional[int]:
        """Donor preference: largest non-QoS partition, else a QoS kernel
        predicted (linear model) to stay above goal with one less SM."""
        nonqos = [idx for idx in self.nonqos_indices if self.sm_count(idx) > 0]
        if nonqos:
            return max(nonqos, key=self.sm_count)
        best = None
        best_surplus = 0.0
        for idx in self.qos_indices:
            if idx == beneficiary:
                continue
            sms = self.sm_count(idx)
            if sms <= 1:
                continue
            predicted = self.ipc_history[idx] * (sms - 1) / sms
            surplus = predicted - self.goals[idx]
            if surplus > best_surplus:
                best, best_surplus = idx, surplus
        return best

    def _maybe_give_back(self, ctx: PolicyContext) -> bool:
        """All goals met: return one SM to the non-QoS side if a QoS kernel
        would stay comfortably above its goal without it."""
        if not self.nonqos_indices:
            return False
        receiver = min(self.nonqos_indices, key=self.sm_count)
        for idx in sorted(self.qos_indices,
                          key=lambda i: self.ipc_history[i] / self.goals[i],
                          reverse=True):
            sms = self.sm_count(idx)
            if sms <= 1:
                continue
            predicted = self.ipc_history[idx] * (sms - 1) / sms
            if predicted > self.goals[idx] * GIVE_BACK_MARGIN:
                self._transfer_sm(ctx, idx, receiver)
                return True
        return False

    def _transfer_sm(self, ctx: PolicyContext, donor: int, receiver: int) -> None:
        """Move one SM from donor to receiver (SM-granularity context switch)."""
        sm_id = max(i for i, owner in enumerate(self.owner) if owner == donor)
        self.owner[sm_id] = receiver
        ctx.set_tb_target(sm_id, donor, 0)
        ctx.set_tb_target(sm_id, receiver, ctx.config.sm.max_tbs)
        ctx.flush_l1(sm_id)
        self.moves += 1
