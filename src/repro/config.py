"""Machine configurations for the simulated GPU.

The paper (Table 1) evaluates a 16-SM GPU modelled after a Pascal-class part:

=============== ========= ==================== =======
GPU parameter   Value     SM parameter         Value
=============== ========= ==================== =======
Core frequency  1216 MHz  Registers            256 KB
Memory freq.    7 GHz     Shared memory        96 KB
Number of SMs   16        Threads              2048
Number of MCs   4         TB limit             32
Sched. policy   GTO       Warp schedulers      4
=============== ========= ==================== =======

Three presets are exported:

``PAPER_GPU``
    Table 1 verbatim, with a 10K-cycle QoS epoch (Section 4.1).
``PASCAL56_GPU``
    The 56-SM configuration of Section 4.6 (two warp schedulers per SM,
    everything else as Table 1).
``FAST_GPU``
    A scaled-down preset used by the default benchmark harness so that the
    pure-Python simulator finishes in seconds per case.  Memory bandwidth is
    scaled proportionally to the SM count so per-SM contention matches the
    paper machine; the epoch is shortened in the same ratio as the simulated
    window so adaptation dynamics are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1024


@dataclass(frozen=True)
class SMConfig:
    """Static per-SM resources (the four TB admission limits plus issue width)."""

    registers_bytes: int = 256 * KB
    shared_memory_bytes: int = 96 * KB
    max_threads: int = 2048
    max_tbs: int = 32
    warp_schedulers: int = 4
    warp_size: int = 32

    @property
    def max_warps(self) -> int:
        return self.max_threads // self.warp_size


@dataclass(frozen=True)
class LatencyConfig:
    """Pipeline and memory latencies, in core cycles.

    ``dram`` is the row-miss (precharge + activate + CAS) latency;
    ``dram_row_hit`` is the open-row CAS-only latency that sequential
    streams enjoy.
    """

    alu: int = 4
    sfu: int = 16
    shared_mem: int = 24
    l1_hit: int = 28
    l2_hit: int = 120
    dram: int = 340
    dram_row_hit: int = 160
    interconnect: int = 8
    barrier_release: int = 1


@dataclass(frozen=True)
class MemoryConfig:
    """Cache geometry and memory-controller bandwidth model.

    Each memory controller services one line-sized request every
    ``mc_service_interval`` core cycles; requests queue FCFS behind the
    controller, which is how bandwidth contention between co-running kernels
    arises.  Each controller owns a private slice of L2 (Section 2.1).
    """

    line_size: int = 128
    l1_size: int = 24 * KB
    l1_assoc: int = 6
    l1_mshrs: int = 48
    l2_slice_size: int = 512 * KB
    l2_assoc: int = 16
    mc_service_interval: int = 2
    #: DRAM geometry behind each controller: banks with one open row each.
    #: Rows hold ``dram_row_lines`` consecutive cache lines; consecutive
    #: rows interleave across banks.  Set ``dram_banks=0`` to disable the
    #: bank model (flat row-miss latency for every DRAM access).
    dram_banks: int = 8
    dram_row_lines: int = 16
    latency: LatencyConfig = field(default_factory=LatencyConfig)


@dataclass(frozen=True)
class PreemptionConfig:
    """Preemption cost model (Section 2.3 / 4.8, HSA preemption kinds).

    ``mode="save"`` is the partial context switch of the SMK papers [41,42]:
    saving a TB writes its registers and shared-memory partition to device
    memory; we charge a drain window plus a store phase proportional to the
    context footprint, during which the TB occupies its resources but issues
    nothing.  ``mode="reset"`` is HSA's context reset as used by Chimera
    [31]: the context is dropped — eviction is instantaneous but the TB's
    partial progress is wasted (re-executed by a future TB), which the
    engine accounts as ``wasted_thread_insts``.

    ``enabled=False`` makes save-mode eviction free, the knob behind the
    Section 4.8 preemption-overhead ablation.
    """

    enabled: bool = True
    mode: str = "save"
    drain_cycles: int = 200
    bytes_per_cycle: int = 256

    def __post_init__(self) -> None:
        if self.mode not in ("save", "reset"):
            raise ValueError(f"unknown preemption mode {self.mode!r}")

    def eviction_cycles(self, context_bytes: int) -> int:
        if not self.enabled or self.mode == "reset":
            return 0
        return self.drain_cycles + context_bytes // self.bytes_per_cycle


@dataclass(frozen=True)
class ControllerConfig:
    """Gain presets for the pluggable SLO quota controllers
    (:mod:`repro.controllers`).

    Living on :class:`GPUConfig` makes every gain part of the machine
    description — it is hashed into persistent case-cache keys, so tuning a
    gain can never serve a stale cached record.

    PID terms act on the *normalised* IPC-goal residual
    ``(goal - epoch_ipc) / goal``; the controller output is a quota scale
    (the alpha of Section 3.4.2), clamped to ``[alpha_floor, alpha_cap]``
    with conditional-integration anti-windup at the clamps.

    The MPC controller fits a linear epoch-IPC-vs-quota-scale model over a
    ring of the last ``mpc_history`` epochs and evaluates
    ``mpc_candidates`` equally spaced candidate scales, rejecting those
    predicted to push aggregate non-QoS IPC below ``mpc_nonqos_floor``
    times its observed peak; with fewer than ``mpc_min_points`` usable
    points (or a degenerate/non-positive slope) it falls back to the
    History control law.
    """

    alpha_floor: float = 0.25
    alpha_cap: float = 8.0
    pid_kp: float = 1.2
    pid_ki: float = 0.5
    pid_kd: float = 0.3
    pid_integral_limit: float = 12.0
    mpc_history: int = 8
    mpc_min_points: int = 4
    mpc_candidates: int = 25
    mpc_nonqos_floor: float = 0.4
    mpc_overshoot_weight: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha_floor <= 1.0:
            raise ValueError("alpha_floor must be in (0, 1]")
        if self.alpha_cap < 1.0:
            raise ValueError("alpha_cap must be at least 1")
        if self.pid_integral_limit <= 0:
            raise ValueError("pid_integral_limit must be positive")
        if self.mpc_history < 2 or self.mpc_min_points < 2:
            raise ValueError("MPC needs at least two history points")
        if self.mpc_candidates < 2:
            raise ValueError("mpc_candidates must be at least 2")
        if not 0.0 <= self.mpc_nonqos_floor < 1.0:
            raise ValueError("mpc_nonqos_floor must be in [0, 1)")


#: The one registry of simulation-core variants, shared by
#: :class:`GPUConfig` validation and the CLI ``--engine-core`` choices.
#: ``"event"``: event-driven core (per-SM sleep skipping, two-tier warp wake
#: queues).  ``"scan"``: reference per-cycle-scan core kept for differential
#: testing.  ``"batch"``: windowed struct-of-arrays core
#: (:mod:`repro.sim.batch`) that advances whole SMs in bulk between
#: control-flow edges.  All three produce record-for-record identical
#: results.
ENGINE_CORES = ("event", "scan", "batch")


@dataclass(frozen=True)
class GPUConfig:
    """Complete machine description handed to :class:`repro.sim.GPUSimulator`."""

    num_sms: int = 16
    num_mcs: int = 4
    core_freq_mhz: float = 1216.0
    mem_freq_mhz: float = 7000.0
    scheduler_policy: str = "gto"
    #: Simulation-core variant; see :data:`ENGINE_CORES`.
    engine_core: str = "event"
    epoch_length: int = 10_000
    idle_warp_samples: int = 100
    sm: SMConfig = field(default_factory=SMConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    preemption: PreemptionConfig = field(default_factory=PreemptionConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.num_mcs <= 0:
            raise ValueError("num_mcs must be positive")
        if self.epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if self.scheduler_policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {self.scheduler_policy!r}")
        if self.engine_core not in ENGINE_CORES:
            accepted = ", ".join(repr(core) for core in ENGINE_CORES)
            raise ValueError(f"unknown engine core {self.engine_core!r} "
                             f"(accepted: {accepted})")

    def scaled(self, **overrides) -> "GPUConfig":
        """Return a copy with the given fields replaced (convenience wrapper)."""
        return replace(self, **overrides)


def gpu_config_from_dict(data: dict) -> GPUConfig:
    """Rebuild a :class:`GPUConfig` from its ``dataclasses.asdict`` form.

    The experiment store (:mod:`repro.harness.expdb`) persists the machine
    description of every registered sweep as a nested dict; resuming an
    interrupted sweep reconstructs the exact machine from it.  Unknown keys
    are rejected (a schema drift should fail loudly, not run on defaults).
    """
    payload = dict(data)
    memory = dict(payload.pop("memory", {}))
    latency = memory.pop("latency", None)
    if latency is not None:
        memory["latency"] = LatencyConfig(**latency)
    return GPUConfig(
        sm=SMConfig(**payload.pop("sm", {})),
        memory=MemoryConfig(**memory),
        preemption=PreemptionConfig(**payload.pop("preemption", {})),
        controller=ControllerConfig(**payload.pop("controller", {})),
        **payload,
    )


PAPER_GPU = GPUConfig()

PASCAL56_GPU = GPUConfig(
    num_sms=56,
    sm=SMConfig(warp_schedulers=2),
)

# The fast preset keeps the paper's per-SM shape (4 schedulers, 2048 threads,
# 32 TBs) but simulates 4 SMs against 1 MC, preserving the paper's 4:1
# SM-to-MC ratio and therefore the per-SM share of memory bandwidth.
FAST_GPU = GPUConfig(
    num_sms=4,
    num_mcs=1,
    epoch_length=1_000,
    idle_warp_samples=20,
    memory=MemoryConfig(l2_slice_size=256 * KB),
)


def preset(name: str) -> GPUConfig:
    """Look up a named configuration preset.

    >>> preset("paper").num_sms
    16
    """
    presets = {"paper": PAPER_GPU, "pascal56": PASCAL56_GPU, "fast": FAST_GPU}
    try:
        return presets[name]
    except KeyError:
        raise ValueError(f"unknown preset {name!r}; choose from {sorted(presets)}") from None
