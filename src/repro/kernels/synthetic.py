"""Parameterised synthetic workload generators.

Beyond the Parboil models, these build kernels from first principles for
calibration, tests, and sensitivity studies:

* :func:`compute_kernel` — issue-bound ALU/SFU work with tunable ILP;
* :func:`streaming_kernel` — bandwidth-bound sequential access;
* :func:`irregular_kernel` — gather/scatter with uncoalesced fan-out;
* :func:`cache_resident_kernel` — a working set sized to a cache level;
* :func:`barrier_kernel` — tightly synchronised shared-memory phases;
* :func:`microbenchmark_suite` — one of each, for sweep-style studies.

All generators return ordinary :class:`~repro.kernels.KernelSpec` objects,
so everything in the library (policies, harness, power model) works on them
unchanged.
"""

from __future__ import annotations

from typing import Dict

from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern

MB = 1024 * 1024


def compute_kernel(name: str = "syn-compute", *, ilp: float = 0.8,
                   sfu_fraction: float = 0.1,
                   threads_per_tb: int = 128,
                   regs_per_thread: int = 32) -> KernelSpec:
    """An issue-bound kernel: tiny footprint, high reuse, mostly ALU."""
    alu = 0.92 - sfu_fraction
    return KernelSpec(
        name=name,
        threads_per_tb=threads_per_tb,
        regs_per_thread=regs_per_thread,
        mix=InstructionMix(alu=alu, sfu=sfu_fraction, ldg=0.04, stg=0.02,
                           lds=0.02),
        memory=MemoryPattern(footprint_bytes=2 * MB, coalesced_fraction=1.0,
                             reuse_fraction=0.9),
        ilp=ilp,
        body_length=96,
        iterations_per_tb=4,
        intensity="compute",
    )


def streaming_kernel(name: str = "syn-stream", *,
                     footprint_mb: int = 256,
                     store_fraction: float = 0.15,
                     threads_per_tb: int = 128) -> KernelSpec:
    """A bandwidth-bound kernel: perfectly coalesced sequential sweep."""
    if not 0.0 <= store_fraction <= 0.4:
        raise ValueError("store_fraction must be in [0, 0.4]")
    ldg = 0.45 - store_fraction / 2
    return KernelSpec(
        name=name,
        threads_per_tb=threads_per_tb,
        regs_per_thread=24,
        mix=InstructionMix(alu=1.0 - ldg - store_fraction, sfu=0.0,
                           ldg=ldg, stg=store_fraction, lds=0.0),
        memory=MemoryPattern(footprint_bytes=footprint_mb * MB,
                             coalesced_fraction=1.0, reuse_fraction=0.02),
        ilp=0.4,
        body_length=64,
        iterations_per_tb=2,
        intensity="memory",
    )


def irregular_kernel(name: str = "syn-gather", *,
                     fanout: int = 8,
                     footprint_mb: int = 128) -> KernelSpec:
    """A gather/scatter kernel: mostly uncoalesced random access."""
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    return KernelSpec(
        name=name,
        threads_per_tb=192,
        regs_per_thread=24,
        mix=InstructionMix(alu=0.45, sfu=0.0, ldg=0.42, stg=0.08, lds=0.05),
        memory=MemoryPattern(footprint_bytes=footprint_mb * MB,
                             coalesced_fraction=0.15,
                             uncoalesced_degree=fanout,
                             reuse_fraction=0.05),
        ilp=0.3,
        divergence=0.25,
        body_length=64,
        iterations_per_tb=2,
        intensity="memory",
    )


def cache_resident_kernel(name: str = "syn-cached", *,
                          working_set_kb: int = 256) -> KernelSpec:
    """A kernel whose working set targets a specific cache capacity.

    Size it under the L2 slice to make an L2-resident workload, or under
    the L1 to make an L1-resident one — useful for isolating where
    co-runner interference happens.
    """
    if working_set_kb <= 0:
        raise ValueError("working_set_kb must be positive")
    return KernelSpec(
        name=name,
        threads_per_tb=128,
        regs_per_thread=28,
        mix=InstructionMix(alu=0.55, sfu=0.0, ldg=0.35, stg=0.05, lds=0.05),
        memory=MemoryPattern(footprint_bytes=working_set_kb * 1024,
                             coalesced_fraction=1.0, reuse_fraction=0.3),
        ilp=0.5,
        body_length=72,
        iterations_per_tb=3,
        intensity="memory" if working_set_kb > 512 else "compute",
    )


def barrier_kernel(name: str = "syn-barrier", *,
                   threads_per_tb: int = 256,
                   smem_kb: int = 16) -> KernelSpec:
    """A phase-synchronised kernel: shared-memory staging + TB barriers."""
    return KernelSpec(
        name=name,
        threads_per_tb=threads_per_tb,
        regs_per_thread=32,
        smem_per_tb_bytes=smem_kb * 1024,
        mix=InstructionMix(alu=0.6, sfu=0.0, ldg=0.08, stg=0.02, lds=0.3,
                           barrier_per_iteration=True),
        memory=MemoryPattern(footprint_bytes=8 * MB, coalesced_fraction=0.9,
                             reuse_fraction=0.5),
        ilp=0.6,
        body_length=80,
        iterations_per_tb=4,
        intensity="compute",
    )


def microbenchmark_suite() -> Dict[str, KernelSpec]:
    """One kernel of each archetype, keyed by archetype name."""
    return {
        "compute": compute_kernel(),
        "streaming": streaming_kernel(),
        "irregular": irregular_kernel(),
        "cache-resident": cache_resident_kernel(),
        "barrier": barrier_kernel(),
    }
