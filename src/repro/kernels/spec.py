"""Kernel descriptions: the static facts the TB scheduler and SMs need.

A :class:`KernelSpec` is everything the hardware can know about a kernel at
launch time (Section 2.2): the per-thread resource demand determined by the
compiler, the TB geometry chosen by the programmer, and — for our synthetic
workloads — a behavioural profile from which per-warp instruction streams are
generated deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

REGISTER_BYTES = 4  # one architectural register


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of each operation class in the kernel's loop body.

    Fractions must sum to 1.  ``barrier_per_iteration`` adds one TB-wide
    barrier at the end of each loop body on top of the mix.
    """

    alu: float = 0.6
    sfu: float = 0.0
    ldg: float = 0.25
    stg: float = 0.05
    lds: float = 0.1
    barrier_per_iteration: bool = False

    def __post_init__(self) -> None:
        total = self.alu + self.sfu + self.ldg + self.stg + self.lds
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"instruction mix must sum to 1, got {total}")
        for name in ("alu", "sfu", "ldg", "stg", "lds"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative fraction for {name}")


@dataclass(frozen=True)
class MemoryPattern:
    """Global memory behaviour of a kernel.

    ``footprint_bytes``
        Size of the region the kernel streams over; small footprints cache
        well in L2, large ones stress DRAM bandwidth.
    ``coalesced_fraction``
        Probability that a warp load/store coalesces into a single line-sized
        request; the remainder fans out into ``uncoalesced_degree`` requests.
    ``reuse_fraction``
        Probability that an access re-reads a recently touched line instead
        of advancing the stream — models intra-kernel locality and gives the
        L1 something to do.
    """

    footprint_bytes: int = 64 * 1024 * 1024
    coalesced_fraction: float = 1.0
    uncoalesced_degree: int = 8
    reuse_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ValueError("footprint_bytes must be positive")
        if not 0.0 <= self.coalesced_fraction <= 1.0:
            raise ValueError("coalesced_fraction must be in [0, 1]")
        if not 0.0 <= self.reuse_fraction <= 1.0:
            raise ValueError("reuse_fraction must be in [0, 1]")
        if self.uncoalesced_degree < 1:
            raise ValueError("uncoalesced_degree must be >= 1")


@dataclass(frozen=True)
class KernelSpec:
    """A launchable kernel: geometry, static resources, behavioural profile."""

    name: str
    threads_per_tb: int = 256
    regs_per_thread: int = 32
    smem_per_tb_bytes: int = 0
    mix: InstructionMix = field(default_factory=InstructionMix)
    memory: MemoryPattern = field(default_factory=MemoryPattern)
    ilp: float = 0.5
    divergence: float = 0.0
    body_length: int = 96
    iterations_per_tb: int = 24
    intensity: str = "compute"

    def __post_init__(self) -> None:
        if self.threads_per_tb <= 0 or self.threads_per_tb % 32 != 0:
            raise ValueError("threads_per_tb must be a positive multiple of 32")
        if self.regs_per_thread <= 0:
            raise ValueError("regs_per_thread must be positive")
        if self.smem_per_tb_bytes < 0:
            raise ValueError("smem_per_tb_bytes must be non-negative")
        if not 0.0 <= self.ilp <= 1.0:
            raise ValueError("ilp must be in [0, 1]")
        if not 0.0 <= self.divergence <= 1.0:
            raise ValueError("divergence must be in [0, 1]")
        if self.body_length <= 0 or self.iterations_per_tb <= 0:
            raise ValueError("body_length and iterations_per_tb must be positive")
        if self.intensity not in ("compute", "memory"):
            raise ValueError("intensity must be 'compute' or 'memory'")

    @property
    def warps_per_tb(self) -> int:
        return self.threads_per_tb // 32

    @property
    def regs_per_tb_bytes(self) -> int:
        return self.regs_per_thread * REGISTER_BYTES * self.threads_per_tb

    @property
    def context_bytes(self) -> int:
        """Bytes a partial context switch must save for one TB."""
        return self.regs_per_tb_bytes + self.smem_per_tb_bytes

    def resource_vector(self) -> dict:
        """Per-TB demand against the four SM admission limits."""
        return {
            "registers_bytes": self.regs_per_tb_bytes,
            "shared_memory_bytes": self.smem_per_tb_bytes,
            "threads": self.threads_per_tb,
            "tbs": 1,
        }

    def max_tbs_per_sm(self, sm_config) -> int:
        """How many of this kernel's TBs one SM can host in isolation.

        Mirrors the admission rule of Section 2.2: take TBs until one of the
        four resources (registers, shared memory, threads, TB slots) runs out.
        """
        limits = [
            sm_config.registers_bytes // self.regs_per_tb_bytes,
            sm_config.max_threads // self.threads_per_tb,
            sm_config.max_tbs,
        ]
        if self.smem_per_tb_bytes > 0:
            limits.append(sm_config.shared_memory_bytes // self.smem_per_tb_bytes)
        return max(0, min(limits))
