"""Synthetic workload models standing in for the Parboil benchmark suite.

The paper drives its evaluation with 10 Parboil benchmarks compiled to real
GPU binaries.  Reproducing that requires a SASS/PTX front end; instead each
benchmark is modelled as a :class:`KernelSpec` — TB geometry, per-thread
static resources, an instruction mix, an ILP/divergence profile and a global
memory access pattern — calibrated so that its architectural behaviour
(compute- vs memory-bound, TLP sensitivity, cache footprint) matches the
published characterisation.  The QoS mechanisms under study observe only this
architectural behaviour, so the substitution preserves the phenomena the
paper measures (see DESIGN.md).
"""

from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern
from repro.kernels.trace import WarpProgram, build_pattern
from repro.kernels.fusion import fuse_kernels, fused_share
from repro.kernels.parboil import (
    PARBOIL,
    PARBOIL_NAMES,
    COMPUTE_INTENSIVE,
    MEMORY_INTENSIVE,
    get_kernel,
    intensity_class,
    pair_class,
)

__all__ = [
    "InstructionMix",
    "KernelSpec",
    "MemoryPattern",
    "WarpProgram",
    "build_pattern",
    "fuse_kernels",
    "fused_share",
    "PARBOIL",
    "PARBOIL_NAMES",
    "COMPUTE_INTENSIVE",
    "MEMORY_INTENSIVE",
    "get_kernel",
    "intensity_class",
    "pair_class",
]
