"""Workload characterisation: measure what a kernel model actually does.

Papers characterise their benchmarks with tables of achieved IPC, memory
intensity and TLP sensitivity; this module produces the same table for any
set of :class:`~repro.kernels.KernelSpec` on any machine, and is how the
Parboil models in :mod:`repro.kernels.parboil` were calibrated against the
published compute/memory split.

Run as a script::

    python -m repro.kernels.characterize            # Parboil on FAST_GPU
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import FAST_GPU, GPUConfig
from repro.kernels.parboil import PARBOIL
from repro.kernels.spec import KernelSpec
from repro.sim import GPUSimulator, LaunchedKernel, SharingPolicy


@dataclass(frozen=True)
class KernelProfile:
    """Measured characteristics of one kernel in isolation."""

    name: str
    declared_intensity: str
    ipc: float
    peak_fraction: float
    l1_hit_rate: float
    l2_hit_rate: float
    dram_lines_per_kcycle: float
    bandwidth_utilisation: float
    tlp_half_fraction: float  # IPC at half TB fill / IPC at full fill

    @property
    def measured_intensity(self) -> str:
        """'M' when bandwidth dominates, else 'C' — the Figure 7 classes.

        The threshold sits in the empirical gap of the Parboil models:
        memory-intensive kernels saturate 70-95% of controller bandwidth,
        compute-intensive ones stay at or below ~55% (sad, which streams
        reference frames, is the borderline case).
        """
        return "M" if self.bandwidth_utilisation > 0.6 else "C"

    @property
    def classification_consistent(self) -> bool:
        declared = "M" if self.declared_intensity == "memory" else "C"
        return declared == self.measured_intensity


class _CappedFill(SharingPolicy):
    """Host at most a fraction of the kernel's max TBs per SM."""

    def __init__(self, fraction: float):
        self.fraction = fraction

    def setup(self, ctx) -> None:
        spec = ctx.kernels[0].spec
        ceiling = spec.max_tbs_per_sm(ctx.config.sm)
        target = max(1, int(round(ceiling * self.fraction)))
        for sm_id in range(ctx.num_sms):
            ctx.set_tb_target(sm_id, 0, target)


def _run(spec: KernelSpec, gpu: GPUConfig, cycles: int,
         fill: Optional[float] = None):
    policy = _CappedFill(fill) if fill is not None else None
    sim = GPUSimulator(gpu, [LaunchedKernel(spec)], policy)
    sim.run(max(1, cycles // 10))
    sim.mark_measurement_start()
    sim.run(cycles)
    return sim.result()


def characterize(spec: KernelSpec, gpu: GPUConfig = FAST_GPU,
                 cycles: int = 16_000) -> KernelProfile:
    """Profile one kernel in isolation on ``gpu``."""
    result = _run(spec, gpu, cycles)
    half = _run(spec, gpu, cycles, fill=0.5)
    kernel = result.kernels[0]
    aggregate = result.memory_aggregate
    l1_accesses = aggregate["l1_hits"] + aggregate["l1_misses"]
    l2_accesses = aggregate["l2_hits"] + aggregate["l2_misses"]
    peak_ipc = gpu.num_sms * gpu.sm.warp_schedulers * gpu.sm.warp_size
    dram_lines = aggregate["l2_misses"] + aggregate["l2_writebacks"]
    # Each MC retires one line per service interval: the bandwidth ceiling.
    capacity = (gpu.num_mcs / gpu.memory.mc_service_interval) * result.cycles
    return KernelProfile(
        name=spec.name,
        declared_intensity=spec.intensity,
        ipc=kernel.ipc,
        peak_fraction=kernel.ipc / peak_ipc,
        l1_hit_rate=aggregate["l1_hits"] / l1_accesses if l1_accesses else 0.0,
        l2_hit_rate=aggregate["l2_hits"] / l2_accesses if l2_accesses else 0.0,
        dram_lines_per_kcycle=1000.0 * dram_lines / result.cycles,
        bandwidth_utilisation=dram_lines / capacity if capacity else 0.0,
        tlp_half_fraction=(half.kernels[0].ipc / kernel.ipc
                           if kernel.ipc else 0.0),
    )


def characterize_suite(specs: Optional[Dict[str, KernelSpec]] = None,
                       gpu: GPUConfig = FAST_GPU,
                       cycles: int = 16_000) -> List[KernelProfile]:
    """Profile a whole registry (default: the Parboil models)."""
    specs = specs if specs is not None else PARBOIL
    return [characterize(spec, gpu, cycles)
            for _name, spec in sorted(specs.items())]


def format_profiles(profiles: Sequence[KernelProfile]) -> str:
    header = (f"{'kernel':<14}{'class':>6}{'IPC':>9}{'peak%':>8}"
              f"{'L1':>7}{'L2':>7}{'BW%':>7}{'TLP/2':>8}{'ok':>4}")
    lines = [header, "-" * len(header)]
    for profile in profiles:
        lines.append(
            f"{profile.name:<14}"
            f"{profile.declared_intensity[0].upper():>6}"
            f"{profile.ipc:>9.1f}"
            f"{profile.peak_fraction:>8.1%}"
            f"{profile.l1_hit_rate:>7.1%}"
            f"{profile.l2_hit_rate:>7.1%}"
            f"{profile.bandwidth_utilisation:>7.1%}"
            f"{profile.tlp_half_fraction:>8.2f}"
            f"{'y' if profile.classification_consistent else 'N':>4}")
    return "\n".join(lines)


def main() -> int:
    profiles = characterize_suite()
    print(format_profiles(profiles))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
