"""Deterministic warp instruction stream generation.

Each kernel's loop body is expanded once into a tuple of
:class:`~repro.isa.WarpInstruction` (the *pattern*); every warp of every TB
walks the same pattern for ``iterations_per_tb`` rounds, offset by its warp
id so that co-resident warps are not phase-locked.  Generation is seeded by
the kernel name, so a given spec always produces the same stream — the whole
simulator is reproducible bit-for-bit for a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.isa import Opcode, WarpInstruction
from repro.kernels.spec import KernelSpec

_DIVERGED_LANE_CHOICES = (8, 16, 24)


def _opcode_counts(spec: KernelSpec) -> dict:
    """Integer opcode counts for one loop body, matching the mix exactly.

    Largest-remainder apportionment: floors first, then distribute the
    leftover slots to the largest fractional remainders so the counts always
    sum to ``body_length``.
    """
    mix = spec.mix
    fractions = {
        Opcode.ALU: mix.alu,
        Opcode.SFU: mix.sfu,
        Opcode.LDG: mix.ldg,
        Opcode.STG: mix.stg,
        Opcode.LDS: mix.lds,
    }
    raw = {op: frac * spec.body_length for op, frac in fractions.items()}
    counts = {op: int(value) for op, value in raw.items()}
    shortfall = spec.body_length - sum(counts.values())
    remainders = sorted(raw, key=lambda op: raw[op] - counts[op], reverse=True)
    for op in remainders[:shortfall]:
        counts[op] += 1
    return counts


def build_pattern(spec: KernelSpec) -> Tuple[WarpInstruction, ...]:
    """Expand a kernel's loop body into a concrete instruction pattern.

    Opcodes are interleaved evenly (memory operations spread through the
    body rather than clustered), dependence flags are drawn with probability
    ``1 - ilp`` and divergence with probability ``divergence``, all from an
    RNG seeded by the kernel name.
    """
    rng = random.Random(f"pattern:{spec.name}")
    counts = _opcode_counts(spec)

    # Even interleave: emit each opcode at evenly spaced fractional positions,
    # then sort by position.  This avoids bursts of loads that would make the
    # memory model unrealistically spiky.
    placed = []
    for op, count in counts.items():
        for i in range(count):
            position = (i + 0.5) / count if count else 0.0
            placed.append((position, rng.random(), op))
    placed.sort()

    body = []
    for _position, _tiebreak, op in placed:
        dependent = rng.random() >= spec.ilp
        if op in (Opcode.LDG, Opcode.STG):
            dependent = True  # loads always block their consumer in this model
        lanes = 32
        if spec.divergence and rng.random() < spec.divergence:
            lanes = rng.choice(_DIVERGED_LANE_CHOICES)
        body.append(WarpInstruction(op, active_lanes=lanes, dependent=dependent))

    if spec.mix.barrier_per_iteration:
        body.append(WarpInstruction(Opcode.BAR, active_lanes=32, dependent=True))
    return tuple(body)


@dataclass(frozen=True)
class WarpProgram:
    """The immutable program every warp of a kernel executes.

    ``instruction(index)`` maps a warp's linear instruction counter onto the
    pattern; the warp is done after ``length`` instructions.
    """

    pattern: Tuple[WarpInstruction, ...]
    iterations: int

    @classmethod
    def for_spec(cls, spec: KernelSpec) -> "WarpProgram":
        return cls(pattern=build_pattern(spec), iterations=spec.iterations_per_tb)

    @property
    def length(self) -> int:
        return len(self.pattern) * self.iterations

    def instruction(self, index: int) -> WarpInstruction:
        if index < 0 or index >= self.length:
            raise IndexError(f"instruction index {index} out of range")
        return self.pattern[index % len(self.pattern)]

    def thread_instructions(self) -> int:
        """Total thread-level instructions one warp retires (divergence-aware)."""
        per_body = sum(inst.active_lanes for inst in self.pattern)
        return per_body * self.iterations
