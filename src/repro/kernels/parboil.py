"""Models of the 10 Parboil benchmarks used in the paper's evaluation.

Section 4.1: "We use 10 benchmarks from the Parboil benchmark set.  bfs is
not used because it is too small to interfere with any sharer kernels."  The
largest datasets are used, and benchmarks shorter than the simulation window
are re-executed — our TB supply is unbounded, which models exactly that.

Each model is calibrated to the benchmark's published architectural
character, most importantly the compute- vs memory-intensive split the paper
relies on in Figure 7:

* compute-intensive (C): ``cutcp``, ``mri-q``, ``sad``, ``sgemm``, ``tpacf``
* memory-intensive (M): ``histo``, ``lbm``, ``mri-gridding``, ``spmv``,
  ``stencil``

Secondary traits carried over from the Parboil characterisation: ``sgemm``
and ``cutcp`` are shared-memory tiled with barriers; ``mri-q`` and ``tpacf``
lean on special-function units; ``spmv`` and ``mri-gridding`` are irregular
(uncoalesced) while ``lbm`` and ``stencil`` are streaming; ``histo`` runs
short kernels (small per-TB work), which is why the paper finds neither
scheme handles it well.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern

MB = 1024 * 1024

PARBOIL: Dict[str, KernelSpec] = {}


def _register(spec: KernelSpec) -> KernelSpec:
    if spec.name in PARBOIL:
        raise ValueError(f"duplicate benchmark {spec.name!r}")
    PARBOIL[spec.name] = spec
    return spec


_register(KernelSpec(
    name="cutcp",
    threads_per_tb=128,
    regs_per_thread=40,
    smem_per_tb_bytes=4 * 1024,
    mix=InstructionMix(alu=0.78, sfu=0.06, ldg=0.05, stg=0.02, lds=0.09,
                       barrier_per_iteration=True),
    memory=MemoryPattern(footprint_bytes=8 * MB, coalesced_fraction=0.95,
                         reuse_fraction=0.93),
    ilp=0.6,
    divergence=0.05,
    body_length=112,
    iterations_per_tb=4,
    intensity="compute",
))

_register(KernelSpec(
    name="histo",
    threads_per_tb=256,
    regs_per_thread=20,
    smem_per_tb_bytes=8 * 1024,
    mix=InstructionMix(alu=0.42, sfu=0.0, ldg=0.28, stg=0.18, lds=0.12),
    memory=MemoryPattern(footprint_bytes=96 * MB, coalesced_fraction=0.45,
                         uncoalesced_degree=4, reuse_fraction=0.1),
    ilp=0.35,
    divergence=0.15,
    body_length=64,
    iterations_per_tb=2,  # short kernels: little work per TB
    intensity="memory",
))

_register(KernelSpec(
    name="lbm",
    threads_per_tb=128,
    regs_per_thread=84,
    smem_per_tb_bytes=0,
    mix=InstructionMix(alu=0.52, sfu=0.0, ldg=0.30, stg=0.18, lds=0.0),
    memory=MemoryPattern(footprint_bytes=256 * MB, coalesced_fraction=0.9,
                         reuse_fraction=0.05),
    ilp=0.55,
    divergence=0.02,
    body_length=128,
    iterations_per_tb=2,
    intensity="memory",
))

_register(KernelSpec(
    name="mri-gridding",
    threads_per_tb=256,
    regs_per_thread=36,
    smem_per_tb_bytes=2 * 1024,
    mix=InstructionMix(alu=0.48, sfu=0.04, ldg=0.30, stg=0.12, lds=0.06),
    memory=MemoryPattern(footprint_bytes=128 * MB, coalesced_fraction=0.35,
                         uncoalesced_degree=4, reuse_fraction=0.15),
    ilp=0.4,
    divergence=0.2,
    body_length=96,
    iterations_per_tb=3,
    intensity="memory",
))

_register(KernelSpec(
    name="mri-q",
    threads_per_tb=256,
    regs_per_thread=24,
    smem_per_tb_bytes=0,
    mix=InstructionMix(alu=0.68, sfu=0.24, ldg=0.05, stg=0.03, lds=0.0),
    memory=MemoryPattern(footprint_bytes=4 * MB, coalesced_fraction=1.0,
                         reuse_fraction=0.9),
    ilp=0.7,
    divergence=0.0,
    body_length=100,
    iterations_per_tb=5,
    intensity="compute",
))

_register(KernelSpec(
    name="sad",
    threads_per_tb=64,
    regs_per_thread=28,
    smem_per_tb_bytes=1024,
    mix=InstructionMix(alu=0.78, sfu=0.0, ldg=0.10, stg=0.06, lds=0.06),
    memory=MemoryPattern(footprint_bytes=12 * MB, coalesced_fraction=0.95,
                         uncoalesced_degree=2, reuse_fraction=0.85),
    ilp=0.55,
    divergence=0.1,
    body_length=80,
    iterations_per_tb=4,
    intensity="compute",
))

_register(KernelSpec(
    name="sgemm",
    threads_per_tb=128,
    regs_per_thread=48,
    smem_per_tb_bytes=8 * 1024,
    mix=InstructionMix(alu=0.74, sfu=0.0, ldg=0.08, stg=0.02, lds=0.16,
                       barrier_per_iteration=True),
    memory=MemoryPattern(footprint_bytes=16 * MB, coalesced_fraction=1.0,
                         reuse_fraction=0.88),
    ilp=0.75,
    divergence=0.0,
    body_length=120,
    iterations_per_tb=4,
    intensity="compute",
))

_register(KernelSpec(
    name="spmv",
    threads_per_tb=192,
    regs_per_thread=22,
    smem_per_tb_bytes=0,
    mix=InstructionMix(alu=0.40, sfu=0.0, ldg=0.48, stg=0.06, lds=0.06),
    memory=MemoryPattern(footprint_bytes=160 * MB, coalesced_fraction=0.3,
                         uncoalesced_degree=4, reuse_fraction=0.1),
    ilp=0.3,
    divergence=0.25,
    body_length=72,
    iterations_per_tb=3,
    intensity="memory",
))

_register(KernelSpec(
    name="stencil",
    threads_per_tb=128,
    regs_per_thread=30,
    smem_per_tb_bytes=0,
    mix=InstructionMix(alu=0.50, sfu=0.0, ldg=0.36, stg=0.14, lds=0.0),
    memory=MemoryPattern(footprint_bytes=192 * MB, coalesced_fraction=0.85,
                         reuse_fraction=0.3),
    ilp=0.5,
    divergence=0.02,
    body_length=88,
    iterations_per_tb=3,
    intensity="memory",
))

_register(KernelSpec(
    name="tpacf",
    threads_per_tb=256,
    regs_per_thread=34,
    smem_per_tb_bytes=12 * 1024,
    mix=InstructionMix(alu=0.62, sfu=0.18, ldg=0.06, stg=0.02, lds=0.12,
                       barrier_per_iteration=True),
    memory=MemoryPattern(footprint_bytes=6 * MB, coalesced_fraction=0.9,
                         reuse_fraction=0.93),
    ilp=0.6,
    divergence=0.12,
    body_length=104,
    iterations_per_tb=3,
    intensity="compute",
))


PARBOIL_NAMES: Tuple[str, ...] = tuple(sorted(PARBOIL))
COMPUTE_INTENSIVE: Tuple[str, ...] = tuple(
    name for name in PARBOIL_NAMES if PARBOIL[name].intensity == "compute")
MEMORY_INTENSIVE: Tuple[str, ...] = tuple(
    name for name in PARBOIL_NAMES if PARBOIL[name].intensity == "memory")


def get_kernel(name: str) -> KernelSpec:
    """Look up a benchmark model by name."""
    try:
        return PARBOIL[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {list(PARBOIL_NAMES)}") from None


def intensity_class(name: str) -> str:
    """'C' for compute-intensive benchmarks, 'M' for memory-intensive ones."""
    return "C" if get_kernel(name).intensity == "compute" else "M"


def pair_class(first: str, second: str) -> str:
    """The Figure 7 pairing category: 'C+C', 'C+M' or 'M+M'."""
    classes = sorted((intensity_class(first), intensity_class(second)))
    return f"{classes[0]}+{classes[1]}"
