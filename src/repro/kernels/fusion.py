"""Kernel fusion: the software sharing baseline (Section 2.3, type 2).

Kernel fusion / KernelMerge [39, 13, 30] statically compiles two kernels
into one, interleaving their code behind a thread-id branch so both are
resident in each SM.  Section 2.3 names its limitation: "hardware
recognizes multiple kernels as one kernel, and hence, it cannot control the
execution progress of each kernel.  Therefore, performance of particular
kernels and QoS cannot be guaranteed."

:func:`fuse_kernels` performs the analogous transformation on two
:class:`~repro.kernels.KernelSpec` models: the fused kernel's TBs carry a
thread-ratio blend of both mixes and the union of their static resource
demands.  Because the result *is one kernel*, the simulator's QoS machinery
sees a single progress counter — exactly the baseline's blindness.  The
per-kernel share of the fused kernel's retirement can only be estimated
post hoc with :func:`fused_share`, and nothing can steer it.
"""

from __future__ import annotations

from typing import Tuple

from repro.kernels.spec import InstructionMix, KernelSpec, MemoryPattern


def _blend(first: float, second: float, weight: float) -> float:
    return first * weight + second * (1.0 - weight)


def fuse_kernels(first: KernelSpec, second: KernelSpec,
                 thread_ratio: float = 0.5,
                 name: str = None) -> KernelSpec:
    """Statically fuse two kernel models into one.

    ``thread_ratio`` is the fraction of each fused TB's threads executing
    ``first``'s code (the KernelMerge-style static split, fixed at compile
    time — the reason dynamically arriving kernels cannot be serviced).
    The fused TB is sized to the larger of the two TBs; per-thread register
    demand is the max (the compiler must allocate for the hungrier path —
    fusion's well-known register-pressure cost) and shared memory is the
    sum (both kernels' buffers coexist).
    """
    if not 0.0 < thread_ratio < 1.0:
        raise ValueError("thread_ratio must be in (0, 1)")
    weight = thread_ratio
    mix = InstructionMix(
        alu=_blend(first.mix.alu, second.mix.alu, weight),
        sfu=_blend(first.mix.sfu, second.mix.sfu, weight),
        ldg=_blend(first.mix.ldg, second.mix.ldg, weight),
        stg=_blend(first.mix.stg, second.mix.stg, weight),
        lds=_blend(first.mix.lds, second.mix.lds, weight),
        barrier_per_iteration=(first.mix.barrier_per_iteration
                               or second.mix.barrier_per_iteration),
    )
    memory = MemoryPattern(
        footprint_bytes=(first.memory.footprint_bytes
                         + second.memory.footprint_bytes),
        coalesced_fraction=_blend(first.memory.coalesced_fraction,
                                  second.memory.coalesced_fraction, weight),
        uncoalesced_degree=max(first.memory.uncoalesced_degree,
                               second.memory.uncoalesced_degree),
        reuse_fraction=_blend(first.memory.reuse_fraction,
                              second.memory.reuse_fraction, weight),
    )
    intensity = "memory" if ("memory" in (first.intensity, second.intensity)
                             and mix.ldg + mix.stg >= 0.25) else (
        first.intensity if weight >= 0.5 else second.intensity)
    return KernelSpec(
        name=name or f"fused-{first.name}+{second.name}",
        threads_per_tb=max(first.threads_per_tb, second.threads_per_tb),
        regs_per_thread=max(first.regs_per_thread, second.regs_per_thread),
        smem_per_tb_bytes=first.smem_per_tb_bytes + second.smem_per_tb_bytes,
        mix=mix,
        memory=memory,
        ilp=_blend(first.ilp, second.ilp, weight),
        divergence=min(1.0, _blend(first.divergence, second.divergence,
                                   weight) + 0.05),  # the tid branch itself
        body_length=max(first.body_length, second.body_length),
        iterations_per_tb=max(first.iterations_per_tb,
                              second.iterations_per_tb),
        intensity=intensity,
    )


def fused_share(fused_ipc: float, thread_ratio: float) -> Tuple[float, float]:
    """Post-hoc estimate of each constituent's share of fused progress.

    All the software baseline can do: assume retirement splits by the
    static thread ratio.  There is no mechanism to *make* it so — which is
    the point of the comparison.
    """
    if fused_ipc < 0:
        raise ValueError("IPC cannot be negative")
    return fused_ipc * thread_ratio, fused_ipc * (1.0 - thread_ratio)
