"""The engine↔policy boundary: :class:`SharingPolicy` + :class:`PolicyContext`.

A sharing policy owns the *decisions* of Figure 3's control loop — initial
TB residency targets, per-epoch quota refresh, runtime TB reallocation —
while :class:`~repro.sim.engine.GPUSimulator` owns the machine.  Policies
never touch the engine directly: every hook receives a
:class:`PolicyContext`, a typed façade offering

* **observation** — per-kernel retired/issued deltas and epoch IPC (the
  frozen :class:`EpochView`), idle-warp samples, per-SM TB occupancy vs
  targets, quota counters, preemption-queue state;
* **actuation** — the narrow surface the paper's hardware exposes:
  :meth:`PolicyContext.set_quota`, :meth:`PolicyContext.set_tb_target`,
  :meth:`PolicyContext.request_preemption` (plus the Elastic-Epoch boundary
  pull and Spart's L1 flush);
* **telemetry notes** — :meth:`PolicyContext.note_quota` feeds the optional
  :class:`~repro.sim.telemetry.TelemetryRecorder` (a no-op when telemetry
  is off, so policies do not need to know whether anyone is listening).

This module depends only on config/spec types — never on the engine — so
``repro.qos``, ``repro.baselines`` and ``repro.sharing`` can import it
without inverting the layering (the engine imports *them* never, and *this
module* never imports the engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class EpochView:
    """Frozen per-epoch measurement snapshot, rebuilt at every boundary.

    All tuples are indexed by kernel index.  ``epoch_cycles`` spans from the
    previous epoch boundary (cycle 0 for the first), so ``epoch_ipc`` is the
    per-epoch rate the paper's manager compares against goals and
    ``cumulative_ipc`` is the history term of the alpha formula
    (Section 3.4.2).
    """

    index: int
    cycle: int
    epoch_cycles: int
    retired: Tuple[int, ...]
    retired_delta: Tuple[int, ...]
    epoch_ipc: Tuple[float, ...]
    cumulative_ipc: Tuple[float, ...]


class SharingPolicy:
    """Base sharing policy: fill every SM with every kernel, no QoS.

    Subclasses (the paper's QoS manager, Spart, serial execution, fairness)
    override the three hooks; each receives only a :class:`PolicyContext`.
    ``uses_quotas`` switches the Enhanced Warp Scheduler filter on in every
    SM.
    """

    name = "smk-unmanaged"
    uses_quotas = False

    def setup(self, ctx: "PolicyContext") -> None:
        """Set initial TB residency targets (default: greedy fill)."""
        max_tbs = ctx.config.sm.max_tbs
        for sm_id in range(ctx.num_sms):
            for kernel_idx in range(ctx.num_kernels):
                ctx.set_tb_target(sm_id, kernel_idx, max_tbs)

    def on_epoch_start(self, ctx: "PolicyContext", cycle: int,
                       epoch_index: int) -> None:
        """Called at every epoch boundary (including epoch 0 at setup)."""

    def on_quota_exhausted(self, ctx: "PolicyContext", sm_id: int,
                           kernel_idx: int, cycle: int) -> None:
        """Called when a kernel's local quota counter crosses zero."""

    def on_kernel_launched(self, ctx: "PolicyContext", kernel_idx: int,
                           cycle: int) -> None:
        """Called when a kernel joins mid-run (``GPUSimulator.launch_at``).

        The default mirrors :meth:`setup`: greedily fill every SM with the
        newcomer.  QoS policies may override to carve residency instead.
        """
        max_tbs = ctx.config.sm.max_tbs
        for sm_id in range(ctx.num_sms):
            ctx.set_tb_target(sm_id, kernel_idx, max_tbs)

    def on_kernel_retired(self, ctx: "PolicyContext", kernel_idx: int,
                          cycle: int) -> None:
        """Called when a finite-grid kernel's last TB completes."""


class PolicyContext:
    """What a policy may see and do between epochs.

    One context lives per :class:`~repro.sim.engine.GPUSimulator`; the
    engine advances it at every epoch boundary (before the policy hook
    runs), which is when :attr:`epoch` is refreshed.  All observation
    methods are read-only views over machine state; all actuation methods
    funnel through the same engine entry points the hardware proposal
    exposes, so a policy written against this class cannot depend on
    simulator internals.
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self.config = engine.config
        self.num_sms = engine.config.num_sms
        self._last_retired: List[int] = [0] * engine.num_kernels
        self._last_cycle = 0
        self._view: Optional[EpochView] = None

    @property
    def kernels(self) -> Tuple:
        """The launched kernels — read through to the engine, because the
        serving layer may launch kernels mid-run (``launch_at``)."""
        return tuple(self._engine.kernels)

    @property
    def num_kernels(self) -> int:
        return self._engine.num_kernels

    # ------------------------------------------------------------ epoch view

    @property
    def epoch(self) -> Optional[EpochView]:
        """The measurement snapshot of the epoch that just closed (None
        before the first boundary)."""
        return self._view

    def _advance_epoch(self, cycle: int) -> EpochView:
        """Build the boundary snapshot; called by the engine only.

        The arithmetic reproduces the manager's historical formulas exactly
        (same expressions, same operand order) so refactored policies stay
        float-for-float identical to the pre-context implementation.
        """
        engine = self._engine
        epoch_cycles = max(1, cycle - self._last_cycle)
        num_kernels = engine.num_kernels
        retired = tuple(stats.retired_thread_insts
                        for stats in engine.kernel_stats)
        last = self._last_retired
        if len(last) < num_kernels:
            # Kernels launched since the previous boundary enter the view
            # with a zero baseline: their first delta is everything they
            # retired since activation.
            last.extend([0] * (num_kernels - len(last)))
        retired_delta = tuple(retired[idx] - last[idx]
                              for idx in range(num_kernels))
        epoch_ipc = tuple((retired[idx] - last[idx]) / epoch_cycles
                          for idx in range(num_kernels))
        cumulative_ipc = tuple(retired[idx] / max(1, cycle)
                               for idx in range(num_kernels))
        view = EpochView(index=engine.epoch_index, cycle=cycle,
                         epoch_cycles=epoch_cycles, retired=retired,
                         retired_delta=retired_delta, epoch_ipc=epoch_ipc,
                         cumulative_ipc=cumulative_ipc)
        self._last_retired = list(retired)
        self._last_cycle = cycle
        self._view = view
        return view

    # ----------------------------------------------------------- observation

    @property
    def cycle(self) -> int:
        return self._engine.cycle

    @property
    def epoch_index(self) -> int:
        return self._engine.epoch_index

    def retired(self, kernel_idx: int) -> int:
        """Cumulative retired thread instructions of a kernel."""
        return self._engine.kernel_stats[kernel_idx].retired_thread_insts

    def total_tbs(self, kernel_idx: int) -> int:
        """Live (non-evicting) TBs of a kernel across the whole GPU."""
        return self._engine.total_tbs(kernel_idx)

    def tb_target(self, sm_id: int, kernel_idx: int) -> int:
        return self._engine.tb_targets[sm_id][kernel_idx]

    def tb_count(self, sm_id: int, kernel_idx: int) -> int:
        """Resident TBs of a kernel on one SM (evicting ones included)."""
        return self._engine.sms[sm_id].tb_count[kernel_idx]

    def live_tb_count(self, sm_id: int, kernel_idx: int) -> int:
        return self._engine.sms[sm_id].live_tb_count[kernel_idx]

    def quota_counter(self, sm_id: int, kernel_idx: int) -> float:
        """A kernel's local quota counter on one SM."""
        return self._engine.sms[sm_id].quota_counters[kernel_idx]

    def quota_residual(self, kernel_idx: int) -> float:
        """Sum of a kernel's quota counters over all SMs."""
        return sum(sm.quota_counters[kernel_idx]
                   for sm in self._engine.sms)

    def all_quota_exhausted(self, sm_id: int,
                            kernel_indices: Sequence[int]) -> bool:
        """True when every listed kernel's counter on the SM is <= 0."""
        return self._engine.sms[sm_id].all_exhausted(kernel_indices)

    def mean_idle_warps(self, sm_id: int, kernel_idx: int) -> float:
        """Mean ready-but-not-issued warps over the epoch's sample grid."""
        return self._engine.sms[sm_id].mean_idle_warps(kernel_idx)

    def idle_samples(self, sm_id: int) -> int:
        """Idle-warp grid points observed on the SM this epoch."""
        return self._engine.sms[sm_id].idle_samples

    def warps_per_tb(self, kernel_idx: int) -> int:
        return self._engine.runtimes[kernel_idx].warps_per_tb

    def can_admit(self, sm_id: int, kernel_idx: int) -> bool:
        """Whether the SM's free resources fit one more TB of the kernel."""
        return self._engine.sms[sm_id].resources.can_admit(
            self.kernels[kernel_idx].spec)

    def free_resources(self, sm_id: int) -> Dict[str, int]:
        """The SM's uncommitted static resources, keyed like
        :meth:`repro.kernels.spec.KernelSpec.resource_vector`."""
        resources = self._engine.sms[sm_id].resources
        cfg = resources.config
        return {
            "registers_bytes": cfg.registers_bytes - resources.registers_bytes,
            "shared_memory_bytes": (cfg.shared_memory_bytes
                                    - resources.shared_memory_bytes),
            "threads": cfg.max_threads - resources.threads,
            "tbs": cfg.max_tbs - resources.tbs,
        }

    @property
    def preemption_pending(self) -> bool:
        """Whether any partial context switch is still draining."""
        return self._engine.preemption.has_pending

    @property
    def pending_preemptions(self) -> int:
        return self._engine.preemption.pending_count

    # ------------------------------------------------------------- actuation

    def set_tb_target(self, sm_id: int, kernel_idx: int, target: int) -> None:
        """Set how many TBs of the kernel the SM should host; the engine
        dispatches or context-switches TBs to converge on the target."""
        self._engine.set_tb_target(sm_id, kernel_idx, target)

    def request_preemption(self, sm_id: int, kernel_idx: int,
                           count: int = 1) -> None:
        """Context-switch ``count`` TBs of the kernel off the SM by lowering
        its residency target below the current resident count."""
        if count <= 0:
            raise ValueError("preemption count must be positive")
        current = self._engine.sms[sm_id].tb_count[kernel_idx]
        self._engine.set_tb_target(sm_id, kernel_idx,
                                   max(0, current - count))

    def set_quota(self, sm_id: int, kernel_idx: int, amount: float) -> None:
        """Load the kernel's local quota counter on one SM."""
        self._engine.sms[sm_id].set_quota(kernel_idx, amount)

    def add_quota(self, sm_id: int, kernel_idx: int, amount: float) -> None:
        """Top up the kernel's counter (Naïve's mid-epoch non-QoS refill)."""
        self._engine.sms[sm_id].add_quota(kernel_idx, amount)

    def wake_all(self, sm_id: Optional[int] = None) -> None:
        """Wake one SM's schedulers — or every SM's when ``sm_id`` is None
        (quota counters were just reloaded)."""
        if sm_id is not None:
            self._engine.sms[sm_id].wake_all()
            return
        for sm in self._engine.sms:
            sm.wake_all()

    def request_epoch_at(self, cycle: int) -> None:
        """Pull the next epoch boundary forward (Elastic Epoch, Section
        3.4.3); the engine processes it at the top of the next cycle."""
        self._engine.next_epoch_at = cycle

    def flush_l1(self, sm_id: int) -> None:
        """Invalidate the SM's L1 (whole-SM handoffs, Spart)."""
        self._engine.memory.flush_l1(sm_id)

    # ------------------------------------------------------- telemetry notes

    def note_quota(self, kernel_idx: int, granted: float,
                   carried: float = 0.0, alpha: Optional[float] = None,
                   ipc_goal: Optional[float] = None,
                   ctrl_error: Optional[float] = None,
                   ctrl_integral: Optional[float] = None,
                   ctrl_prediction: Optional[float] = None) -> None:
        """Record the epoch's whole-kernel quota grant (and the rollover
        residual folded into it, plus the control terms that produced it —
        including the quota controller's internals, see
        :mod:`repro.controllers`) into the telemetry stream.  A no-op when
        telemetry is off."""
        recorder = self._engine.telemetry
        if recorder is not None:
            recorder.note_quota(kernel_idx, granted, carried, alpha, ipc_goal,
                                ctrl_error, ctrl_integral, ctrl_prediction)
