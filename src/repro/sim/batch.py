"""Batch engine core: windowed struct-of-arrays SM advancement.

The third ``GPUConfig.engine_core`` variant (``"batch"``).  The event core
(PR 2) makes *idle* cycles cheap; busy SMs still pay Python method dispatch
per warp per cycle.  The batch core makes *busy* cycles cheap too, by
advancing whole SMs through **edge-free windows** with table lookups and
bulk arithmetic instead of per-cycle object stepping:

1. **Probe** (:meth:`BatchState.probe`): hot warp state — ``ready_at``
   cycles, instruction cursors, lifecycle states, kernel indices — is
   gathered into parallel numpy arrays per SM (the sync-in) and a horizon
   ``H`` is computed such that *nothing order-dependent can happen* in
   ``[cycle, H)``: no epoch boundary, idle-warp sample-grid point,
   preemption completion, TB-wide barrier, global memory access (the FCFS
   memory controllers are shared, order-dependent state), warp retirement
   (retiring frees TBs and triggers dispatch), or quota zero crossing (the
   policy's ``on_quota_exhausted`` hook fires mid-cycle).  Each warp's
   earliest possible "edge" issue is ``max(ready_at, cycle)`` plus its
   distance (in instructions) to the next edge slot of its program, a
   vectorised table lookup; quota crossings are excluded by capping the
   window so a kernel's counter cannot reach zero even at the maximum
   32-lanes-per-scheduler-per-cycle drain rate.

2. **Advance** (:meth:`BatchState.advance`): inside the window each warp
   scheduler is *independent* — selection only reads its own warps'
   readiness, and every effect of an issue (``ready_at`` bump, cursor
   increment, statistics, quota decrement) is local or commutative — so
   each scheduler replays its exact GTO/LRR selection sequence over plain
   parallel lists, jumping stalls and bulk-applying greedy runs of
   back-to-back single-cycle instructions via per-pattern prefix-sum
   tables (:class:`PatternOps`).  Quota decrements commute bit-exactly:
   lane counts are integers and counters stay strictly positive inside a
   window, so every partial difference is exactly representable in IEEE
   double and the final counter value is order-independent.

3. **Sync-out**: mutated cursors and readiness are written back to the
   :class:`~repro.sim.warp.Warp` objects and each issuing scheduler's
   event-core wake queues are rebuilt
   (:meth:`~repro.sim.scheduler.GTOScheduler.rebuild_ready_state`), so the
   engine can drop to the unmodified scalar event path at every edge —
   barriers, TB moves, preemption, epoch boundaries and sample cycles run
   exactly the code the event core runs.

When probes fail (memory-bound phases: some warp is always about to touch
the memory system), an exponential backoff spaces re-probes out so the
core degrades to event-core speed instead of paying O(warps) probe cost
per cycle.  Record-for-record identity with the event and scan cores is
enforced by the three-way differential in ``tests/test_event_core.py``
and the golden-record replay in ``tests/test_controllers.py``.

Telemetry stays byte-identical as well: issue cycles are marked in boolean
masks over the window so the busy-trajectory counters behind the sleep-skip
telemetry fields count exactly the (SM, cycle) pairs the scan core counts.
"""

from __future__ import annotations

from typing import List

import numpy as np

_NEVER = 1 << 62

#: Sentinel instruction-distance for "no edge slot anywhere in the pattern"
#: (kept far below int64 overflow when added to a cycle number).
_FAR = 1 << 40

#: Windows shorter than this run on the scalar event path instead: the
#: array sync-in/sync-out costs more than it saves.
_MIN_WINDOW = 8

#: Upper bound on the failed-probe backoff (cycles between re-probes).
_BACKOFF_MAX = 256


class PatternOps:
    """Per-kernel instruction-pattern tables for in-window advancement.

    Built once per launched kernel from its expanded pattern and the
    machine's latency config.  All tables cover the *doubled* pattern so a
    greedy run or prefix-sum difference can cross the iteration boundary
    without modular arithmetic:

    ``delta[i]``
        Issue-to-ready latency of the (non-edge) instruction at slot
        ``i``: 1 for independent ALU/LDS, the pipeline latency for
        dependent ALU/SFU/LDS.  Edge slots hold 0 and are never read —
        the probe guarantees no edge slot issues inside a window.
    ``runs[i]``
        Length of the run of consecutive ``delta == 1`` slots starting at
        ``i``: a greedy (GTO) warp issues the whole run back-to-back, one
        instruction per cycle, so the run is applied as a single bulk step.
    ``lanes[i]`` / ``lanes_prefix[i]``
        Active lanes per slot and their prefix sums, for bulk quota and
        retired-instruction accounting.
    ``edge_steps[i]`` (numpy, single pattern length)
        Instructions from slot ``i`` to the next edge slot (LDG/STG/BAR),
        ``_FAR`` when the pattern has none.  The probe combines this with
        the distance to the final program instruction (retirement).
    """

    __slots__ = ("plen", "final_index", "delta", "runs", "lanes",
                 "lanes_prefix", "edge_steps")

    def __init__(self, runtime, latency):
        pattern = runtime.program.pattern
        plen = len(pattern)
        self.plen = plen
        self.final_index = runtime.program_length - 1
        doubled = pattern + pattern
        delta: List[int] = []
        lanes: List[int] = []
        bad: List[bool] = []
        for inst in doubled:
            op = inst.opcode
            edge = op == 2 or op == 3 or op == 5  # LDG, STG, BAR
            bad.append(edge)
            lanes.append(inst.active_lanes)
            if edge:
                delta.append(0)
            elif op == 0:  # ALU
                delta.append(latency.alu if inst.dependent else 1)
            elif op == 1:  # SFU
                delta.append(latency.sfu if inst.dependent else 4)
            else:  # LDS
                delta.append(latency.shared_mem if inst.dependent else 1)
        runs = [0] * (2 * plen)
        streak = 0
        for i in range(2 * plen - 1, -1, -1):
            streak = streak + 1 if (not bad[i] and delta[i] == 1) else 0
            runs[i] = streak
        prefix = [0] * (2 * plen + 1)
        total = 0
        for i in range(2 * plen):
            total += lanes[i]
            prefix[i + 1] = total
        dist = [0] * plen
        nearest = _FAR
        for i in range(2 * plen - 1, -1, -1):
            nearest = 0 if bad[i] else min(nearest + 1, _FAR)
            if i < plen:
                dist[i] = nearest
        self.delta = delta
        self.runs = runs
        self.lanes = lanes
        self.lanes_prefix = prefix
        self.edge_steps = np.asarray(dist, dtype=np.int64)


class BatchState:
    """Window probing and vectorised advancement for one simulator."""

    def __init__(self, sim):
        self.sim = sim
        latency = sim.config.memory.latency
        self.ops: List[PatternOps] = [PatternOps(runtime, latency)
                                      for runtime in sim.runtimes]
        self.num_kernels = sim.num_kernels
        self.min_window = _MIN_WINDOW
        self.backoff = 1
        self.next_probe_at = 0
        self._advance_sched = (
            self._advance_gto if sim.config.scheduler_policy == "gto"
            else self._advance_lrr)

    def add_kernel(self, runtime) -> None:
        """Build pattern tables for a kernel launched mid-run
        (``GPUSimulator.launch_at``): activation always happens on the
        scalar path (the probe horizon never crosses a pending launch), so
        extending here between windows is safe."""
        self.ops.append(PatternOps(runtime, self.sim.config.memory.latency))
        self.num_kernels += 1

    def probe_failed(self, cycle: int) -> None:
        """Back off after a too-short horizon so dense-edge (memory-bound)
        phases pay O(warps) probe cost only every ``backoff`` cycles."""
        self.next_probe_at = cycle + self.backoff
        doubled = self.backoff * 2
        self.backoff = doubled if doubled < _BACKOFF_MAX else _BACKOFF_MAX

    def window_opened(self) -> None:
        self.next_probe_at = 0
        self.backoff = 1

    # ---------------------------------------------------------------- probe

    def probe(self, cycle: int, end_cycle: int) -> int:
        """Edge-free horizon from ``cycle``: the earliest cycle at which
        anything the window cannot model might happen.

        Conservative by construction — every bound is "earliest possible",
        assuming a warp issues every cycle from the moment it is ready —
        so the window never needs rollback: an edge instruction is simply
        never issued inside one.
        """
        sim = self.sim
        horizon = sim.next_epoch_at
        if sim.next_sample_at < horizon:
            horizon = sim.next_sample_at
        next_done = sim.preemption.next_completion
        if next_done is not None and next_done < horizon:
            horizon = next_done
        # A pending mid-run launch (repro.serve arrivals) is a control edge:
        # the window must close there so activation runs on the scalar path
        # at the same loop-top point as the scan and event cores.
        if sim._next_launch_at < horizon:
            horizon = sim._next_launch_at
        if end_cycle < horizon:
            horizon = end_cycle
        floor = cycle + self.min_window
        if horizon < floor:
            return horizon
        ops = self.ops
        for sm in sim.sms:
            warps = []
            for scheduler in sm.schedulers:
                warps.extend(scheduler.warps)
            count = len(warps)
            if count == 0:
                continue
            # Sync-in: the SM's hot warp state as parallel arrays.
            ready = np.fromiter((w.ready_at for w in warps), np.int64, count)
            cursors = np.fromiter((w.pc for w in warps), np.int64, count)
            states = np.fromiter((w.state for w in warps), np.int64, count)
            kernels = np.fromiter((w.kernel_idx for w in warps), np.int64,
                                  count)
            np.maximum(ready, cycle, out=ready)
            runnable = states == 0
            quota_enabled = sm.quota_enabled
            quota_ok = sm.quota_ok
            drain_rate = 32 * len(sm.schedulers)
            for kernel_idx in range(self.num_kernels):
                if quota_enabled and not quota_ok[kernel_idx]:
                    continue  # throttled: invisible to selection, no edges
                mask = runnable & (kernels == kernel_idx)
                if not mask.any():
                    continue
                kops = ops[kernel_idx]
                cursor = cursors[mask]
                steps = np.minimum(kops.edge_steps[cursor % kops.plen],
                                   kops.final_index - cursor)
                bound = int((ready[mask] + steps).min())
                if bound < horizon:
                    horizon = bound
                    if horizon < floor:
                        return horizon
                if quota_enabled:
                    # Keep the counter strictly positive even at the
                    # maximum drain rate, so the zero crossing (and its
                    # policy callback) always lands on the scalar path.
                    counter = sm.quota_counters[kernel_idx]
                    cap = int(counter // drain_rate)
                    if cap * drain_rate >= counter:
                        cap -= 1
                    if cap < 0:
                        cap = 0
                    if cycle + cap < horizon:
                        horizon = cycle + cap
                        if horizon < floor:
                            return horizon
        return horizon

    # -------------------------------------------------------------- advance

    def advance(self, cycle: int, horizon: int) -> None:
        """Advance every SM through the edge-free window ``[cycle, horizon)``.

        Each scheduler replays its exact selection sequence over parallel
        lists of its eligible warps; effects are accumulated per kernel and
        applied once at sync-out (order-independent inside the window, see
        the module docstring).
        """
        sim = self.sim
        tel_on = sim.telemetry is not None
        width = horizon - cycle
        gpu_busy = np.zeros(width, dtype=bool) if tel_on else None
        busy_sm_cycles = 0
        num_kernels = self.num_kernels
        kernel_stats = sim.kernel_stats
        advance_sched = self._advance_sched
        for sm in sim.sms:
            sm_busy = np.zeros(width, dtype=bool) if tel_on else None
            lanes_spent = [0] * num_kernels
            issue_counts = [0] * num_kernels
            issued = 0
            for scheduler in sm.schedulers:
                issued += advance_sched(scheduler, sm, cycle, horizon,
                                        lanes_spent, issue_counts, sm_busy)
            if not issued:
                continue
            sm.issued_total += issued
            quota_enabled = sm.quota_enabled
            counters = sm.quota_counters
            retired_local = sm.retired_local
            for kernel_idx in range(num_kernels):
                count = issue_counts[kernel_idx]
                if not count:
                    continue
                lanes = lanes_spent[kernel_idx]
                stats = kernel_stats[kernel_idx]
                stats.retired_thread_insts += lanes
                stats.issued_warp_insts += count
                retired_local[kernel_idx] += lanes
                if quota_enabled:
                    counters[kernel_idx] -= lanes  # no crossing: probe-capped
            # Queue rebuilds cleared sleep state; re-derive the cached
            # wake-hint minimums lazily.
            sm._sleep_changed()
            if tel_on:
                busy_sm_cycles += int(sm_busy.sum())
                gpu_busy |= sm_busy
        if tel_on:
            sim._tel_busy_sm_cycles += busy_sm_cycles
            sim._tel_busy_gpu_cycles += int(gpu_busy.sum())

    # ------------------------------------------------- per-scheduler replay

    def _eligible(self, scheduler, sm):
        """Warps selection can see this window, in scheduler age order."""
        if sm.quota_enabled:
            quota_ok = sm.quota_ok
            return [w for w in scheduler.warps
                    if w.state == 0 and quota_ok[w.kernel_idx]]
        return [w for w in scheduler.warps if w.state == 0]

    def _advance_gto(self, scheduler, sm, cycle, horizon,
                     lanes_spent, issue_counts, busy) -> int:
        """Exact greedy-then-oldest replay over ``[cycle, horizon)``."""
        eligible = self._eligible(scheduler, sm)
        if not eligible:
            return 0
        ready_at = [w.ready_at for w in eligible]
        if min(ready_at) >= horizon:
            return 0
        count = len(eligible)
        cursors = [w.pc for w in eligible]
        kernel_of = [w.kernel_idx for w in eligible]
        all_ops = self.ops
        ops_of = [all_ops[k] for k in kernel_of]
        last = scheduler.last
        last_idx = -1
        if last is not None:
            for q in range(count):
                if eligible[q] is last:
                    last_idx = q
                    break
        t = cycle
        issued = 0
        while True:
            if last_idx >= 0 and ready_at[last_idx] <= t:
                j = last_idx  # greedy: keep issuing from the last warp
            else:
                j = -1
                wake = _NEVER
                for q in range(count):  # oldest ready (age order)
                    due = ready_at[q]
                    if due <= t:
                        j = q
                        break
                    if due < wake:
                        wake = due
                if j < 0:
                    if wake >= horizon:
                        break
                    t = wake  # stall: jump to the next readiness change
                    continue
                last_idx = j
            ops = ops_of[j]
            position = cursors[j]
            slot = position % ops.plen
            delta = ops.delta[slot]
            kernel_idx = kernel_of[j]
            if delta == 1:
                # Greedy run: back-to-back single-cycle instructions,
                # applied in bulk via the prefix tables.
                n = ops.runs[slot]
                room = horizon - t
                if n > room:
                    n = room
                cursors[j] = position + n
                lanes_spent[kernel_idx] += (ops.lanes_prefix[slot + n]
                                            - ops.lanes_prefix[slot])
                issue_counts[kernel_idx] += n
                issued += n
                if busy is not None:
                    busy[t - cycle:t - cycle + n] = True
                t += n
                ready_at[j] = t
            else:
                cursors[j] = position + 1
                lanes_spent[kernel_idx] += ops.lanes[slot]
                issue_counts[kernel_idx] += 1
                issued += 1
                if busy is not None:
                    busy[t - cycle] = True
                ready_at[j] = t + delta
                t += 1
            if t >= horizon:
                break
        if issued:
            for q in range(count):  # sync-out
                warp = eligible[q]
                warp.pc = cursors[q]
                warp.ready_at = ready_at[q]
            scheduler.last = eligible[last_idx]
            scheduler.rebuild_ready_state()
        return issued

    def _advance_lrr(self, scheduler, sm, cycle, horizon,
                     lanes_spent, issue_counts, busy) -> int:
        """Exact loose-round-robin replay over ``[cycle, horizon)``."""
        warps = scheduler.warps
        total = len(warps)
        if total == 0:
            return 0
        eligible = self._eligible(scheduler, sm)
        if not eligible:
            return 0
        ready_at = [w.ready_at for w in eligible]
        if min(ready_at) >= horizon:
            return 0
        count = len(eligible)
        cursors = [w.pc for w in eligible]
        kernel_of = [w.kernel_idx for w in eligible]
        all_ops = self.ops
        ops_of = [all_ops[k] for k in kernel_of]
        positions = [w.pos for w in eligible]
        start = scheduler._next_index % total
        solo = count == 1  # a lone warp is re-picked every ready cycle
        t = cycle
        issued = 0
        pick = -1
        while t < horizon:
            j = -1
            best_offset = total
            wake = _NEVER
            for q in range(count):
                due = ready_at[q]
                if due <= t:
                    offset = positions[q] - start
                    if offset < 0:
                        offset += total
                    if offset < best_offset:
                        best_offset = offset
                        j = q
                elif due < wake:
                    wake = due
            if j < 0:
                if wake >= horizon:
                    break
                t = wake  # rotation index only moves on an actual issue
                continue
            ops = ops_of[j]
            position = cursors[j]
            slot = position % ops.plen
            delta = ops.delta[slot]
            kernel_idx = kernel_of[j]
            if solo and delta == 1:
                n = ops.runs[slot]
                room = horizon - t
                if n > room:
                    n = room
                cursors[j] = position + n
                lanes_spent[kernel_idx] += (ops.lanes_prefix[slot + n]
                                            - ops.lanes_prefix[slot])
                issue_counts[kernel_idx] += n
                issued += n
                if busy is not None:
                    busy[t - cycle:t - cycle + n] = True
                t += n
                ready_at[j] = t
            else:
                cursors[j] = position + 1
                lanes_spent[kernel_idx] += ops.lanes[slot]
                issue_counts[kernel_idx] += 1
                issued += 1
                if busy is not None:
                    busy[t - cycle] = True
                ready_at[j] = t + delta
                t += 1
            start = positions[j] + 1
            if start >= total:
                start = 0
            pick = j
        if issued:
            for q in range(count):  # sync-out
                warp = eligible[q]
                warp.pc = cursors[q]
                warp.ready_at = ready_at[q]
            scheduler.last = eligible[pick]
            scheduler._next_index = start
            scheduler.rebuild_ready_state()
        return issued
