"""Thread blocks and per-SM static resource accounting.

An SM admits an integer number of TBs until one of four resources runs out:
registers, shared memory, threads, or TB slots (Section 2.2).
:class:`SMResources` enforces that rule; :class:`ThreadBlock` tracks barrier
arrival and completion of its warps.  TBs are also the unit of the partial
context switch (Section 2.3): eviction freezes a TB's warps, charges the
context-save cost, then releases its resources.
"""

from __future__ import annotations

from typing import List

from repro.config import SMConfig
from repro.kernels.spec import KernelSpec
from repro.sim.warp import Warp, WarpState


class SMResources:
    """The four admission limits of one SM, with live usage."""

    __slots__ = ("config", "registers_bytes", "shared_memory_bytes", "threads", "tbs")

    def __init__(self, config: SMConfig):
        self.config = config
        self.registers_bytes = 0
        self.shared_memory_bytes = 0
        self.threads = 0
        self.tbs = 0

    def can_admit(self, spec: KernelSpec) -> bool:
        cfg = self.config
        return (
            self.registers_bytes + spec.regs_per_tb_bytes <= cfg.registers_bytes
            and self.shared_memory_bytes + spec.smem_per_tb_bytes <= cfg.shared_memory_bytes
            and self.threads + spec.threads_per_tb <= cfg.max_threads
            and self.tbs + 1 <= cfg.max_tbs
        )

    def admit(self, spec: KernelSpec) -> None:
        if not self.can_admit(spec):
            raise RuntimeError(f"SM cannot admit a TB of {spec.name}")
        self.registers_bytes += spec.regs_per_tb_bytes
        self.shared_memory_bytes += spec.smem_per_tb_bytes
        self.threads += spec.threads_per_tb
        self.tbs += 1

    def release(self, spec: KernelSpec) -> None:
        self.registers_bytes -= spec.regs_per_tb_bytes
        self.shared_memory_bytes -= spec.smem_per_tb_bytes
        self.threads -= spec.threads_per_tb
        self.tbs -= 1
        if min(self.registers_bytes, self.shared_memory_bytes,
               self.threads, self.tbs) < 0:
            raise RuntimeError("resource accounting underflow")

    def utilisation(self) -> dict:
        cfg = self.config
        return {
            "registers": self.registers_bytes / cfg.registers_bytes,
            "shared_memory": (self.shared_memory_bytes / cfg.shared_memory_bytes
                              if cfg.shared_memory_bytes else 0.0),
            "threads": self.threads / cfg.max_threads,
            "tbs": self.tbs / cfg.max_tbs,
        }


class ThreadBlock:
    """One resident TB: its warps, barrier bookkeeping, lifecycle flags."""

    __slots__ = ("tb_id", "kernel_idx", "spec", "warps", "barrier_arrived",
                 "done_warps", "evicting", "dispatch_cycle")

    def __init__(self, tb_id: int, kernel_idx: int, spec: KernelSpec,
                 dispatch_cycle: int):
        self.tb_id = tb_id
        self.kernel_idx = kernel_idx
        self.spec = spec
        self.warps: List[Warp] = []
        self.barrier_arrived = 0
        self.done_warps = 0
        self.evicting = False
        self.dispatch_cycle = dispatch_cycle

    @property
    def live_warps(self) -> int:
        return len(self.warps) - self.done_warps

    @property
    def finished(self) -> bool:
        return self.done_warps == len(self.warps)

    def arrive_barrier(self, warp: Warp, cycle: int) -> bool:
        """Park a warp at the TB barrier; returns True if this released it.

        All warps of a kernel run the same program length, so DONE warps can
        never be stragglers: the barrier waits for every *live* warp.
        """
        warp.state = WarpState.AT_BARRIER
        self.barrier_arrived += 1
        if self.barrier_arrived < self.live_warps:
            return False
        self.barrier_arrived = 0
        for peer in self.warps:
            if peer.state == WarpState.AT_BARRIER:
                peer.state = WarpState.RUNNING
                peer.ready_at = cycle + 1
                # A release changes readiness out of band: the owning
                # scheduler's wake queues must re-track the warp.
                sched = peer.sched
                if sched is not None:
                    sched.requeue(peer)
        return True

    def freeze(self) -> None:
        """Begin eviction: no warp of this TB issues again."""
        self.evicting = True
        for warp in self.warps:
            if warp.state != WarpState.DONE:
                warp.state = WarpState.FROZEN

    def __repr__(self) -> str:
        return (f"ThreadBlock(id={self.tb_id}, kernel={self.kernel_idx}, "
                f"warps={len(self.warps)}, done={self.done_warps})")
