"""Per-launch precomputed kernel constants.

A :class:`KernelRuntime` is created once per launched kernel and shared by
all of its warps: the expanded warp program, the address-generation
thresholds as raw 32-bit integers (so the warp LCG can be compared without
float math), and the kernel's private slice of the line-address space.

Kernels get disjoint address bases: co-runners never share data, but they do
contend for L2 capacity and memory-controller bandwidth — exactly the
interference the paper manages.
"""

from __future__ import annotations

from repro.kernels.spec import KernelSpec
from repro.kernels.trace import WarpProgram

_UINT32 = 1 << 32
_BASE_STRIDE_LINES = 1 << 34  # kernels live 2^34 lines apart


class KernelRuntime:
    """Immutable per-launch constants shared by a kernel's warps."""

    __slots__ = (
        "kernel_idx", "spec", "program", "base_line", "footprint_lines",
        "reuse_threshold", "coalesce_threshold", "uncoalesced_degree",
        "program_length", "warps_per_tb",
    )

    def __init__(self, kernel_idx: int, spec: KernelSpec, line_size: int):
        self.kernel_idx = kernel_idx
        self.spec = spec
        self.program = WarpProgram.for_spec(spec)
        self.program_length = self.program.length
        self.warps_per_tb = spec.warps_per_tb
        self.base_line = kernel_idx * _BASE_STRIDE_LINES
        self.footprint_lines = max(1, spec.memory.footprint_bytes // line_size)
        reuse = spec.memory.reuse_fraction
        coalesced = spec.memory.coalesced_fraction
        # The warp LCG value r in [0, 2^32) selects: reuse if r < reuse_thr,
        # coalesced stream if r < coalesce_thr, else uncoalesced fan-out.
        self.reuse_threshold = int(reuse * _UINT32)
        self.coalesce_threshold = int((reuse + (1.0 - reuse) * coalesced) * _UINT32)
        self.uncoalesced_degree = spec.memory.uncoalesced_degree

    def start_cursor(self, tb_id: int, warp_id_in_tb: int) -> int:
        """Spread warps' streaming cursors across the footprint.

        TBs start at evenly spaced offsets and warps within a TB are offset
        by a few lines each, approximating how real grids tile their input.
        """
        tb_offset = (tb_id * 7919 * 64) % self.footprint_lines
        return (tb_offset + warp_id_in_tb * 4) % self.footprint_lines

    def warp_seed(self, tb_id: int, warp_id_in_tb: int) -> int:
        return (hash((self.kernel_idx, tb_id, warp_id_in_tb)) & 0xFFFFFFFF) | 1
