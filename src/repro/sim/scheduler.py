"""Warp issue policies.

Each SM has ``warp_schedulers`` independent schedulers; warps are distributed
across them at TB dispatch (Section 2.2).  The Table 1 policy is **GTO**
(greedy-then-oldest): keep issuing from the last warp while it stays ready,
otherwise fall back to the oldest ready warp.  **LRR** (loose round robin) is
provided for ablations.

The quota filter of the Enhanced Warp Scheduler (Section 3.3) enters here as
the ``quota_ok`` boolean list indexed by kernel: a warp whose kernel has
exhausted its quota is invisible to selection, leaving the underlying policy
untouched — "the original warp scheduling algorithm is used throughout the
lifetime of kernels, except that kernels are throttled once their quotas are
exhausted."

Schedulers keep a ``sleep_until`` cycle: when a scan finds nothing ready the
earliest wake-up among eligible warps is cached so stalled schedulers cost
one comparison per cycle.  Any event that can create readiness out of band —
TB dispatch, barrier release, quota refresh, unfreeze — must call ``wake()``.

Every write to ``sleep_until`` invokes the optional ``notify`` callback so
the owning SM can maintain a cached minimum over its schedulers (the
engine's idle-skip reads that cache instead of rescanning every scheduler
of every SM each idle cycle).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.warp import Warp

_NEVER = 1 << 62


class GTOScheduler:
    """Greedy-then-oldest warp scheduler."""

    __slots__ = ("warps", "last", "sleep_until", "notify")

    def __init__(self, notify=None) -> None:
        self.warps: List[Warp] = []
        self.last: Optional[Warp] = None
        self.sleep_until = 0
        self.notify = notify

    def add_warp(self, warp: Warp) -> None:
        self.warps.append(warp)
        self.wake()

    def remove_warp(self, warp: Warp) -> None:
        self.warps.remove(warp)
        if self.last is warp:
            self.last = None
        self.wake()

    def wake(self) -> None:
        if self.sleep_until:
            self.sleep_until = 0
            if self.notify is not None:
                self.notify()

    def _sleep(self, until: int) -> None:
        self.sleep_until = until
        if self.notify is not None:
            self.notify()

    def select(self, cycle: int, quota_ok) -> Optional[Warp]:
        """Pick the warp to issue this cycle, or None."""
        if cycle < self.sleep_until:
            return None
        last = self.last
        if (last is not None and last.state == 0 and last.ready_at <= cycle
                and quota_ok[last.kernel_idx]):
            return last
        earliest = _NEVER
        for warp in self.warps:
            if warp.state != 0 or not quota_ok[warp.kernel_idx]:
                continue
            if warp.ready_at <= cycle:
                self.last = warp
                return warp
            if warp.ready_at < earliest:
                earliest = warp.ready_at
        self._sleep(earliest)
        return None

    def ready_count(self, cycle: int, quota_ok) -> int:
        """Warps that could issue this cycle (for idle-warp sampling)."""
        count = 0
        for warp in self.warps:
            if warp.state == 0 and warp.ready_at <= cycle and quota_ok[warp.kernel_idx]:
                count += 1
        return count


class LRRScheduler(GTOScheduler):
    """Loose round robin: rotate priority among ready warps."""

    __slots__ = ("_next_index",)

    def __init__(self, notify=None) -> None:
        super().__init__(notify)
        self._next_index = 0

    def select(self, cycle: int, quota_ok) -> Optional[Warp]:
        if cycle < self.sleep_until:
            return None
        warps = self.warps
        count = len(warps)
        if count == 0:
            self._sleep(_NEVER)
            return None
        earliest = _NEVER
        start = self._next_index % count
        for offset in range(count):
            warp = warps[(start + offset) % count]
            if warp.state != 0 or not quota_ok[warp.kernel_idx]:
                continue
            if warp.ready_at <= cycle:
                self._next_index = (start + offset + 1) % count
                self.last = warp
                return warp
            if warp.ready_at < earliest:
                earliest = warp.ready_at
        self._sleep(earliest)
        return None


def make_scheduler(policy: str, notify=None):
    """Factory for the configured issue policy."""
    if policy == "gto":
        return GTOScheduler(notify)
    if policy == "lrr":
        return LRRScheduler(notify)
    raise ValueError(f"unknown scheduler policy {policy!r}")
